//! The transfer-survival matrix: every chaos fault kind × channel
//! (control, data) × operation (PUT, GET, third-party), over real TCP
//! loopback.
//!
//! Each cell runs the operation under a single seeded fault with a
//! global fire budget of one, retrying with fresh sessions (and, for
//! third-party, the previous attempt's 111-marker checkpoint). The
//! contract per cell: the transfer either completes with byte-identical
//! content, or fails an attempt with a *typed* error — and never hangs,
//! because every wait in the stack is deadline-bounded (client control
//! reads, client data reads/accepts, server stall detection).
//!
//! Determinism: the whole matrix is a pure function of one seed. Running
//! it twice must reproduce the exact same record strings — attempt
//! counts, first-error classes, fire counts, everything.
//!
//! `CHAOS_SEED` overrides the default seed (CI runs two distinct ones).

use ig_client::{
    transfer, ClientConfig, ClientError, ClientSession, DirTransferOutcome, RetryPolicy,
    TransferOpts,
};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::DcauMode;
use ig_protocol::{ByteRanges, HostPort};
use ig_server::dsi::{read_all, walk};
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, ServerCore, UserContext};
use ig_xio::{
    splitmix64, ChaosConfig, ChaosHook, Direction, FaultKind, FaultSpec, Link, TcpLink, Trigger,
};
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 1_000_000;
/// Server-side stall detector: a silent data channel turns into a typed
/// 426 this fast.
const STALL: Duration = Duration::from_millis(250);
/// Client control-channel read deadline. Must comfortably exceed STALL
/// so server-detected data faults surface as server replies, not as
/// client timeouts racing them.
const CONTROL_TIMEOUT: Duration = Duration::from_millis(800);
/// Client data-channel read/accept deadline.
const DATA_TIMEOUT: Duration = Duration::from_millis(500);
const PAYLOAD_LEN: usize = 40_000;
const BLOCK: usize = 8 * 1024;
const MAX_ATTEMPTS: u32 = 3;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

fn payload() -> Vec<u8> {
    (0..PAYLOAD_LEN as u32).map(|i| (i * 31 % 251) as u8).collect()
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE)
}

/// All eight fault kinds. The BitFlip skips the 17-byte MODE E header so
/// it lands in payload bytes — the undetectable-with-PROT-C corruption
/// that only content verification catches.
fn kinds() -> [(&'static str, FaultKind); 8] {
    [
        ("drop", FaultKind::Drop),
        ("delay", FaultKind::Delay),
        ("truncate", FaultKind::Truncate),
        ("duplicate", FaultKind::Duplicate),
        ("reorder", FaultKind::Reorder),
        ("bitflip", FaultKind::BitFlip { skip_prefix: 17 }),
        ("partition", FaultKind::PartitionOneWay),
        ("reset", FaultKind::Reset),
    ]
}

#[derive(Clone, Copy, PartialEq)]
enum Chan {
    Control,
    Data,
}

impl Chan {
    fn name(self) -> &'static str {
        match self {
            Chan::Control => "control",
            Chan::Data => "data",
        }
    }
}

#[derive(Clone, Copy)]
enum Op {
    Put,
    Get,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Put => "PUT",
            Op::Get => "GET",
        }
    }
}

/// One CA, one host credential, one mapped user, one server. The server
/// is clean; PUT/GET cells inject faults client-side.
struct World {
    server: Arc<GridFtpServer>,
    cfg: ClientConfig,
    dsi: Arc<MemDsi>,
}

fn client_cfg(user_cred: Credential, trust: TrustStore, seed: u64) -> ClientConfig {
    ClientConfig::new(user_cred, trust)
        .with_clock(Clock::Fixed(NOW))
        .with_seed(seed * 7 + 1)
        .no_delegation()
        .with_retry(RetryPolicy::once().with_attempt_timeout(Some(CONTROL_TIMEOUT)))
}

fn server_cfg(
    name: &str,
    host_cred: Credential,
    trust: TrustStore,
    dsi: Arc<MemDsi>,
    data_chaos: Option<Arc<ChaosHook>>,
    core: ServerCore,
) -> ServerConfig {
    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let mut cfg = ServerConfig::new(
        name,
        host_cred,
        trust,
        Arc::new(GridmapAuthz::new(gridmap)),
        dsi as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(STALL)
    .with_control_idle_timeout(Duration::from_secs(5))
    .with_core(core);
    if let Some(hook) = data_chaos {
        cfg = cfg.with_data_chaos(hook);
    }
    cfg
}

fn world(seed: u64, core: ServerCore) -> World {
    let mut rng = ig_crypto::rng::seeded(seed);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Chaos CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(dn("/CN=chaos.example.org"), &host_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(dn("/O=Grid/CN=Alice Smith"), &user_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let dsi = Arc::new(MemDsi::new());
    dsi.put("/home/alice/src.bin", &payload());
    let cfg = server_cfg(
        "chaos.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::clone(&dsi),
        None,
        core,
    );
    let server = GridFtpServer::start(cfg, seed * 100).unwrap();
    let cfg = client_cfg(Credential::new(vec![user_cert], user_keys.private).unwrap(), trust, seed);
    World { server, cfg, dsi }
}

/// Two servers under one CA for third-party cells. `src_chaos` plants
/// the fault in the *source server's data plane* (the sender side of the
/// server-to-server stream).
struct TpWorld {
    src: Arc<GridFtpServer>,
    dst: Arc<GridFtpServer>,
    cfg: ClientConfig,
    dst_dsi: Arc<MemDsi>,
}

fn tp_world(seed: u64, src_chaos: Option<Arc<ChaosHook>>, core: ServerCore) -> TpWorld {
    let mut rng = ig_crypto::rng::seeded(seed);
    let mut ca = CertificateAuthority::create(&mut rng, dn("/O=TP CA"), 512, 0, NOW * 10).unwrap();
    let mut host = |rng: &mut _, name: &str| {
        let keys = ig_crypto::RsaKeyPair::generate(rng, 512).unwrap();
        let cert = ca
            .issue(dn(&format!("/CN={name}")), &keys.public, Validity::starting_at(0, NOW * 10), vec![])
            .unwrap();
        Credential::new(vec![cert], keys.private).unwrap()
    };
    let src_cred = host(&mut rng, "src.example.org");
    let dst_cred = host(&mut rng, "dst.example.org");
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(dn("/O=Grid/CN=Alice Smith"), &user_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let src_dsi = Arc::new(MemDsi::new());
    src_dsi.put("/home/alice/src.bin", &payload());
    let dst_dsi = Arc::new(MemDsi::new());
    let src = GridFtpServer::start(
        server_cfg("src.example.org", src_cred, trust.clone(), src_dsi, src_chaos, core),
        seed * 100,
    )
    .unwrap();
    let dst = GridFtpServer::start(
        server_cfg("dst.example.org", dst_cred, trust.clone(), Arc::clone(&dst_dsi), None, core),
        seed * 100 + 50,
    )
    .unwrap();
    let cfg = client_cfg(Credential::new(vec![user_cert], user_keys.private).unwrap(), trust, seed);
    TpWorld { src, dst, cfg, dst_dsi }
}

/// Open a session, optionally routing the control channel through a
/// chaos hook. The hook is disarmed during login/DCAU setup, so the
/// handshake always runs clean — chaos starts at the operation.
fn session(addr: HostPort, cfg: &ClientConfig, control_chaos: Option<&Arc<ChaosHook>>) -> ClientSession {
    let tcp = TcpLink::connect(addr.to_socket_addr()).unwrap();
    let link: Box<dyn Link> = match control_chaos {
        Some(hook) => hook.wrap(Box::new(tcp)),
        None => Box::new(tcp),
    };
    let mut s = ClientSession::from_link(link, cfg.clone()).unwrap();
    s.login().unwrap();
    s.set_dcau(DcauMode::None).unwrap();
    s
}

fn base_opts(data_chaos: Option<Arc<ChaosHook>>) -> TransferOpts {
    let opts = TransferOpts::default().block(BLOCK).timeout(Some(DATA_TIMEOUT));
    match data_chaos {
        Some(hook) => opts.chaos(hook),
        None => opts,
    }
}

/// Collapse an error to a stable class name so records replay
/// byte-identically (message payloads may embed OS error text).
fn classify(e: &ClientError) -> String {
    match e {
        ClientError::ServerError(r) => format!("server-{}", r.code),
        ClientError::UnexpectedReply { .. } => "desync".into(),
        ClientError::Gsi(_) => "security".into(),
        ClientError::Protocol(_) => "protocol".into(),
        ClientError::Pki(_) => "pki".into(),
        ClientError::Data(_) => "data".into(),
        ClientError::Timeout(_) => "timeout".into(),
        ClientError::Truncated(_) => "truncated".into(),
        ClientError::Corrupt(_) => "corrupt".into(),
        ClientError::Integrity(_) => "integrity".into(),
        ClientError::Io(_) => "io".into(),
    }
}

fn verify_content(dsi: &MemDsi, path: &str) -> Result<(), String> {
    let got = read_all(dsi, &UserContext::superuser(), path, 1 << 16)
        .map_err(|_| "missing".to_string())?;
    if got == payload() {
        Ok(())
    } else {
        // PROT C has no integrity layer, so payload corruption sails
        // through the protocol — only content verification catches it.
        Err("silent-loss".into())
    }
}

fn record(label: &str, outcome: Option<u32>, first: Option<String>, hook: &ChaosHook) -> String {
    let first = first.unwrap_or_else(|| "none".into());
    match outcome {
        Some(attempt) => format!(
            "{label}: ok attempts={attempt} first_error={first} fires={}",
            hook.total_fires()
        ),
        None => format!("{label}: FAILED first_error={first} fires={}", hook.total_fires()),
    }
}

/// A PUT or GET cell: fault client-side (control link or data streams),
/// retry with a fresh session, verify content after every "success".
fn run_client_cell(
    w: &World,
    op: Op,
    chan: Chan,
    kind: FaultKind,
    kind_name: &str,
    seed: u64,
    cell: usize,
    obs: &Arc<ig_obs::Obs>,
    hooks: &mut Vec<Arc<ChaosHook>>,
) -> String {
    let direction = match (chan, op) {
        // GET is the receive path on the client's own data channels.
        (Chan::Data, Op::Get) => Direction::Recv,
        _ => Direction::Send,
    };
    let trigger = match chan {
        // The control link carries the whole login handshake before the
        // hook arms, so "first armed message" is a probability-1 draw.
        Chan::Control => Trigger::Probability(1.0),
        // Data links are born mid-operation: hit the second block.
        Chan::Data => Trigger::OnRecord(1),
    };
    let hook = ChaosHook::disarmed(ChaosConfig::single(seed, FaultSpec { kind, direction, trigger, max_fires: 1 }));
    hook.set_obs(obs);
    hooks.push(Arc::clone(&hook));
    let data = payload();
    let path = format!("/home/alice/cell-{cell}.bin");
    let label = format!("{}/{}/{kind_name}", op.name(), chan.name());
    let mut first: Option<String> = None;
    for attempt in 1..=MAX_ATTEMPTS {
        let control_hook = matches!(chan, Chan::Control).then_some(&hook);
        let mut s = session(w.server.addr(), &w.cfg, control_hook);
        let opts = base_opts(matches!(chan, Chan::Data).then(|| Arc::clone(&hook)));
        hook.arm();
        let result: Result<(), String> = match op {
            Op::Put => transfer::put_bytes(&mut s, &path, &data, &opts)
                .map_err(|e| classify(&e))
                .and_then(|_| verify_content(&w.dsi, &path)),
            Op::Get => transfer::get_bytes(&mut s, "/home/alice/src.bin", &opts)
                .map_err(|e| classify(&e))
                .and_then(|got| if got == data { Ok(()) } else { Err("silent-loss".into()) }),
        };
        hook.disarm();
        drop(s);
        match result {
            Ok(()) => return record(&label, Some(attempt), first, &hook),
            Err(class) => {
                first.get_or_insert(class);
            }
        }
    }
    record(&label, None, first, &hook)
}

/// A third-party cell: control faults ride the mediator→destination
/// control link; data faults live in the source server's data plane.
/// Failed attempts restart from the receiver's 111-marker checkpoint.
fn run_tp_cell(w: &TpWorld, chan: Chan, kind_name: &str, hook: &Arc<ChaosHook>, cell: usize) -> String {
    let label = format!("3PT/{}/{kind_name}", chan.name());
    let path = format!("/home/alice/tp-{cell}.bin");
    let opts = base_opts(None);
    let mut checkpoint: Option<ByteRanges> = None;
    let mut first: Option<String> = None;
    for attempt in 1..=MAX_ATTEMPTS {
        let mut src = session(w.src.addr(), &w.cfg, None);
        let mut dst = session(w.dst.addr(), &w.cfg, matches!(chan, Chan::Control).then_some(hook));
        hook.arm();
        let r = transfer::third_party(&mut src, "/home/alice/src.bin", &mut dst, &path, &opts, checkpoint.as_ref());
        hook.disarm();
        drop(src);
        drop(dst);
        let result: Result<(), String> = match r {
            Ok(o) if o.is_success() => match verify_content(&w.dst_dsi, &path) {
                Ok(()) => Ok(()),
                Err(class) => {
                    // Corrupt content behind success replies: the
                    // checkpoint is a lie, restart from zero.
                    checkpoint = None;
                    Err(class)
                }
            },
            Ok(o) => {
                // Name only the side that detected the fault: the other
                // side's final code can depend on TCP close timing.
                let class = if !o.dst_reply.is_success() {
                    format!("dst-{}", o.dst_reply.code)
                } else {
                    format!("src-{}", o.src_reply.code)
                };
                checkpoint = Some(o.checkpoint);
                Err(class)
            }
            Err(e) => Err(classify(&e)),
        };
        match result {
            Ok(()) => return record(&label, Some(attempt), first, hook),
            Err(class) => {
                first.get_or_insert(class);
            }
        }
    }
    record(&label, None, first, hook)
}

/// The full 8 kinds × {control, data} × {PUT, GET, 3PT} sweep as a pure
/// function of `seed`. Also returns (fault fires, `chaos.fault` trace
/// events) summed over every hook: the two must agree — a fired fault
/// with no trace event is an observability hole.
fn run_matrix(seed: u64, core: ServerCore) -> (Vec<String>, u64, u64) {
    let mut records = Vec::new();
    let mut cell = 0usize;
    let cell_seed = |cell: usize| splitmix64(seed ^ (cell as u64).wrapping_mul(0x9E37_79B9));
    let obs = ig_obs::Obs::new("chaos-matrix");
    let mut hooks: Vec<Arc<ChaosHook>> = Vec::new();

    // PUT/GET: one clean server, faults injected client-side.
    let w = world(seed, core);
    for (name, kind) in kinds() {
        for chan in [Chan::Control, Chan::Data] {
            for op in [Op::Put, Op::Get] {
                records.push(run_client_cell(
                    &w,
                    op,
                    chan,
                    kind,
                    name,
                    cell_seed(cell),
                    cell,
                    &obs,
                    &mut hooks,
                ));
                cell += 1;
            }
        }
    }

    // 3PT control: one clean pair, faults on the mediator's destination
    // control link.
    let tw = tp_world(seed.wrapping_add(1), None, core);
    for (name, kind) in kinds() {
        let spec = FaultSpec::send(kind, Trigger::Probability(1.0));
        let hook = ChaosHook::disarmed(ChaosConfig::single(cell_seed(cell), spec));
        hook.set_obs(&obs);
        hooks.push(Arc::clone(&hook));
        records.push(run_tp_cell(&tw, Chan::Control, name, &hook, cell));
        cell += 1;
    }

    // 3PT data: the fault kind is baked into a fresh source server's
    // data plane per cell (ServerConfig carries the hook from start).
    for (i, (name, kind)) in kinds().into_iter().enumerate() {
        let spec = FaultSpec::send(kind, Trigger::OnRecord(1));
        let hook = ChaosHook::disarmed(ChaosConfig::single(cell_seed(cell), spec));
        hook.set_obs(&obs);
        hooks.push(Arc::clone(&hook));
        let tw = tp_world(seed.wrapping_add(10 + i as u64), Some(Arc::clone(&hook)), core);
        records.push(run_tp_cell(&tw, Chan::Data, name, &hook, cell));
        cell += 1;
    }
    let fired: u64 = hooks.iter().map(|h| h.total_fires()).sum();
    let traced = obs.count_events("chaos.fault") as u64;
    (records, fired, traced)
}

#[test]
fn matrix_survives_all_faults_and_replays_byte_identical() {
    run_matrix_scenario(ServerCore::Threaded);
}

/// The identical 48-cell sweep with every server on the epoll reactor
/// core. Recovery behaviour and determinism (per-core byte-identical
/// replay under one seed) must hold there too — sessions are seeded in
/// accept order on both cores, so the chaos schedule is unchanged.
#[cfg(target_os = "linux")]
#[test]
fn matrix_survives_and_replays_on_reactor_core() {
    run_matrix_scenario(ServerCore::Reactor);
}

// ---------------------------------------------------------------------
// Mid-directory-stream faults: every fault kind landing in the middle of
// a streamed tree transfer must end in file-granular resume completing
// the tree (or a typed error) — never a hang, never a silently partial
// tree behind a success record.
// ---------------------------------------------------------------------

/// Per-file bytes for the chaos tree — distinct per index so swapped or
/// duplicated file bodies can't masquerade as each other.
fn dir_payload(i: usize) -> Vec<u8> {
    (0..3000).map(|j| ((j * 7 + i * 13) % 251) as u8).collect()
}

/// ~35 KiB over 10 files in nested dirs plus an empty dir: several MODE E
/// blocks at `BLOCK`, so an `OnRecord(1)` fault always lands mid-stream
/// with entries both before and after it.
fn plant_tree(dsi: &MemDsi, root: &str) {
    let subs = ["a", "a", "b/deep", "b/deep", "b", "c", "c", "d", "d", "a"];
    for (i, sub) in subs.iter().enumerate() {
        dsi.put(&format!("{root}/{sub}/f{i}.bin"), &dir_payload(i));
    }
    dsi.mkdir(&UserContext::superuser(), &format!("{root}/empty")).unwrap();
}

/// Walk + per-file byte equality between two trees. The dir stream's
/// per-file checksums make even PROT C bit-flips detectable, but the
/// matrix still verifies content independently — a checksum bug would
/// surface here as `silent-loss`.
fn verify_tree(src: &MemDsi, src_root: &str, dst: &MemDsi, dst_root: &str) -> Result<(), String> {
    let u = UserContext::superuser();
    let a = walk(src, &u, src_root).map_err(|e| e.to_string())?;
    let b = walk(dst, &u, dst_root).map_err(|_| "missing-tree".to_string())?;
    if a != b {
        return Err("tree-mismatch".into());
    }
    for e in a.iter().filter(|e| !e.is_dir) {
        let x = read_all(src, &u, &format!("{src_root}/{}", e.rel_path), 1 << 16).unwrap();
        let y = read_all(dst, &u, &format!("{dst_root}/{}", e.rel_path), 1 << 16)
            .map_err(|_| "missing-file".to_string())?;
        if x != y {
            return Err("silent-loss".into());
        }
    }
    Ok(())
}

/// One dir-stream cell: fault the data plane on the second record, drive
/// the transfer through the file-granular retry wrapper (fresh session
/// per attempt, resume at the last confirmed entry), then verify the
/// whole tree arrived byte-identical.
#[allow(clippy::too_many_arguments)]
fn run_dir_cell(
    w: &World,
    local: &Arc<MemDsi>,
    local_dyn: &Arc<dyn Dsi>,
    op: Op,
    kind: FaultKind,
    kind_name: &str,
    seed: u64,
    cell: usize,
    obs: &Arc<ig_obs::Obs>,
    hooks: &mut Vec<Arc<ChaosHook>>,
) -> String {
    let direction = match op {
        Op::Put => Direction::Send,
        Op::Get => Direction::Recv,
    };
    let spec = FaultSpec { kind, direction, trigger: Trigger::OnRecord(1), max_fires: 1 };
    let hook = ChaosHook::disarmed(ChaosConfig::single(seed, spec));
    hook.set_obs(obs);
    hooks.push(Arc::clone(&hook));
    let label = format!("{}DIR/data/{kind_name}", op.name());
    let policy = RetryPolicy::immediate(MAX_ATTEMPTS);
    let opts = base_opts(Some(Arc::clone(&hook)));
    let make_session = || Ok(session(w.server.addr(), &w.cfg, None));
    hook.arm();
    let result: Result<DirTransferOutcome, String> = match op {
        Op::Put => {
            let remote = format!("/home/alice/dtree-{cell}");
            transfer::put_dir_with_retry(make_session, local_dyn, "/tree", &remote, &opts, &policy)
                .map_err(|e| classify(&e))
                .and_then(|out| verify_tree(local, "/tree", &w.dsi, &remote).map(|()| out))
        }
        Op::Get => {
            let copy = Arc::new(MemDsi::new());
            let copy_dyn: Arc<dyn Dsi> = Arc::clone(&copy) as Arc<dyn Dsi>;
            transfer::get_dir_with_retry(
                make_session,
                &copy_dyn,
                "/copy",
                "/home/alice/dtree",
                &opts,
                &policy,
            )
            .map_err(|e| classify(&e))
            .and_then(|out| verify_tree(&w.dsi, "/home/alice/dtree", &copy, "/copy").map(|()| out))
        }
    };
    hook.disarm();
    match result {
        Ok(out) if out.complete => {
            format!("{label}: ok attempts={} fires={}", out.attempts, hook.total_fires())
        }
        // A retry budget exhausted mid-tree is a typed, resumable state,
        // not a success — the matrix treats it as a cell failure.
        Ok(out) => format!(
            "{label}: FAILED incomplete done={} attempts={} fires={}",
            out.entries_done,
            out.attempts,
            hook.total_fires()
        ),
        Err(class) => format!("{label}: FAILED first_error={class} fires={}", hook.total_fires()),
    }
}

/// 8 fault kinds × {PUT, GET} directory streams, all data-plane faults
/// landing mid-stream, as a pure function of `seed`.
fn run_dir_matrix(seed: u64, core: ServerCore) -> (Vec<String>, u64, u64) {
    let obs = ig_obs::Obs::new("chaos-dir-matrix");
    let mut hooks: Vec<Arc<ChaosHook>> = Vec::new();
    let w = world(seed.wrapping_add(0xD1B), core);
    plant_tree(&w.dsi, "/home/alice/dtree");
    let local = Arc::new(MemDsi::new());
    plant_tree(&local, "/tree");
    let local_dyn: Arc<dyn Dsi> = Arc::clone(&local) as Arc<dyn Dsi>;
    let cell_seed =
        |cell: usize| splitmix64(seed ^ 0xD19 ^ (cell as u64).wrapping_mul(0x9E37_79B9));
    let mut records = Vec::new();
    let mut cell = 0usize;
    for (name, kind) in kinds() {
        for op in [Op::Put, Op::Get] {
            records.push(run_dir_cell(
                &w,
                &local,
                &local_dyn,
                op,
                kind,
                name,
                cell_seed(cell),
                cell,
                &obs,
                &mut hooks,
            ));
            cell += 1;
        }
    }
    let fired: u64 = hooks.iter().map(|h| h.total_fires()).sum();
    let traced = obs.count_events("chaos.fault") as u64;
    (records, fired, traced)
}

#[test]
fn dir_matrix_resumes_file_granular_on_all_faults() {
    run_dir_scenario(ServerCore::Threaded);
}

/// Same 16-cell dir sweep on the epoll reactor core.
#[cfg(target_os = "linux")]
#[test]
fn dir_matrix_resumes_on_reactor_core() {
    run_dir_scenario(ServerCore::Reactor);
}

fn run_dir_scenario(core: ServerCore) {
    let seed = chaos_seed();
    let (first, fired, traced) = run_dir_matrix(seed, core);
    assert_eq!(first.len(), 16, "8 kinds x {{PUT,GET}} directory streams");
    for r in &first {
        assert!(
            r.contains(": ok"),
            "dir cell did not complete the tree within {MAX_ATTEMPTS} attempts: {r}\nfull matrix:\n{}",
            first.join("\n")
        );
        assert!(!r.contains("fires=0"), "fault never fired: {r}");
    }
    assert!(fired > 0, "dir matrix fired no faults at all");
    assert_eq!(fired, traced, "every fired fault must emit a chaos.fault trace event");
    let (second, fired2, traced2) = run_dir_matrix(seed, core);
    assert_eq!(first, second, "dir chaos schedule must replay byte-identically under one seed");
    assert_eq!((fired, traced), (fired2, traced2), "fault/trace totals must replay");
}

fn run_matrix_scenario(core: ServerCore) {
    let seed = chaos_seed();
    let (first, fired, traced) = run_matrix(seed, core);
    assert_eq!(first.len(), 48, "8 kinds x 2 channels x 3 operations");
    for r in &first {
        assert!(
            r.contains(": ok"),
            "cell did not recover within {MAX_ATTEMPTS} attempts: {r}\nfull matrix:\n{}",
            first.join("\n")
        );
    }
    // Every fault engaged: a cell whose fault never fired tested nothing.
    for r in &first {
        assert!(!r.contains("fires=0"), "fault never fired: {r}");
    }
    // Observability contract: every fired fault — Delay included — left
    // exactly one `chaos.fault` trace event.
    assert!(fired > 0, "matrix fired no faults at all");
    assert_eq!(fired, traced, "every fired fault must emit a chaos.fault trace event");
    // Exact replay: the matrix is a pure function of the seed — attempt
    // counts, first-error classes and fire counts must all reproduce.
    let (second, fired2, traced2) = run_matrix(seed, core);
    assert_eq!(first, second, "chaos schedule must replay byte-identically under one seed");
    assert_eq!((fired, traced), (fired2, traced2), "fault/trace totals must replay");
}
