//! Integration battery for the admin unix-socket plane.
//!
//! Exercises the operator surface end-to-end over a real `UnixStream`:
//! the `SO_PEERCRED` gate (rejection happens before any frame is
//! parsed), the version handshake, frame-size misbehavior, live
//! `metrics`/`sessions` during an active transfer, `drain` idempotence
//! through both cores, all-or-nothing `reload`, and `trace follow`
//! byte-identity across two seeded replays.

#![cfg(target_os = "linux")]

use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::{Command, DcauMode};
use ig_server::admin::wire::{self, Json};
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, ServerCore};
use ig_xio::{FrameBuf, Link, TcpLink};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: u64 = 1_000_000;
const PAYLOAD_LEN: usize = 40_000;
const BLOCK: usize = 4 * 1024;
/// Throttle for tests that need a transfer to stay in flight long
/// enough to observe it from the admin plane (~0.5 s at this rate).
const SLOW_RATE: f64 = 80_000.0;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

fn payload() -> Vec<u8> {
    (0..PAYLOAD_LEN as u32).map(|i| (i * 13 % 251) as u8).collect()
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ig-admin-{}-{}.sock", tag, std::process::id()))
}

/// A started server plus the client-side credentials to log into it.
struct World {
    server: Arc<GridFtpServer>,
    cred: Credential,
    trust: TrustStore,
}

fn start_world(
    tag: &str,
    core: ServerCore,
    obs: &Arc<ig_obs::Obs>,
    admin_uid: Option<u32>,
    stripe_rate: Option<f64>,
) -> (World, PathBuf) {
    let sock = sock_path(tag);
    let mut rng = ig_crypto::rng::seeded(0xAD317);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Admin CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(
            dn("/CN=admin.example.org"),
            &host_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let dsi = Arc::new(MemDsi::new());
    let mut cfg = ServerConfig::new(
        "admin.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::clone(&dsi) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_block_size(BLOCK)
    .with_stall_timeout(Duration::from_secs(3))
    .with_obs(Arc::clone(obs))
    .with_core(core)
    .with_admin_socket(sock.clone());
    if let Some(rate) = stripe_rate {
        cfg = cfg.with_stripes(1, Some(rate));
    }
    if let Some(uid) = admin_uid {
        cfg = cfg.with_admin_uid(uid);
    }
    let server = GridFtpServer::start(cfg, 7).unwrap();
    (
        World {
            server,
            cred: Credential::new(vec![user_cert], user_keys.private).unwrap(),
            trust,
        },
        sock,
    )
}

fn login(world: &World) -> ClientSession {
    let cfg = ClientConfig::new(world.cred.clone(), world.trust.clone())
        .with_clock(Clock::Fixed(NOW))
        .with_seed(99)
        .no_delegation()
        .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(5))));
    let tcp = TcpLink::connect(world.server.addr().to_socket_addr()).unwrap();
    let mut session = ClientSession::from_link(Box::new(tcp) as Box<dyn Link>, cfg).unwrap();
    session.login().unwrap();
    session.set_dcau(DcauMode::None).unwrap();
    session
}

fn raw_connect(path: &Path) -> UnixStream {
    let stream = UnixStream::connect(path).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
    stream
}

/// Read one `\n`-terminated line (the handshake reply).
fn read_line(stream: &mut UnixStream) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert!(Instant::now() < deadline, "no handshake line within 10s");
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e) if matches!(
                e.kind(),
                ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
            ) => {}
            Err(e) => panic!("handshake read failed: {e}"),
        }
    }
    String::from_utf8(line).unwrap()
}

/// Read until the server closes the connection; returns whatever
/// arrived first. A reset counts as closed (the server may RST a
/// connection it drops with unread bytes in flight).
fn drain_to_close(stream: &mut UnixStream) -> Vec<u8> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut out = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(
                e.kind(),
                ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
            ) => {
                assert!(Instant::now() < deadline, "server never closed the connection");
            }
            Err(e) if e.kind() == ErrorKind::ConnectionReset => return out,
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

/// Framed admin client speaking the real wire protocol.
struct Admin {
    stream: UnixStream,
    inbuf: FrameBuf,
}

impl Admin {
    fn connect(path: &Path) -> Admin {
        let mut stream = raw_connect(path);
        stream.write_all(b"IGADMIN 1\n").unwrap();
        let hello = read_line(&mut stream);
        assert_eq!(hello, "IGADMIN 1 OK", "bad handshake reply");
        Admin { stream, inbuf: FrameBuf::new() }
    }

    fn send(&mut self, body: &str) {
        self.stream.write_all(&FrameBuf::encode(body.as_bytes())).unwrap();
    }

    fn recv_text(&mut self) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(frame) = self.inbuf.next_frame().unwrap() {
                return String::from_utf8(frame).unwrap();
            }
            assert!(Instant::now() < deadline, "no admin reply within 10s");
            let mut chunk = [0u8; 65536];
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("admin connection closed mid-reply"),
                Ok(n) => self.inbuf.push(&chunk[..n]),
                Err(e) if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
                Err(e) => panic!("admin read failed: {e}"),
            }
        }
    }

    fn request(&mut self, body: &str) -> Json {
        self.send(body);
        let text = self.recv_text();
        wire::parse(&text).unwrap_or_else(|e| panic!("unparsable admin reply {text:?}: {e}"))
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

#[test]
fn wrong_uid_is_rejected_before_any_frame_is_parsed() {
    let obs = ig_obs::Obs::new("admin-uid");
    let not_me = ig_xio::uds::process_euid().wrapping_add(1);
    let (world, sock) =
        start_world("uid", ServerCore::Threaded, &obs, Some(not_me), None);

    let mut stream = raw_connect(&sock);
    // The hello may or may not make it out before the server drops us;
    // either way no byte of it gets read server-side.
    let _ = stream.write_all(b"IGADMIN 1\n");
    let got = drain_to_close(&mut stream);
    assert!(got.is_empty(), "rejected connection must not be answered: {got:?}");

    // The rejection is counted, and no request counter ever moved —
    // the frame layer was never reached.
    let deadline = Instant::now() + Duration::from_secs(5);
    while obs.metrics().counter_value("admin.rejected_uid") == 0 {
        assert!(Instant::now() < deadline, "admin.rejected_uid never incremented");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(obs.metrics().counter_value("admin.requests"), 0);
    world.server.shutdown();
}

#[test]
fn version_mismatch_fails_fast_with_a_legible_line() {
    let obs = ig_obs::Obs::new("admin-ver");
    let (world, sock) = start_world("ver", ServerCore::Threaded, &obs, None, None);

    let mut stream = raw_connect(&sock);
    stream.write_all(b"IGADMIN 99\n").unwrap();
    let line = read_line(&mut stream);
    assert_eq!(line, "IGADMIN 1 ERR version-mismatch");
    // ... and then the connection is closed without further ado.
    assert!(drain_to_close(&mut stream).is_empty());
    assert_eq!(obs.metrics().counter_value("admin.requests"), 0);
    world.server.shutdown();
}

#[test]
fn oversized_announced_frame_drops_the_connection() {
    let obs = ig_obs::Obs::new("admin-huge");
    let (world, sock) = start_world("huge", ServerCore::Threaded, &obs, None, None);

    let mut stream = raw_connect(&sock);
    stream.write_all(b"IGADMIN 1\n").unwrap();
    assert_eq!(read_line(&mut stream), "IGADMIN 1 OK");
    // Announce a 32 MiB frame — beyond even the control channel's cap.
    let announced = (32u32 * 1024 * 1024).to_be_bytes();
    stream.write_all(&announced).unwrap();
    let _ = stream.write_all(b"garbage that will never be read to completion");
    // Protocol violation: dropped without a reply frame.
    assert!(drain_to_close(&mut stream).is_empty());
    assert_eq!(obs.metrics().counter_value("admin.requests"), 0);
    world.server.shutdown();
}

#[test]
fn overlarge_admin_frame_gets_a_typed_reply_then_close() {
    let obs = ig_obs::Obs::new("admin-big");
    let (world, sock) = start_world("big", ServerCore::Threaded, &obs, None, None);

    let mut admin = Admin::connect(&sock);
    // Valid framing, but the decoded payload exceeds ADMIN_MAX_FRAME.
    let body = vec![b'x'; ig_server::admin::ADMIN_MAX_FRAME + 1];
    admin.stream.write_all(&FrameBuf::encode(&body)).unwrap();
    let reply = admin.recv_text();
    assert_eq!(reply, "{\"ok\":false,\"error\":\"frame-too-large\"}");
    assert!(drain_to_close(&mut admin.stream).is_empty(), "connection must close");
    assert_eq!(obs.metrics().counter_value("admin.requests"), 0);
    world.server.shutdown();
}

#[test]
fn truncated_frame_is_never_parsed() {
    let obs = ig_obs::Obs::new("admin-trunc");
    let (world, sock) = start_world("trunc", ServerCore::Threaded, &obs, None, None);

    let mut stream = raw_connect(&sock);
    stream.write_all(b"IGADMIN 1\n").unwrap();
    assert_eq!(read_line(&mut stream), "IGADMIN 1 OK");
    // Announce 100 bytes, deliver 10, walk away.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(b"0123456789").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    assert!(drain_to_close(&mut stream).is_empty(), "half a frame must get no reply");
    assert_eq!(obs.metrics().counter_value("admin.requests"), 0);
    world.server.shutdown();
}

/// `metrics` and `sessions` answered live while a throttled transfer is
/// in flight, and the metrics reply is byte-for-byte the SITE STATS
/// line (one serializer, two surfaces).
fn run_concurrent_metrics(tag: &str, core: ServerCore) {
    let obs = ig_obs::Obs::new("admin-live");
    let (world, sock) = start_world(tag, core, &obs, None, Some(SLOW_RATE));

    // Connect the admin plane *first* so its counters/histograms exist
    // in the registry before any stats render (stable key set).
    let mut admin = Admin::connect(&sock);

    let mut session = login(&world);
    let data = payload();
    let opts = TransferOpts::default().block(BLOCK).timeout(Some(Duration::from_secs(5)));
    let sent = transfer::put_bytes(&mut session, "/home/alice/live.bin", &data, &opts).unwrap();
    assert_eq!(sent, PAYLOAD_LEN as u64);

    // Kick off a ~0.5 s throttled GET on its own thread, then watch it
    // from the admin plane while it runs.
    let getter = std::thread::spawn(move || {
        let got = transfer::get_bytes(&mut session, "/home/alice/live.bin", &opts).unwrap();
        (session, got)
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut saw_transfer = false;
    while !saw_transfer {
        assert!(
            Instant::now() < deadline,
            "never observed the in-flight transfer from the admin plane"
        );
        let sessions = admin.request("{\"cmd\":\"sessions\"}");
        assert!(ok(&sessions), "sessions failed mid-transfer");
        let text = {
            let metrics = admin.request("{\"cmd\":\"metrics\"}");
            assert!(ok(&metrics), "metrics failed mid-transfer");
            admin.send("{\"cmd\":\"sessions\"}");
            admin.recv_text()
        };
        if text.contains("\"state\":\"transfer\"") {
            assert!(text.contains("\"user\":\"alice\""), "bad session row: {text}");
            assert!(text.contains("\"last_verb\":\"RETR\""), "bad session row: {text}");
            saw_transfer = true;
        }
    }
    let (mut session, got) = getter.join().unwrap();
    assert_eq!(got, data);

    // One serializer, two surfaces. The first SITE STATS mints its own
    // reply-250 counter; compare the second against the admin render.
    // Counters tick between the two renders (possibly across a
    // digit-count boundary), so every run of digits collapses to one
    // `0` — keys, ordering, and structure must match exactly.
    let _ = session.command(&Command::Site("STATS".into())).unwrap();
    let stats = session.command(&Command::Site("STATS".into())).unwrap().text().to_string();
    let reply = {
        admin.send("{\"cmd\":\"metrics\"}");
        admin.recv_text()
    };
    let inner = reply
        .strip_prefix("{\"ok\":true,\"stats\":")
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unexpected metrics envelope: {reply}"));
    let mask = |s: &str| {
        let mut out = String::with_capacity(s.len());
        let mut in_digits = false;
        for c in s.chars() {
            if c.is_ascii_digit() {
                if !in_digits {
                    out.push('0');
                    in_digits = true;
                }
            } else {
                in_digits = false;
                out.push(c);
            }
        }
        out
    };
    assert_eq!(
        mask(&stats),
        mask(inner),
        "admin metrics and SITE STATS drifted apart"
    );

    session.quit().unwrap();
    world.server.shutdown();
}

#[test]
fn concurrent_metrics_during_transfer_threaded() {
    run_concurrent_metrics("live-t", ServerCore::Threaded);
}

#[test]
fn concurrent_metrics_during_transfer_reactor() {
    run_concurrent_metrics("live-r", ServerCore::Reactor);
}

/// Drain through the admin socket: first call drains cleanly, repeat
/// calls report the existing outcome instead of waiting again, and the
/// server stops accepting.
fn run_drain_idempotence(tag: &str, core: ServerCore) {
    let obs = ig_obs::Obs::new("admin-drain");
    let (world, sock) = start_world(tag, core, &obs, None, None);

    let mut admin = Admin::connect(&sock);
    let first = admin.request("{\"cmd\":\"drain\",\"deadline_ms\":2000}");
    assert!(ok(&first), "drain failed");
    assert_eq!(first.get("already").and_then(Json::as_bool), Some(false));
    assert_eq!(first.get("clean").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("transfers_interrupted").and_then(Json::as_u64), Some(0));

    // A completed drain stops the server (and with it the admin accept
    // loop), so idempotence of the underlying state machine is checked
    // on the handle: no second wait, same terminal outcome.
    assert!(world.server.stopped(), "completed drain must stop the server");
    let second = world.server.drain(Duration::from_secs(2));
    assert!(second.already, "second drain must report the existing outcome");
    assert!(second.clean);
    assert_eq!(second.waited_ms, 0, "second drain must not wait again");

    // New control connections are refused or immediately closed.
    if let Ok(tcp) = TcpLink::connect(world.server.addr().to_socket_addr()) {
        let cfg = ClientConfig::new(world.cred.clone(), world.trust.clone())
            .with_clock(Clock::Fixed(NOW))
            .with_seed(100)
            .no_delegation()
            .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(2))));
        assert!(
            ClientSession::from_link(Box::new(tcp) as Box<dyn Link>, cfg).is_err(),
            "a drained server must not greet new sessions"
        );
    }
}

#[test]
fn drain_is_idempotent_threaded() {
    run_drain_idempotence("drain-t", ServerCore::Threaded);
}

#[test]
fn drain_is_idempotent_reactor() {
    run_drain_idempotence("drain-r", ServerCore::Reactor);
}

#[test]
fn invalid_reload_leaves_the_old_config_live() {
    let obs = ig_obs::Obs::new("admin-reload");
    let (world, sock) = start_world("reload", ServerCore::Threaded, &obs, None, None);
    let mut admin = Admin::connect(&sock);

    // Establish a known-good live value.
    let applied = admin.request("{\"cmd\":\"reload\",\"set\":{\"block_size\":8192}}");
    assert!(ok(&applied), "valid reload rejected");
    let tun = applied.get("tunables").expect("reload echoes active tunables");
    assert_eq!(tun.get("block_size").and_then(Json::as_u64), Some(8192));

    // A batch with one unknown field applies *nothing* — not even the
    // valid block_size riding in the same request.
    let rejected =
        admin.request("{\"cmd\":\"reload\",\"set\":{\"block_size\":4096,\"bogus\":1}}");
    assert!(!ok(&rejected));
    assert_eq!(rejected.get("error").and_then(Json::as_str), Some("unknown-field"));
    assert_eq!(rejected.get("field").and_then(Json::as_str), Some("bogus"));

    // Right knob, doesn't turn: typed as not-reloadable, not a typo.
    let fixed = admin.request("{\"cmd\":\"reload\",\"set\":{\"core\":1}}");
    assert_eq!(fixed.get("error").and_then(Json::as_str), Some("not-reloadable"));
    assert_eq!(fixed.get("field").and_then(Json::as_str), Some("core"));

    // Out-of-range value on an otherwise reloadable field.
    let invalid = admin.request("{\"cmd\":\"reload\",\"set\":{\"block_size\":0}}");
    assert_eq!(invalid.get("error").and_then(Json::as_str), Some("invalid-value"));
    assert_eq!(invalid.get("field").and_then(Json::as_str), Some("block_size"));

    // After three rejections the old config is still live, bit for bit.
    let echo = admin.request("{\"cmd\":\"reload\",\"set\":{}}");
    assert!(ok(&echo));
    let tun = echo.get("tunables").unwrap();
    assert_eq!(
        tun.get("block_size").and_then(Json::as_u64),
        Some(8192),
        "a rejected batch must leave the previous tunables untouched"
    );
    world.server.shutdown();
}

/// One seeded client scenario with a `trace follow` stream attached.
/// Returns the concatenated streamed JSONL after checking it equals the
/// one-shot stable export.
fn follow_run(tag: &str) -> String {
    let obs = ig_obs::Obs::new("admin-follow");
    let (world, sock) = start_world(tag, ServerCore::Threaded, &obs, None, None);

    let follow_sock = sock.clone();
    let follower = std::thread::spawn(move || {
        let mut admin = Admin::connect(&follow_sock);
        admin.send("{\"cmd\":\"trace\",\"follow\":true,\"max_ms\":2500}");
        let mut jsonl = String::new();
        let mut cursor = 0u64;
        loop {
            let text = admin.recv_text();
            let v = wire::parse(&text).unwrap();
            assert!(ok(&v), "trace frame not ok: {text}");
            let next = v.get("next").and_then(Json::as_u64).unwrap();
            assert!(next >= cursor, "trace cursor went backwards: {next} < {cursor}");
            cursor = next;
            assert_eq!(
                v.get("dropped").and_then(Json::as_u64),
                Some(0),
                "stable ring must not drop under this load"
            );
            jsonl.push_str(v.get("jsonl").and_then(Json::as_str).unwrap());
            if v.get("done").and_then(Json::as_bool) == Some(true) {
                return jsonl;
            }
        }
    });

    // A deterministic little session: login, two PUTs, quit. No
    // throttling, no chaos — every stable event is a pure function of
    // the seeds.
    let mut session = login(&world);
    let data = payload();
    let opts = TransferOpts::default().block(BLOCK).timeout(Some(Duration::from_secs(5)));
    transfer::put_bytes(&mut session, "/home/alice/one.bin", &data, &opts).unwrap();
    transfer::put_bytes(&mut session, "/home/alice/two.bin", &data, &opts).unwrap();
    session.quit().unwrap();
    // Wait for session teardown so the trailing span.end is recorded
    // well inside the follow window.
    let deadline = Instant::now() + Duration::from_secs(5);
    while obs.metrics().gauge_value("server.sessions_active") != 0.0 {
        assert!(Instant::now() < deadline, "session never tore down");
        std::thread::sleep(Duration::from_millis(5));
    }

    let streamed = follower.join().unwrap();
    assert_eq!(
        streamed,
        obs.export_stable(),
        "the followed stream must reassemble the one-shot stable export"
    );
    world.server.shutdown();
    streamed
}

#[test]
fn trace_follow_is_byte_identical_across_seeded_replays() {
    let first = follow_run("follow1");
    let second = follow_run("follow2");
    assert_eq!(first, second, "trace follow must replay byte-identically");
    assert!(first.contains("\"event\":\"cmd.dispatch\""), "missing cmd.dispatch:\n{first}");
    assert!(first.contains("\"name\":\"transfer\""), "missing transfer span");
    // The admin plane records unstable events only; following the
    // trace must not have perturbed the stream being followed.
    assert!(!first.contains("admin."), "admin events leaked into the stable trace");
}
