//! The SITE STATS surface and the client's live progress series.
//!
//! Two contracts:
//! * `SITE STATS` returns one JSON line whose metric counters agree with
//!   the usage accounting in `usage.rs` — they are incremented at the
//!   same call sites, and this test holds them to it after a real PUT
//!   and GET over TCP loopback.
//! * 112 perf markers arriving on the control channel during a GET are
//!   parsed into a live progress series via `TransferOpts::on_progress`,
//!   and the same bytes land in the client's metrics registry.

use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::{Command, DcauMode};
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, ServerCore};
use ig_xio::{Link, TcpLink};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const NOW: u64 = 1_000_000;
const PAYLOAD_LEN: usize = 40_000;
/// Server data plane is throttled well below loopback speed so the GET
/// spans several 50 ms marker periods and 112s actually fire.
const STRIPE_RATE: f64 = 80_000.0;
const BLOCK: usize = 4 * 1024;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

fn payload() -> Vec<u8> {
    (0..PAYLOAD_LEN as u32).map(|i| (i * 13 % 251) as u8).collect()
}

#[test]
fn site_stats_agrees_with_usage_and_markers_drive_progress() {
    run_stats_scenario(ServerCore::Threaded);
}

/// The identical scenario through the epoll reactor core: the stats
/// surface, usage accounting, and marker-driven progress must not care
/// which concurrency core multiplexed the session.
#[cfg(target_os = "linux")]
#[test]
fn site_stats_and_markers_on_reactor_core() {
    run_stats_scenario(ServerCore::Reactor);
}

fn run_stats_scenario(core: ServerCore) {
    let server_obs = ig_obs::Obs::new("stats-server");
    let client_obs = ig_obs::Obs::new("stats-client");

    let mut rng = ig_crypto::rng::seeded(0x57A75);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Stats CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(
            dn("/CN=stats.example.org"),
            &host_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let dsi = Arc::new(MemDsi::new());
    let cfg = ServerConfig::new(
        "stats.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::clone(&dsi) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stripes(1, Some(STRIPE_RATE))
    .with_block_size(BLOCK)
    .with_stall_timeout(Duration::from_secs(3))
    .with_obs(Arc::clone(&server_obs))
    .with_core(core);
    let server = GridFtpServer::start(cfg, 7).unwrap();

    let client_cfg = ClientConfig::new(
        Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_seed(99)
    .no_delegation()
    .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(5))))
    .with_obs(Arc::clone(&client_obs));
    let tcp = TcpLink::connect(server.addr().to_socket_addr()).unwrap();
    let link: Box<dyn Link> = Box::new(tcp);
    let mut session = ClientSession::from_link(link, client_cfg).unwrap();
    session.login().unwrap();
    session.set_dcau(DcauMode::None).unwrap();

    let data = payload();
    let opts =
        TransferOpts::default().block(BLOCK).timeout(Some(Duration::from_secs(5)));
    let sent = transfer::put_bytes(&mut session, "/home/alice/obs.bin", &data, &opts).unwrap();
    assert_eq!(sent, PAYLOAD_LEN as u64);

    // GET with a live progress callback fed by 112 markers.
    let series: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&series);
    let opts_get = opts.clone().on_progress(move |m| sink.lock().unwrap().push(m.stripe_bytes));
    let got = transfer::get_bytes(&mut session, "/home/alice/obs.bin", &opts_get).unwrap();
    assert_eq!(got, data);

    // The throttled transfer must have produced a usable progress curve:
    // non-empty, monotone, and bounded by the file size.
    let series = series.lock().unwrap().clone();
    assert!(!series.is_empty(), "no 112 markers reached on_progress");
    for w in series.windows(2) {
        assert!(w[0] <= w[1], "progress series must be monotone: {series:?}");
    }
    let last = *series.last().unwrap();
    assert!(last > 0 && last <= PAYLOAD_LEN as u64, "bad final progress {last}");

    // The same markers landed in the client registry.
    let m = client_obs.metrics();
    assert_eq!(m.counter_value("client.perf_markers"), series.len() as u64);
    assert_eq!(m.gauge_value("client.transfer_progress_bytes"), last as f64);

    // SITE STATS: one JSON line combining usage totals with the metrics
    // snapshot — counters must agree with usage.rs exactly.
    let reply = session.command(&Command::Site("STATS".into())).unwrap();
    assert_eq!(reply.code, 250);
    let stats = reply.text().to_string();
    let usage = &server.config().usage;
    assert_eq!(usage.total_transfers(), 2);
    assert_eq!(usage.total_bytes(), 2 * PAYLOAD_LEN as u64);
    assert!(
        stats.contains(&format!(
            "\"usage\":{{\"transfers\":{},\"bytes\":{}}}",
            usage.total_transfers(),
            usage.total_bytes()
        )),
        "usage totals missing from SITE STATS: {stats}"
    );
    for needle in [
        "\"server.transfers_in\":1".to_string(),
        "\"server.transfers_out\":1".to_string(),
        format!("\"server.bytes_in\":{PAYLOAD_LEN}"),
        format!("\"server.bytes_out\":{PAYLOAD_LEN}"),
    ] {
        assert!(stats.contains(&needle), "missing {needle} in SITE STATS: {stats}");
    }
    // The shared serializer pre-registers the scheduler and UDP-driver
    // counters, so the stats *shape* is stable even on a TCP-only run
    // with no scheduler attached — dashboards can rely on the keys
    // existing, zero-valued, from the first scrape.
    for needle in [
        "\"gol.sched.submitted\":0",
        "\"gol.sched.grants\":0",
        "\"gol.sched.rejects\":0",
        "\"gol.sched.queue_full\":0",
        "\"udp.retransmits\":0",
        "\"udp.naks\":0",
        "\"udp.corrupt_drops\":0",
        "\"udp.chaos_faults\":0",
    ] {
        assert!(stats.contains(needle), "missing {needle} in SITE STATS: {stats}");
    }
    // The command loop itself is instrumented.
    assert!(stats.contains("\"server.commands\":"), "missing command counter: {stats}");
    assert!(stats.contains("\"server.cmd_rtt_ns\":"), "missing RTT histogram: {stats}");
    assert!(stats.contains("\"component\":\"stats-server\""), "wrong component: {stats}");
    // The serving core labels the stats line, and the live-session gauge
    // counts this one session regardless of core.
    let label = format!("\"core\":\"{}\"", core.label());
    assert!(stats.contains(&label), "missing {label} in SITE STATS: {stats}");
    assert!(
        stats.contains("\"server.sessions_active\":1"),
        "live-session gauge missing or wrong in SITE STATS: {stats}"
    );

    // One serializer, two surfaces: the SITE STATS line must be
    // byte-for-byte what `ig_server::stats_json` renders from the same
    // registry — the function the admin plane's `metrics` command also
    // calls. A *second* SITE STATS is compared (the first one minted
    // its own `server.reply_250` counter, which would otherwise differ
    // as a key). Counters tick between the two renders (and RTT
    // quantiles move, possibly across digit-count boundaries), so every
    // run of ASCII digits collapses to a single `0` before comparing;
    // the keys, ordering, and structure must match exactly.
    let stats =
        session.command(&Command::Site("STATS".into())).unwrap().text().to_string();
    let direct =
        ig_server::stats_json(server_obs.component(), core.label(), usage, server_obs.metrics());
    let mask = |s: &str| {
        let mut out = String::with_capacity(s.len());
        let mut in_digits = false;
        for c in s.chars() {
            if c.is_ascii_digit() {
                if !in_digits {
                    out.push('0');
                    in_digits = true;
                }
            } else {
                in_digits = false;
                out.push(c);
            }
        }
        out
    };
    assert_eq!(
        mask(&stats),
        mask(&direct),
        "SITE STATS drifted from the shared stats_json serializer"
    );

    session.quit().unwrap();
    server.shutdown();
    // After QUIT the session object is torn down on either core and the
    // gauge returns to zero (poll briefly: teardown is asynchronous).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if server_obs.metrics().gauge_value("server.sessions_active") == 0.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sessions_active gauge never returned to 0"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
