//! Differential battery for the sharded usage ledger (DESIGN.md §14).
//!
//! The sharded [`UsageReporter`] and the pre-sharding single-mutex
//! implementation (kept as [`oracle::SingleMutexReporter`]) are driven
//! with the same record streams and must produce identical canonical
//! snapshots and aggregates:
//!
//! * a proptest feeds both with the same interleaved multi-thread record
//!   stream (arbitrary records, arbitrary shard routing, N real threads)
//!   and asserts snapshot equality after the dust settles;
//! * a loom-style exhaustive schedule test enumerates *every*
//!   interleaving of two writer streams at small N and checks the shard
//!   merge path at every intermediate point — any torn merge, lost
//!   record, or ordering divergence shows up as a snapshot mismatch at
//!   some prefix.

use ig_server::usage::{oracle::SingleMutexReporter, TransferRecord, UsageReporter};
use proptest::prelude::*;
use std::sync::Arc;

fn rec(timestamp: u64, bytes: u64, user_tag: u8, inbound: bool, streams: u32) -> TransferRecord {
    TransferRecord {
        timestamp,
        bytes,
        user: format!("user{user_tag}"),
        inbound,
        streams,
    }
}

/// Case-count override for CI smoke runs (`IG_PROPTEST_CASES`).
fn cases(default: u32) -> u32 {
    std::env::var("IG_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Strategy: one raw record (timestamps clustered so aggregation buckets
/// overlap; user tags small so identical records occur and the canonical
/// order's tie-breaking is exercised).
fn record_strategy() -> impl Strategy<Value = TransferRecord> {
    (0u64..500, 0u64..1_000_000, any::<u8>(), any::<bool>(), 1u32..=8)
        .prop_map(|(t, b, u, i, s)| rec(t, b, u % 4, i, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// N real threads hammer the sharded ledger (thread-hint routing)
    /// while the oracle absorbs the identical records; final snapshots,
    /// totals and aggregates must be identical.
    #[test]
    fn threaded_stream_matches_oracle(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(record_strategy(), 0..40), 1..6)
    ) {
        let sharded = UsageReporter::new();
        let oracle = SingleMutexReporter::new();
        let threads: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|stream| {
                let sharded = Arc::clone(&sharded);
                let oracle = Arc::clone(&oracle);
                std::thread::spawn(move || {
                    for r in stream {
                        sharded.record(r.clone());
                        oracle.record(r);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        prop_assert_eq!(sharded.snapshot(), oracle.snapshot());
        prop_assert_eq!(sharded.aggregate(60), oracle.aggregate(60));
        prop_assert_eq!(sharded.total_transfers(), oracle.total_transfers());
        prop_assert_eq!(sharded.total_bytes(), oracle.total_bytes());
    }

    /// Arbitrary explicit shard routing (any stripe for any record) on
    /// any shard count is invisible to the merged reader.
    #[test]
    fn arbitrary_routing_is_invisible(
        shards in 1usize..=8,
        routed in proptest::collection::vec((any::<usize>(), record_strategy()), 0..120)
    ) {
        let sharded = UsageReporter::sharded(shards);
        let oracle = SingleMutexReporter::new();
        for (route, r) in &routed {
            sharded.record_on(*route, r.clone());
            oracle.record(r.clone());
        }
        prop_assert_eq!(sharded.snapshot(), oracle.snapshot());
        prop_assert_eq!(sharded.aggregate(10), oracle.aggregate(10));
    }

    /// Roll-up path: absorbing sharded reporters into a sharded hub
    /// equals absorbing the same records into the oracle directly.
    #[test]
    fn absorb_rollup_matches_oracle(
        fleets in proptest::collection::vec(
            proptest::collection::vec(record_strategy(), 0..20), 0..6)
    ) {
        let hub = UsageReporter::new();
        let oracle = SingleMutexReporter::new();
        for (i, stream) in fleets.iter().enumerate() {
            let server = UsageReporter::sharded(1 + i % 4);
            for (j, r) in stream.iter().enumerate() {
                server.record_on(j, r.clone());
                oracle.record(r.clone());
            }
            hub.absorb(&server);
        }
        prop_assert_eq!(hub.snapshot(), oracle.snapshot());
    }
}

// ---------------------------------------------------------------------
// Loom-style exhaustive schedule exploration for the shard merge path.
//
// Two writer "threads" A and B target distinct stripes of a 2-shard
// ledger (the sticky thread-hint routing in production gives exactly
// this shape). Because each stripe is its own lock, the concurrent
// history's observable states are exactly the interleavings of the two
// program orders — so enumerating every merge order of A's and B's
// record streams, and snapshotting after every prefix, visits every
// state a reader could observe under any real schedule. Each visited
// state is checked against the oracle fed the same applied prefix.
// ---------------------------------------------------------------------

/// Recursively walk every interleaving of `a[ai..]` / `b[bi..]`,
/// checking the sharded snapshot against the oracle at every prefix.
/// Returns the number of schedules explored.
fn explore(
    a: &[TransferRecord],
    b: &[TransferRecord],
    ai: usize,
    bi: usize,
    sharded: &UsageReporter,
    oracle: &SingleMutexReporter,
) -> u64 {
    // The merge-path invariant, at every reachable intermediate state:
    // snapshot == oracle snapshot, totals agree, aggregate agrees.
    let snap = sharded.snapshot();
    let want = oracle.snapshot();
    assert_eq!(snap, want, "diverged at prefix ai={ai} bi={bi}");
    assert_eq!(sharded.total_transfers(), want.transfers, "totals tore at ai={ai} bi={bi}");
    assert_eq!(sharded.aggregate(7), oracle.aggregate(7), "aggregate diverged");

    if ai == a.len() && bi == b.len() {
        return 1;
    }
    let mut explored = 0;
    if ai < a.len() {
        // Apply one step of A, recurse, then rebuild state from scratch
        // (the ledger has no "undo"; rebuilding keeps the walk simple
        // and the state exact).
        let (s2, o2) = rebuild(a, b, ai + 1, bi);
        explored += explore(a, b, ai + 1, bi, &s2, &o2);
    }
    if bi < b.len() {
        let (s2, o2) = rebuild(a, b, ai, bi + 1);
        explored += explore(a, b, ai, bi + 1, &s2, &o2);
    }
    explored
}

/// Build a fresh 2-shard ledger + oracle holding A's first `ai` records
/// (stripe 0) and B's first `bi` (stripe 1).
fn rebuild(
    a: &[TransferRecord],
    b: &[TransferRecord],
    ai: usize,
    bi: usize,
) -> (UsageReporter, SingleMutexReporter) {
    let sharded = UsageReporter::sharded(2);
    let oracle = SingleMutexReporter::default();
    for r in &a[..ai] {
        sharded.record_on(0, r.clone());
        oracle.record(r.clone());
    }
    for r in &b[..bi] {
        sharded.record_on(1, r.clone());
        oracle.record(r.clone());
    }
    (sharded, oracle)
}

#[test]
fn exhaustive_two_writer_schedules() {
    // Streams chosen to collide on timestamps and users, so canonical
    // ordering ties and bucket sharing are both exercised.
    let a = vec![rec(10, 100, 0, true, 4), rec(10, 100, 0, true, 4), rec(30, 5, 1, false, 1)];
    let b = vec![rec(10, 7, 0, false, 2), rec(20, 9, 2, true, 8), rec(30, 5, 1, false, 1)];
    let (s0, o0) = rebuild(&a, &b, 0, 0);
    let explored = explore(&a, &b, 0, 0, &s0, &o0);
    // C(6,3) = 20 distinct complete schedules for 3+3 ops.
    assert_eq!(explored, 20, "must visit every interleaving");
}

#[test]
fn exhaustive_schedules_asymmetric_lengths() {
    let a = vec![rec(1, 1, 0, true, 1), rec(2, 2, 0, true, 1)];
    let b = vec![
        rec(1, 3, 1, false, 2),
        rec(1, 3, 1, false, 2),
        rec(9, 4, 2, true, 4),
        rec(500, 1, 3, false, 8),
    ];
    let (s0, o0) = rebuild(&a, &b, 0, 0);
    let explored = explore(&a, &b, 0, 0, &s0, &o0);
    // C(6,2) = 15 complete schedules for 2+4 ops.
    assert_eq!(explored, 15);
}
