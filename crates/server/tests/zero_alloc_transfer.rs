//! Allocation accounting for the MODE E data plane.
//!
//! Streams a multi-megabyte transfer over a real TCP loopback through the
//! DTP sender and receiver and asserts that heap allocations grow with
//! *read chunks* (64 KiB granularity), not with *blocks*: the per-block
//! seal/frame/send path is allocation-free. The old code allocated at
//! least four times per block (fragment payload copy, encode buffer,
//! receive buffer, decode payload copy); this test fails if that
//! behaviour comes back. Lives alone in its own test binary so no other
//! test's allocations can race the counter.

use ig_server::dtp::{send_ranges, Progress, Receiver};
use ig_server::{Dsi, MemDsi, UserContext};
use ig_xio::{Link, TcpLink};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn transfer_allocations_scale_with_chunks_not_blocks() {
    const TOTAL: usize = 4 << 20; // 4 MiB
    const BLOCK: usize = 8 * 1024; // 512 blocks, read chunk stays 64 KiB

    let data: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();
    let src = MemDsi::new();
    src.put("/src.bin", &data);
    let src: Arc<dyn Dsi> = Arc::new(src);
    let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
    let user = UserContext::superuser();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let receiver = Receiver::new(Arc::clone(&dst), user.clone(), "/dst.bin", Progress::new());

    let mut sender_links: Vec<Box<dyn Link>> = Vec::new();
    for _ in 0..2 {
        let out = TcpLink::connect(addr).unwrap();
        let (inbound, _) = listener.accept().unwrap();
        sender_links.push(Box::new(out));
        receiver.add_stream(Box::new(TcpLink::new(inbound))).unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let sent = send_ranges(
        sender_links,
        &src,
        &user,
        "/src.bin",
        &[(0, TOTAL as u64)],
        BLOCK,
        &Progress::new(),
    )
    .unwrap();
    assert_eq!(sent, TOTAL as u64);
    assert_eq!(receiver.finish().unwrap(), TOTAL as u64);
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    let blocks = TOTAL / BLOCK;
    assert!(
        delta < blocks,
        "transfer of {blocks} blocks performed {delta} allocations — \
         the per-block path is allocating again"
    );

    // And the bytes arrived intact.
    let got = ig_server::dsi::read_all(dst.as_ref(), &user, "/dst.bin", 1 << 16).unwrap();
    assert_eq!(got, data);
}
