//! Differential testing of the two concurrency cores.
//!
//! The epoll reactor must be observationally identical to the blocking
//! thread-per-session core: same replies, same ordering, same transfer
//! results. The interesting divergence risk is *partial reads* — the
//! reactor reassembles command frames from whatever byte fragments
//! epoll hands it, while the threaded core blocks in `read_exact` — so
//! the property test drives both servers with identical command scripts
//! cut at arbitrary byte boundaries and demands byte-equal reply
//! streams. A deterministic authenticated PUT/GET differential over
//! `MemDsi` covers the post-auth path.

#![cfg(target_os = "linux")]

use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::{Command, DcauMode};
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, ServerCore};
use ig_xio::{Link, TcpLink};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const NOW: u64 = 1_000_000;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

/// Pre-auth command vocabulary. Every entry must elicit a reply without
/// closing the session (530s, 500s, and 504s included on purpose) so a
/// script of N commands + QUIT always yields exactly N + 1 replies.
const VOCAB: &[&str] = &[
    "FEAT",
    "NOOP",
    "TYPE I",
    "TYPE A",
    "TYPE Q",
    "MODE E",
    "MODE S",
    "MODE X",
    "RETR /x",
    "STOR /x",
    "PASV",
    "XYZZY",
    "",
    "ADAT aGVsbG8=",
    "AUTH KERBEROS",
];

fn preauth_config() -> ServerConfig {
    let mut rng = ig_crypto::rng::seeded(0xD1FF);
    let (ca, cred) = ig_gsi::context::test_support::ca_and_credential(
        &mut rng,
        "/O=Diff CA",
        "/CN=diff.example.org",
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());
    ServerConfig::new(
        "diff.example.org",
        cred,
        trust,
        Arc::new(ig_server::GcmuAuthz::new("diff.example.org")),
        Arc::new(MemDsi::new()),
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_secs(5))
}

/// Both servers live for the whole test binary — each proptest case
/// opens a fresh connection rather than a fresh server.
fn servers() -> &'static (Arc<GridFtpServer>, Arc<GridFtpServer>) {
    static SERVERS: OnceLock<(Arc<GridFtpServer>, Arc<GridFtpServer>)> = OnceLock::new();
    SERVERS.get_or_init(|| {
        let threaded = GridFtpServer::start(
            preauth_config().with_core(ServerCore::Threaded),
            11,
        )
        .unwrap();
        let reactor = GridFtpServer::start(
            preauth_config().with_core(ServerCore::Reactor),
            11,
        )
        .unwrap();
        (threaded, reactor)
    })
}

/// Run `cmds` + QUIT against one server, writing the framed wire bytes
/// in the fragment pattern given by `cuts`, and collect every reply
/// (banner first). A torn-down connection records a `<closed>` sentinel
/// so early hangups also have to match across cores.
fn drive(server: &GridFtpServer, cmds: &[&str], cuts: &[usize]) -> Vec<String> {
    let stream = TcpStream::connect(server.addr().to_socket_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut link = TcpLink::new(stream);

    let mut replies = Vec::with_capacity(cmds.len() + 2);
    match link.recv() {
        Ok(banner) => replies.push(String::from_utf8_lossy(&banner).into_owned()),
        Err(_) => {
            replies.push("<closed>".into());
            return replies;
        }
    }

    // One contiguous byte string of length-prefixed frames, then cut it
    // wherever proptest said to — frame boundaries get no special
    // treatment, so length prefixes and payloads tear mid-field.
    let mut wire = Vec::new();
    for cmd in cmds.iter().map(|c| c.as_bytes()).chain(std::iter::once(&b"QUIT"[..])) {
        wire.extend_from_slice(&(cmd.len() as u32).to_be_bytes());
        wire.extend_from_slice(cmd);
    }
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
    bounds.push(0);
    bounds.push(wire.len());
    bounds.sort_unstable();
    bounds.dedup();
    for pair in bounds.windows(2) {
        writer.write_all(&wire[pair[0]..pair[1]]).unwrap();
        writer.flush().unwrap();
        // Give the fragment a chance to arrive alone at the reactor.
        std::thread::sleep(Duration::from_millis(1));
    }

    for _ in 0..=cmds.len() {
        match link.recv() {
            Ok(reply) => replies.push(String::from_utf8_lossy(&reply).into_owned()),
            Err(_) => {
                replies.push("<closed>".into());
                break;
            }
        }
    }
    replies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same script, same arbitrary fragmentation → byte-equal replies
    /// from both cores, in order, including the banner and the 221.
    #[test]
    fn partial_reads_reply_identically_across_cores(
        picks in proptest::collection::vec(0usize..VOCAB.len(), 0..8),
        cuts in proptest::collection::vec(0usize..512, 0..12),
    ) {
        let cmds: Vec<&str> = picks.iter().map(|&i| VOCAB[i]).collect();
        let (threaded, reactor) = servers();
        let a = drive(threaded, &cmds, &cuts);
        let b = drive(reactor, &cmds, &cuts);
        prop_assert_eq!(&a, &b, "cores diverged on script {:?}", cmds);
        let last = a.last().unwrap();
        prop_assert!(
            last.starts_with("221"),
            "script must end in a clean 221: {:?}",
            a
        );
    }
}

/// The full authenticated path: login, PUT, GET, and a fixed sequence
/// of filesystem commands must produce an identical transcript on both
/// cores over a fresh `MemDsi` each.
fn authed_transcript(core: ServerCore) -> Vec<String> {
    let mut rng = ig_crypto::rng::seeded(0xA0D1FF);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Diff CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(
            dn("/CN=diff.example.org"),
            &host_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let cfg = ServerConfig::new(
        "diff.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::new(MemDsi::new()) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_secs(5))
    .with_core(core);
    let server = GridFtpServer::start(cfg, 23).unwrap();

    let client_cfg = ClientConfig::new(
        Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_seed(31)
    .no_delegation()
    .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(5))))
    .with_obs(ig_obs::Obs::new("diff-client"));
    let link: Box<dyn Link> =
        Box::new(TcpLink::connect(server.addr().to_socket_addr()).unwrap());
    let mut session = ClientSession::from_link(link, client_cfg).unwrap();
    session.login().unwrap();
    session.set_dcau(DcauMode::None).unwrap();

    let mut transcript = Vec::new();
    let data: Vec<u8> = (0..20_000u32).map(|i| (i * 7 % 253) as u8).collect();
    let opts = TransferOpts::default().block(4096).timeout(Some(Duration::from_secs(5)));
    let sent =
        transfer::put_bytes(&mut session, "/home/alice/diff.bin", &data, &opts).unwrap();
    transcript.push(format!("put {sent}"));
    let got = transfer::get_bytes(&mut session, "/home/alice/diff.bin", &opts).unwrap();
    transcript.push(format!("get {} match={}", got.len(), got == data));

    for cmd in [
        Command::Size("/home/alice/diff.bin".into()),
        Command::Mkd("/home/alice/d".into()),
        Command::Cwd("/home/alice/d".into()),
        Command::Cdup,
        Command::Rmd("/home/alice/d".into()),
        Command::Mlst(Some("/home/alice/diff.bin".into())),
        Command::Dele("/home/alice/diff.bin".into()),
        Command::Size("/home/alice/diff.bin".into()),
    ] {
        let reply = session.command(&cmd).unwrap();
        transcript.push(format!("{} {}", reply.code, reply.text()));
    }
    session.quit().unwrap();
    server.shutdown();
    transcript
}

#[test]
fn authenticated_transcript_identical_across_cores() {
    let threaded = authed_transcript(ServerCore::Threaded);
    let reactor = authed_transcript(ServerCore::Reactor);
    assert_eq!(threaded, reactor, "authenticated transcripts diverged");
    assert_eq!(threaded[0], "put 20000");
    assert!(threaded[1].ends_with("match=true"), "GET payload corrupt: {}", threaded[1]);
}
