//! Differential testing of the two concurrency cores.
//!
//! The epoll reactor must be observationally identical to the blocking
//! thread-per-session core: same replies, same ordering, same transfer
//! results. The interesting divergence risk is *partial reads* — the
//! reactor reassembles command frames from whatever byte fragments
//! epoll hands it, while the threaded core blocks in `read_exact` — so
//! the property test drives both servers with identical command scripts
//! cut at arbitrary byte boundaries and demands byte-equal reply
//! streams. A deterministic authenticated PUT/GET differential over
//! `MemDsi` covers the post-auth path.

#![cfg(target_os = "linux")]

use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::{Command, DcauMode};
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, ServerCore};
use ig_xio::{Link, TcpLink};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const NOW: u64 = 1_000_000;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

/// Pre-auth command vocabulary. Every entry must elicit a reply without
/// closing the session (530s, 500s, and 504s included on purpose) so a
/// script of N commands + QUIT always yields exactly N + 1 replies.
const VOCAB: &[&str] = &[
    "FEAT",
    "NOOP",
    "TYPE I",
    "TYPE A",
    "TYPE Q",
    "MODE E",
    "MODE S",
    "MODE X",
    "RETR /x",
    "STOR /x",
    "PASV",
    "XYZZY",
    "",
    "ADAT aGVsbG8=",
    "AUTH KERBEROS",
    "PIPE 8",
    "PIPE 0",
    "PIPE nope",
    "ERET DIR 0 /x",
    "ESTO DIR /x",
    "ESTO A 0 /x",
];

fn preauth_config() -> ServerConfig {
    let mut rng = ig_crypto::rng::seeded(0xD1FF);
    let (ca, cred) = ig_gsi::context::test_support::ca_and_credential(
        &mut rng,
        "/O=Diff CA",
        "/CN=diff.example.org",
    );
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());
    ServerConfig::new(
        "diff.example.org",
        cred,
        trust,
        Arc::new(ig_server::GcmuAuthz::new("diff.example.org")),
        Arc::new(MemDsi::new()),
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_secs(5))
}

/// Both servers live for the whole test binary — each proptest case
/// opens a fresh connection rather than a fresh server.
fn servers() -> &'static (Arc<GridFtpServer>, Arc<GridFtpServer>) {
    static SERVERS: OnceLock<(Arc<GridFtpServer>, Arc<GridFtpServer>)> = OnceLock::new();
    SERVERS.get_or_init(|| {
        let threaded = GridFtpServer::start(
            preauth_config().with_core(ServerCore::Threaded),
            11,
        )
        .unwrap();
        let reactor = GridFtpServer::start(
            preauth_config().with_core(ServerCore::Reactor),
            11,
        )
        .unwrap();
        (threaded, reactor)
    })
}

/// Run `cmds` + QUIT against one server, writing the framed wire bytes
/// in the fragment pattern given by `cuts`, and collect every reply
/// (banner first). A torn-down connection records a `<closed>` sentinel
/// so early hangups also have to match across cores.
fn drive(server: &GridFtpServer, cmds: &[&str], cuts: &[usize]) -> Vec<String> {
    let stream = TcpStream::connect(server.addr().to_socket_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut link = TcpLink::new(stream);

    let mut replies = Vec::with_capacity(cmds.len() + 2);
    match link.recv() {
        Ok(banner) => replies.push(String::from_utf8_lossy(&banner).into_owned()),
        Err(_) => {
            replies.push("<closed>".into());
            return replies;
        }
    }

    // One contiguous byte string of length-prefixed frames, then cut it
    // wherever proptest said to — frame boundaries get no special
    // treatment, so length prefixes and payloads tear mid-field.
    let mut wire = Vec::new();
    for cmd in cmds.iter().map(|c| c.as_bytes()).chain(std::iter::once(&b"QUIT"[..])) {
        wire.extend_from_slice(&(cmd.len() as u32).to_be_bytes());
        wire.extend_from_slice(cmd);
    }
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
    bounds.push(0);
    bounds.push(wire.len());
    bounds.sort_unstable();
    bounds.dedup();
    for pair in bounds.windows(2) {
        writer.write_all(&wire[pair[0]..pair[1]]).unwrap();
        writer.flush().unwrap();
        // Give the fragment a chance to arrive alone at the reactor.
        std::thread::sleep(Duration::from_millis(1));
    }

    for _ in 0..=cmds.len() {
        match link.recv() {
            Ok(reply) => replies.push(String::from_utf8_lossy(&reply).into_owned()),
            Err(_) => {
                replies.push("<closed>".into());
                break;
            }
        }
    }
    replies
}

/// Case-count override for CI smoke runs (`IG_PROPTEST_CASES`).
fn cases(default: u32) -> u32 {
    std::env::var("IG_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Same script, same arbitrary fragmentation → byte-equal replies
    /// from both cores, in order, including the banner and the 221.
    #[test]
    fn partial_reads_reply_identically_across_cores(
        picks in proptest::collection::vec(0usize..VOCAB.len(), 0..8),
        cuts in proptest::collection::vec(0usize..512, 0..12),
    ) {
        let cmds: Vec<&str> = picks.iter().map(|&i| VOCAB[i]).collect();
        let (threaded, reactor) = servers();
        let a = drive(threaded, &cmds, &cuts);
        let b = drive(reactor, &cmds, &cuts);
        prop_assert_eq!(&a, &b, "cores diverged on script {:?}", cmds);
        let last = a.last().unwrap();
        prop_assert!(
            last.starts_with("221"),
            "script must end in a clean 221: {:?}",
            a
        );
    }

    /// Full pipelining: a large window of commands lands as one burst
    /// (every frame written before any reply is read, no pacing), and
    /// both cores must answer every queued command, in order, with
    /// byte-equal reply streams. This is the wire pattern a `PIPE`-ing
    /// client produces.
    #[test]
    fn pipelined_windows_reply_identically_across_cores(
        picks in proptest::collection::vec(0usize..VOCAB.len(), 0..24),
    ) {
        let cmds: Vec<&str> = picks.iter().map(|&i| VOCAB[i]).collect();
        let (threaded, reactor) = servers();
        let a = drive(threaded, &cmds, &[]);
        let b = drive(reactor, &cmds, &[]);
        prop_assert_eq!(&a, &b, "cores diverged on pipelined window {:?}", cmds);
        prop_assert_eq!(
            a.len(),
            cmds.len() + 2,
            "lost replies in a pipelined window (banner + one per command + 221): {:?}",
            a
        );
        prop_assert!(a.last().unwrap().starts_with("221"), "window must end in 221: {:?}", a);
    }
}

/// One authenticated client session against a fresh server on `core`
/// (fresh `MemDsi`, fixed seeds): the rig for every authed differential.
/// The server's DSI handle comes back too so tests can stage trees.
fn authed_rig(core: ServerCore) -> (Arc<GridFtpServer>, ClientSession, Arc<dyn Dsi>) {
    let mut rng = ig_crypto::rng::seeded(0xA0D1FF);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Diff CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(
            dn("/CN=diff.example.org"),
            &host_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let dsi: Arc<dyn Dsi> = Arc::new(MemDsi::new());
    let cfg = ServerConfig::new(
        "diff.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::clone(&dsi),
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_secs(5))
    .with_core(core);
    let server = GridFtpServer::start(cfg, 23).unwrap();

    let client_cfg = ClientConfig::new(
        Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_seed(31)
    .no_delegation()
    .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(5))))
    .with_obs(ig_obs::Obs::new("diff-client"));
    let link: Box<dyn Link> =
        Box::new(TcpLink::connect(server.addr().to_socket_addr()).unwrap());
    let mut session = ClientSession::from_link(link, client_cfg).unwrap();
    session.login().unwrap();
    session.set_dcau(DcauMode::None).unwrap();
    (server, session, dsi)
}

/// The full authenticated path: login, PUT, GET, and a fixed sequence
/// of filesystem commands must produce an identical transcript on both
/// cores over a fresh `MemDsi` each.
fn authed_transcript(core: ServerCore) -> Vec<String> {
    let (server, mut session, _dsi) = authed_rig(core);
    let mut transcript = Vec::new();
    let data: Vec<u8> = (0..20_000u32).map(|i| (i * 7 % 253) as u8).collect();
    let opts = TransferOpts::default().block(4096).timeout(Some(Duration::from_secs(5)));
    let sent =
        transfer::put_bytes(&mut session, "/home/alice/diff.bin", &data, &opts).unwrap();
    transcript.push(format!("put {sent}"));
    let got = transfer::get_bytes(&mut session, "/home/alice/diff.bin", &opts).unwrap();
    transcript.push(format!("get {} match={}", got.len(), got == data));

    for cmd in [
        Command::Size("/home/alice/diff.bin".into()),
        Command::Mkd("/home/alice/d".into()),
        Command::Cwd("/home/alice/d".into()),
        Command::Cdup,
        Command::Rmd("/home/alice/d".into()),
        Command::Mlst(Some("/home/alice/diff.bin".into())),
        Command::Dele("/home/alice/diff.bin".into()),
        Command::Size("/home/alice/diff.bin".into()),
    ] {
        let reply = session.command(&cmd).unwrap();
        transcript.push(format!("{} {}", reply.code, reply.text()));
    }
    session.quit().unwrap();
    server.shutdown();
    transcript
}

#[test]
fn authenticated_transcript_identical_across_cores() {
    let threaded = authed_transcript(ServerCore::Threaded);
    let reactor = authed_transcript(ServerCore::Reactor);
    assert_eq!(threaded, reactor, "authenticated transcripts diverged");
    assert_eq!(threaded[0], "put 20000");
    assert!(threaded[1].ends_with("match=true"), "GET payload corrupt: {}", threaded[1]);
}

/// An authenticated `PIPE`-declared window through the high-level
/// client: every reply must come back in command order, with error
/// finals (the deliberately failing SIZE) in place rather than raised
/// or reordered.
fn authed_pipeline_transcript(core: ServerCore) -> Vec<String> {
    let (server, mut session, _dsi) = authed_rig(core);
    let window = vec![
        Command::Pipe(8),
        Command::Mkd("/home/alice/p".into()),
        Command::Cwd("/home/alice/p".into()),
        Command::Pwd,
        Command::Size("/home/alice/missing.bin".into()), // 550, mid-window
        Command::Cdup,
        Command::Rmd("/home/alice/p".into()),
        Command::Noop,
    ];
    let replies = session.pipeline(&window).unwrap();
    let transcript: Vec<String> =
        replies.iter().map(|r| format!("{} {}", r.code, r.text())).collect();
    session.quit().unwrap();
    server.shutdown();
    transcript
}

#[test]
fn pipelined_authed_window_identical_across_cores() {
    let threaded = authed_pipeline_transcript(ServerCore::Threaded);
    let reactor = authed_pipeline_transcript(ServerCore::Reactor);
    assert_eq!(threaded, reactor, "pipelined authed windows diverged");
    assert_eq!(threaded.len(), 8, "one final reply per pipelined command");
    assert!(threaded[0].starts_with("200"), "PIPE must be accepted: {}", threaded[0]);
    assert!(threaded[4].starts_with("550"), "mid-window error must stay in place: {:?}", threaded);
    assert!(threaded[7].starts_with("200"), "commands after the error must still run: {:?}", threaded);
}

/// Regression: `ESTO` with an unknown module used to fall through to a
/// plain STOR of the args' last whitespace token — storing data under a
/// silently wrong path. It must now be refused with a 504 before any
/// data channel opens, and leave no file behind.
fn esto_unknown_module_transcript(core: ServerCore) -> Vec<String> {
    let (server, mut session, dsi) = authed_rig(core);
    let reply = session
        .command_with(&Command::Esto { module: "A".into(), args: "0 /home/alice/esto.bin".into() }, |_| {})
        .unwrap();
    let mut transcript = vec![format!("{} {}", reply.code, reply.text())];
    let user = ig_server::UserContext::superuser();
    transcript.push(format!("exists={}", dsi.exists(&user, "/home/alice/esto.bin")));
    session.quit().unwrap();
    server.shutdown();
    transcript
}

#[test]
fn esto_unknown_module_is_refused_not_misrouted() {
    let threaded = esto_unknown_module_transcript(ServerCore::Threaded);
    let reactor = esto_unknown_module_transcript(ServerCore::Reactor);
    assert_eq!(threaded, reactor, "ESTO refusal diverged across cores");
    assert!(threaded[0].starts_with("504"), "unknown ESTO module must 504: {}", threaded[0]);
    assert_eq!(threaded[1], "exists=false", "refused ESTO must not create the path");
}

/// Directory-stream differential: a fixed tree goes up with `ESTO DIR`,
/// comes back with `ERET DIR` (fresh skip and a resumed skip), and the
/// transcript — entry counts, walk shape, byte equality — must match
/// across cores.
fn dir_stream_transcript(core: ServerCore) -> Vec<String> {
    let (server, mut session, server_dsi) = authed_rig(core);
    let user = ig_server::UserContext::superuser();
    let local = MemDsi::new();
    local.put("/src/a/one.bin", b"first file");
    local.put("/src/a/two.bin", &[7u8; 5000]);
    local.put("/src/top.txt", b"top");
    local.mkdir(&user, "/src/z/empty").unwrap();
    let local: Arc<dyn Dsi> = Arc::new(local);

    let opts = TransferOpts::default().block(1024).timeout(Some(Duration::from_secs(5)));
    let mut transcript = Vec::new();

    let up = transfer::put_dir(&mut session, &local, "/src", "/home/alice/tree", &opts).unwrap();
    transcript.push(format!("put done={} total={} complete={}", up.entries_done, up.entries_total, up.complete));
    let server_walk = ig_server::walk(server_dsi.as_ref(), &user, "/home/alice/tree").unwrap();
    transcript.push(format!(
        "server_walk={:?}",
        server_walk.iter().map(|e| e.rel_path.clone()).collect::<Vec<_>>()
    ));

    let back = MemDsi::new();
    let back: Arc<dyn Dsi> = Arc::new(back);
    let down =
        transfer::get_dir(&mut session, &back, "/copy", "/home/alice/tree", &opts).unwrap();
    transcript.push(format!("get done={} complete={}", down.entries_done, down.complete));
    transcript.push(format!(
        "roundtrip_walk_eq={}",
        ig_server::walk(back.as_ref(), &user, "/copy").unwrap()
            == ig_server::walk(local.as_ref(), &user, "/src").unwrap()
    ));
    transcript.push(format!(
        "payload_eq={}",
        ig_server::read_all(back.as_ref(), &user, "/copy/a/two.bin", 1 << 16).unwrap()
            == vec![7u8; 5000]
    ));

    // Resume semantics: skipping the first 3 entries re-fetches only the
    // tail, on top of a copy that already holds the head.
    let partial = MemDsi::new();
    partial.put("/part/a/one.bin", b"first file");
    partial.put("/part/a/two.bin", &[7u8; 5000]);
    let partial: Arc<dyn Dsi> = Arc::new(partial);
    let resumed = transfer::get_dir_resume(
        &mut session,
        &partial,
        "/part",
        "/home/alice/tree",
        3,
        &opts,
    )
    .unwrap();
    transcript.push(format!("resume done={} complete={}", resumed.entries_done, resumed.complete));
    transcript.push(format!(
        "resume_walk_eq={}",
        ig_server::walk(partial.as_ref(), &user, "/part").unwrap()
            == ig_server::walk(local.as_ref(), &user, "/src").unwrap()
    ));

    // Skip past the end of the tree is a typed refusal, not a hang (the
    // server 550s before dialing, so the accept deadline is the wait).
    let fast = TransferOpts::default().timeout(Some(Duration::from_secs(1)));
    let err =
        transfer::get_dir_resume(&mut session, &partial, "/part", "/home/alice/tree", 99, &fast);
    transcript.push(format!("overskip_err={}", err.is_err()));

    session.quit().unwrap();
    server.shutdown();
    transcript
}

#[test]
fn dir_stream_roundtrip_identical_across_cores() {
    let threaded = dir_stream_transcript(ServerCore::Threaded);
    let reactor = dir_stream_transcript(ServerCore::Reactor);
    assert_eq!(threaded, reactor, "directory-stream transcripts diverged");
    assert_eq!(threaded[0], "put done=6 total=6 complete=true");
    assert!(threaded[3].ends_with("=true"), "roundtrip walks diverged: {:?}", threaded);
    assert!(threaded[4].ends_with("=true"), "roundtrip payload corrupt: {:?}", threaded);
    assert!(threaded[5].starts_with("resume done=6 complete=true"), "{:?}", threaded);
    assert!(threaded[6].ends_with("=true"), "resumed walks diverged: {:?}", threaded);
    assert_eq!(threaded[7], "overskip_err=true");
}
