//! Chaos-replay trace determinism: one failing chaos cell run twice
//! under the same seed must produce **byte-identical** stable trace
//! exports — the property that makes a trace diffable across replays.
//!
//! The control channel runs over in-process pipes and every event field
//! in the stable export is a pure function of seeds and causal order
//! (no ports, no wall-clock), so the whole JSONL document reproduces.
//!
//! When `IG_TRACE=path` is set, the test also appends the stable export
//! to `path` — `scripts/ci.sh` runs the test twice into two files and
//! `cmp`s them byte-for-byte.

use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::DcauMode;
use ig_server::listener::serve_link;
use ig_server::{Dsi, GridmapAuthz, MemDsi, ServerConfig};
#[cfg(target_os = "linux")]
use ig_server::{GridFtpServer, ServerCore};
use ig_xio::{pipe, ChaosConfig, ChaosHook, FaultKind, FaultSpec, Trigger};
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 1_000_000;
const SEED: u64 = 0xD15EA5E;
const PAYLOAD_LEN: usize = 40_000;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

fn payload() -> Vec<u8> {
    (0..PAYLOAD_LEN as u32).map(|i| (i * 37 % 251) as u8).collect()
}

/// Collapse an error to a replay-stable class (OS error text may vary).
fn classify(e: &ig_client::ClientError) -> String {
    match e {
        ig_client::ClientError::ServerError(r) => format!("server-{}", r.code),
        ig_client::ClientError::Timeout(_) => "timeout".into(),
        other => format!("{:?}", std::mem::discriminant(other)),
    }
}

/// Incremental stable-trace reader over the `export_stable_since`
/// cursor — the same access pattern the admin plane's `trace follow`
/// uses. Draining at checkpoints instead of one full-buffer re-export
/// at the end also keeps each read proportional to what's new.
struct CursorStream {
    cursor: u64,
    jsonl: String,
}

impl CursorStream {
    fn new() -> Self {
        CursorStream { cursor: 0, jsonl: String::new() }
    }

    fn drain(&mut self, obs: &ig_obs::Obs) {
        let chunk = obs.export_stable_since(self.cursor);
        assert_eq!(chunk.dropped, 0, "stable ring must not wrap under test load");
        assert!(chunk.next >= self.cursor, "cursor must be monotone");
        self.cursor = chunk.next;
        self.jsonl.push_str(&chunk.jsonl);
    }

    /// Final drain, then check the incremental stream reassembled the
    /// exact one-shot export before handing it back.
    fn finish(mut self, obs: &ig_obs::Obs) -> String {
        self.drain(obs);
        assert_eq!(
            self.jsonl,
            obs.export_stable(),
            "cursor-streamed stable trace must equal the one-shot export"
        );
        self.jsonl
    }
}

/// One failing-then-recovering PUT under a seeded Drop fault, with
/// private client/server observability hubs. Returns the combined
/// stable export (client block then server block).
fn run_cell() -> String {
    let server_obs = ig_obs::Obs::new("server");
    let client_obs = ig_obs::Obs::new("client");

    // Deterministic PKI world.
    let mut rng = ig_crypto::rng::seeded(SEED);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Replay CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(
            dn("/CN=replay.example.org"),
            &host_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let dsi = Arc::new(MemDsi::new());
    let server_cfg = ServerConfig::new(
        "replay.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::clone(&dsi) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_millis(250))
    .with_obs(Arc::clone(&server_obs));

    // Control channel over pipes: no ports anywhere near the trace.
    let (server_end, client_end) = pipe();
    let server_thread =
        serve_link(Box::new(server_end), Arc::new(server_cfg), ig_crypto::rng::seeded(SEED + 1));

    let client_cfg = ClientConfig::new(
        Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_seed(SEED + 2)
    .no_delegation()
    .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_millis(800))))
    .with_obs(Arc::clone(&client_obs));
    let mut session = ClientSession::from_link(Box::new(client_end), client_cfg).unwrap();
    session.login().unwrap();
    session.set_dcau(DcauMode::None).unwrap();

    // Stream both stable traces incrementally through the cursor API as
    // the scenario progresses (login / recovery / teardown checkpoints)
    // rather than re-exporting the full ring once at the end.
    let mut client_stream = CursorStream::new();
    let mut server_stream = CursorStream::new();
    client_stream.drain(&client_obs);
    server_stream.drain(&server_obs);

    // The chaos cell: drop the second data record on the first attempt.
    let hook = ChaosHook::disarmed(ChaosConfig::single(
        SEED + 3,
        FaultSpec::send(FaultKind::Drop, Trigger::OnRecord(1)),
    ));
    hook.set_obs(&client_obs);
    let data = payload();
    let opts = TransferOpts::default()
        .block(8 * 1024)
        .timeout(Some(Duration::from_millis(500)))
        .chaos(Arc::clone(&hook));
    hook.arm();
    let result = RetryPolicy::immediate(3).run_with_obs(&client_obs, "put", |attempt| {
        if attempt > 1 {
            hook.disarm(); // fault budget spent; recovery attempt runs clean
        }
        transfer::put_bytes(&mut session, "/home/alice/replay.bin", &data, &opts)
            .map_err(|e| classify(&e))
    });
    assert!(result.is_ok(), "PUT never recovered: {:?}", result.err().map(|e| e.to_string()));
    assert_eq!(hook.total_fires(), 1, "the seeded fault must fire exactly once");
    client_stream.drain(&client_obs);
    server_stream.drain(&server_obs);
    session.quit().unwrap();
    server_thread.join().unwrap().unwrap();

    format!("{}{}", client_stream.finish(&client_obs), server_stream.finish(&server_obs))
}

/// The same failing-then-recovering PUT against a reactor-core server
/// over TCP loopback. The reactor records metrics and unstable events
/// only — never stable trace events — so the stable export must still
/// be a pure function of seeds and causal order even though ephemeral
/// ports and epoll scheduling differ between runs.
#[cfg(target_os = "linux")]
fn run_cell_reactor() -> String {
    use ig_xio::{Link, TcpLink};

    let server_obs = ig_obs::Obs::new("server");
    let client_obs = ig_obs::Obs::new("client");

    let mut rng = ig_crypto::rng::seeded(SEED);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Replay CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(
            dn("/CN=replay.example.org"),
            &host_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());

    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let dsi = Arc::new(MemDsi::new());
    let server_cfg = ServerConfig::new(
        "replay.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::clone(&dsi) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_millis(250))
    .with_obs(Arc::clone(&server_obs))
    .with_core(ServerCore::Reactor);
    let server = GridFtpServer::start(server_cfg, SEED + 1).unwrap();

    let client_cfg = ClientConfig::new(
        Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_seed(SEED + 2)
    .no_delegation()
    .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_millis(800))))
    .with_obs(Arc::clone(&client_obs));
    let link: Box<dyn Link> =
        Box::new(TcpLink::connect(server.addr().to_socket_addr()).unwrap());
    let mut session = ClientSession::from_link(link, client_cfg).unwrap();
    session.login().unwrap();
    session.set_dcau(DcauMode::None).unwrap();

    let mut client_stream = CursorStream::new();
    let mut server_stream = CursorStream::new();
    client_stream.drain(&client_obs);
    server_stream.drain(&server_obs);

    let hook = ChaosHook::disarmed(ChaosConfig::single(
        SEED + 3,
        FaultSpec::send(FaultKind::Drop, Trigger::OnRecord(1)),
    ));
    hook.set_obs(&client_obs);
    let data = payload();
    let opts = TransferOpts::default()
        .block(8 * 1024)
        .timeout(Some(Duration::from_millis(500)))
        .chaos(Arc::clone(&hook));
    hook.arm();
    let result = RetryPolicy::immediate(3).run_with_obs(&client_obs, "put", |attempt| {
        if attempt > 1 {
            hook.disarm();
        }
        transfer::put_bytes(&mut session, "/home/alice/replay.bin", &data, &opts)
            .map_err(|e| classify(&e))
    });
    assert!(result.is_ok(), "PUT never recovered: {:?}", result.err().map(|e| e.to_string()));
    assert_eq!(hook.total_fires(), 1, "the seeded fault must fire exactly once");
    client_stream.drain(&client_obs);
    server_stream.drain(&server_obs);
    session.quit().unwrap();
    // Session teardown (and so the server's `span.end`) happens on the
    // reactor thread after QUIT completes; wait for it before exporting.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server_obs.metrics().gauge_value("server.sessions_active") != 0.0 {
        assert!(std::time::Instant::now() < deadline, "reactor session never tore down");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown();

    format!("{}{}", client_stream.finish(&client_obs), server_stream.finish(&server_obs))
}

/// Capture `$IG_TRACE` and clear it from the environment exactly once,
/// before either test runs a session. `dump_if_env` fires from client
/// and server threads; with the variable still set, tests running in
/// parallel would interleave appends nondeterministically and break
/// CI's byte-compare of the exported artifact. Every test in this
/// binary must call this before starting any session.
fn trace_gate_path() -> Option<&'static str> {
    static PATH: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    PATH.get_or_init(|| {
        let p = std::env::var("IG_TRACE").ok().filter(|p| !p.is_empty());
        std::env::remove_var("IG_TRACE");
        p
    })
    .as_deref()
}

#[cfg(target_os = "linux")]
#[test]
fn stable_trace_replays_byte_identical_on_reactor_core() {
    let _ = trace_gate_path();
    let first = run_cell_reactor();
    let second = run_cell_reactor();
    assert_eq!(
        first, second,
        "reactor-core stable exports must replay byte-identically"
    );
    // The reactor multiplexed the session, but the trace still tells the
    // full protocol story with no reactor-internal noise in it.
    assert!(first.contains("\"event\":\"chaos.fault\""), "missing chaos.fault:\n{first}");
    assert!(first.contains("\"event\":\"cmd.dispatch\""), "missing cmd.dispatch");
    assert!(first.contains("\"name\":\"session\""), "missing session span");
    assert!(first.contains("\"name\":\"transfer\""), "missing transfer span");
    assert!(first.contains("\"component\":\"server\""));
    assert!(!first.contains("reactor"), "reactor internals leaked into stable trace");
}

#[test]
fn stable_trace_is_byte_identical_across_replays() {
    // Capture the path and clear the gate (shared, once) so this test
    // is the file's only writer — see `trace_gate_path`.
    let trace_path = trace_gate_path();

    let first = run_cell();
    let second = run_cell();
    assert_eq!(first, second, "stable exports must replay byte-identically");

    // The trace carries the whole story: the fault that fired (with its
    // trigger and seed), the retry that recovered, the commands that
    // drove the session, and span-scoped structure.
    assert!(first.contains("\"event\":\"chaos.fault\""), "missing chaos.fault:\n{first}");
    assert!(first.contains("\"kind\":\"Drop\""), "fault kind missing:\n{first}");
    assert!(first.contains(&format!("\"seed\":{}", SEED + 3)), "fault seed missing");
    assert!(first.contains("\"event\":\"retry.attempt\""), "missing retry.attempt");
    assert!(first.contains("\"op\":\"put\",\"attempt\":2"), "missing recovery attempt");
    assert!(first.contains("\"event\":\"cmd.dispatch\""), "missing cmd.dispatch");
    assert!(first.contains("\"name\":\"session\""), "missing session span");
    assert!(first.contains("\"name\":\"transfer\""), "missing transfer span");
    // Span ids: at least one event anchored to a non-root span.
    assert!(first.contains("\"span\":1"), "span ids missing:\n{first}");
    // Both components exported.
    assert!(first.contains("\"component\":\"client\""));
    assert!(first.contains("\"component\":\"server\""));

    // CI's replay gate: append this run's stable trace to $IG_TRACE,
    // then `cmp` the files from two separate process invocations.
    if let Some(path) = trace_path {
        use std::io::Write as _;
        let mut f =
            std::fs::OpenOptions::new().create(true).append(true).open(&path).unwrap();
        f.write_all(first.as_bytes()).unwrap();
    }
}
