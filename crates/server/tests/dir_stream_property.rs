//! Property battery for streamed directory transfers.
//!
//! Arbitrary trees — nested dirs, empty dirs, duplicate basenames in
//! different parents, 0–64 KiB files — must round-trip through the
//! `stream_dir` wire format under arbitrary fragmentation; arbitrary
//! truncation must yield a *complete-entry prefix* (never a partial
//! file, the file-granular resume guarantee); and arbitrary single-byte
//! corruption must be contained by the per-file checksums instead of
//! leaking garbage entries.

use ig_protocol::stream_dir::{encode_tree, DirEvent, DirStreamDecoder, StreamEntry};
use ig_server::dsi as dsif;
use ig_server::{Dsi, MemDsi, UserContext};
use proptest::prelude::*;
use std::collections::HashSet;

/// Small component alphabet so duplicate basenames in different parent
/// directories are common, not rare.
const COMP: &[&str] = &["a", "b", "dup", "deep", "x"];

/// One requested tree node: component indices + `Some((len, seed))` for
/// a file (bytes derived from the seed) or `None` for an empty dir.
type Item = (Vec<usize>, Option<(usize, u8)>);

fn item_strategy() -> impl Strategy<Value = Item> {
    (
        proptest::collection::vec(0usize..COMP.len(), 1..4),
        proptest::option::of((
            prop_oneof![4 => 0usize..2048, 1 => 0usize..=65536],
            any::<u8>(),
        )),
    )
}

/// Materialise the requested items into a `MemDsi` under `/t`, skipping
/// requests that would conflict (a path can't be both file and dir).
fn build_tree(items: &[Item]) -> MemDsi {
    let dsi = MemDsi::new();
    let user = UserContext::superuser();
    dsi.mkdir(&user, "/t").unwrap();
    let mut file_paths: HashSet<String> = HashSet::new();
    let mut dir_paths: HashSet<String> = HashSet::new();
    'items: for (comps, kind) in items {
        let names: Vec<&str> = comps.iter().map(|&i| COMP[i]).collect();
        let path = format!("/t/{}", names.join("/"));
        let mut anc = String::from("/t");
        let mut ancestors = Vec::new();
        for n in &names[..names.len() - 1] {
            anc = format!("{anc}/{n}");
            if file_paths.contains(&anc) {
                continue 'items;
            }
            ancestors.push(anc.clone());
        }
        match kind {
            Some((len, seed)) => {
                if file_paths.contains(&path) || dir_paths.contains(&path) {
                    continue;
                }
                let data: Vec<u8> =
                    (0..*len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(*seed)).collect();
                dsi.put(&path, &data);
                file_paths.insert(path);
                dir_paths.extend(ancestors);
            }
            None => {
                if file_paths.contains(&path) {
                    continue;
                }
                dsi.mkdir(&user, &path).unwrap();
                dir_paths.insert(path);
                dir_paths.extend(ancestors);
            }
        }
    }
    dsi
}

/// Walk `/t` and encode the whole tree as one directory stream.
fn encode_walked(dsi: &MemDsi) -> (Vec<ig_server::WalkEntry>, Vec<u8>) {
    let user = UserContext::superuser();
    let entries = dsif::walk(dsi, &user, "/t").unwrap();
    let items: Vec<(StreamEntry, Vec<u8>)> = entries
        .iter()
        .map(|e| {
            if e.is_dir {
                (StreamEntry::dir(e.rel_path.clone()), Vec::new())
            } else {
                let data =
                    dsif::read_all(dsi, &user, &format!("/t/{}", e.rel_path), 1 << 16).unwrap();
                (StreamEntry::file(e.rel_path.clone(), e.size), data)
            }
        })
        .collect();
    (entries, encode_tree(&items).unwrap())
}

/// Case-count override for CI smoke runs (`IG_PROPTEST_CASES`).
fn cases(default: u32) -> u32 {
    std::env::var("IG_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    /// Any tree, any fragmentation: the decoder must deliver every
    /// entry exactly once regardless of how the wire is chopped, and
    /// expanding the stream must reproduce the tree byte-for-byte.
    #[test]
    fn any_tree_roundtrips_under_any_fragmentation(
        items in proptest::collection::vec(item_strategy(), 0..10),
        cuts in proptest::collection::vec(0usize..100_000, 0..16),
    ) {
        let src = build_tree(&items);
        let user = UserContext::superuser();
        let (entries, wire) = encode_walked(&src);

        // Byte-fragmented decode: no violation, all entries, finished.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (wire.len() + 1)).collect();
        bounds.push(0);
        bounds.push(wire.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut dec = DirStreamDecoder::new();
        let mut delivered = 0usize;
        for pair in bounds.windows(2) {
            for ev in dec.push(&wire[pair[0]..pair[1]]) {
                if !matches!(ev, DirEvent::End { .. }) {
                    delivered += 1;
                }
            }
        }
        prop_assert!(dec.error().is_none(), "fragmented decode violated: {:?}", dec.error());
        prop_assert!(dec.finished(), "fragmented decode never finished");
        prop_assert_eq!(delivered, entries.len(), "entry count diverged under fragmentation");
        prop_assert_eq!(dec.entries_done(), entries.len() as u64);

        // Whole-wire expansion reproduces the tree exactly.
        let dst = MemDsi::new();
        let out = dsif::expand_stream(&dst, &user, "/copy", &wire).unwrap();
        prop_assert!(out.finished && out.error.is_none(), "expand failed: {:?}", out);
        prop_assert_eq!(out.entries, entries.len() as u64);
        prop_assert_eq!(dsif::walk(&dst, &user, "/copy").unwrap(), entries.clone());
        for e in entries.iter().filter(|e| !e.is_dir) {
            let a = dsif::read_all(&src, &user, &format!("/t/{}", e.rel_path), 1 << 16).unwrap();
            let b = dsif::read_all(&dst, &user, &format!("/copy/{}", e.rel_path), 1 << 16).unwrap();
            prop_assert_eq!(a, b, "payload diverged for {}", e.rel_path);
        }
    }

    /// Any truncation point: the expanded result is a contiguous prefix
    /// of *complete* entries — a cut mid-file never leaves a partial
    /// file behind, so `entries` is always a safe resume skip.
    #[test]
    fn any_truncation_yields_a_complete_entry_prefix(
        items in proptest::collection::vec(item_strategy(), 0..10),
        cut_seed in any::<usize>(),
    ) {
        let src = build_tree(&items);
        let user = UserContext::superuser();
        let (entries, wire) = encode_walked(&src);
        let cut = cut_seed % (wire.len() + 1);

        let dst = MemDsi::new();
        let out = dsif::expand_stream(&dst, &user, "/part", &wire[..cut]).unwrap();
        prop_assert!(out.error.is_none(), "clean truncation must not violate: {:?}", out);
        prop_assert_eq!(out.finished, cut == wire.len());
        prop_assert!(out.entries <= entries.len() as u64);
        // The prefix property: exactly the first `out.entries` walk
        // entries exist, files at full size.
        for (i, e) in entries.iter().enumerate() {
            let path = format!("/part/{}", e.rel_path);
            if (i as u64) < out.entries {
                if e.is_dir {
                    prop_assert!(dst.list(&user, &path).is_ok(), "missing dir {}", e.rel_path);
                } else {
                    prop_assert_eq!(
                        dst.size(&user, &path).unwrap(),
                        e.size,
                        "partial file {} leaked into the tree",
                        e.rel_path
                    );
                }
            } else if !e.is_dir {
                prop_assert!(
                    !dst.exists(&user, &path),
                    "entry {} appeared ahead of the resume point",
                    e.rel_path
                );
            }
        }
    }

    /// Any single-byte corruption: the decoder contains the damage —
    /// it never panics, never delivers more entries than the stream
    /// holds, and never reports a clean finish with a wrong count.
    #[test]
    fn any_single_byte_corruption_is_contained(
        items in proptest::collection::vec(item_strategy(), 1..8),
        pos_seed in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let src = build_tree(&items);
        let user = UserContext::superuser();
        let (entries, mut wire) = encode_walked(&src);
        let pos = pos_seed % wire.len();
        wire[pos] ^= mask;

        let dst = MemDsi::new();
        // Storage-level conflicts (a corrupted kind byte turning a dir
        // into a file mid-tree) surface as Err — also contained.
        if let Ok(out) = dsif::expand_stream(&dst, &user, "/c", &wire) {
            prop_assert!(out.entries <= entries.len() as u64);
        }
    }
}
