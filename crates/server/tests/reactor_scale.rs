//! The reactor's reason to exist: many idle control sessions, cheaply.
//!
//! This is the in-tree smoke version of experiment E14 (the bench crate
//! runs the full 10k-session sweep): hold hundreds of idle sessions on
//! one reactor thread while a handful of authenticated sessions move
//! real bytes, and check that
//! * the `server.sessions_held` gauge sees every connection,
//! * command RTT stays sane under the idle herd plus active transfers,
//! * resident memory grows by kilobytes per idle session, not by a
//!   thread stack per session.
//!
//! Budgets are deliberately loose — CI boxes are slow and single-core —
//! but loose budgets still catch the failure modes that matter here
//! (a thread per session, an accept stall, an O(sessions) wakeup storm).

#![cfg(target_os = "linux")]

use ig_client::{transfer, ClientConfig, ClientSession, RetryPolicy, TransferOpts};
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::DcauMode;
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerCore, ServerConfig};
use ig_xio::test_support::{eventually, retry_measurement};
use ig_xio::{Link, TcpLink};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NOW: u64 = 1_000_000;
const IDLE_SESSIONS: usize = 800;
const ACTIVE_SESSIONS: usize = 8;
const PUT_LEN: usize = 64 * 1024;
/// Loose per-idle-session resident ceiling. A thread-per-session server
/// pays a stack plus TLS per session (tens to hundreds of KiB touched);
/// a reactor entry is a token, buffers, and a state machine.
const RSS_PER_IDLE_CEILING: u64 = 48 * 1024;
/// Loose absolute p99 budget for a NOOP round trip while the server
/// holds the idle herd and runs the active transfers (1-CPU CI).
const P99_BUDGET: Duration = Duration::from_secs(2);

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

struct World {
    server: Arc<GridFtpServer>,
    server_obs: Arc<ig_obs::Obs>,
    user_cred: Credential,
    trust: TrustStore,
}

fn world() -> World {
    let server_obs = ig_obs::Obs::new("scale-server");
    let mut rng = ig_crypto::rng::seeded(0x5CA1E);
    let mut ca =
        CertificateAuthority::create(&mut rng, dn("/O=Scale CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(
            dn("/CN=scale.example.org"),
            &host_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(
            dn("/O=Grid/CN=Alice Smith"),
            &user_keys.public,
            Validity::starting_at(0, NOW * 10),
            vec![],
        )
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());
    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");
    let cfg = ServerConfig::new(
        "scale.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::new(MemDsi::new()) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_secs(5))
    .with_obs(Arc::clone(&server_obs))
    .with_core(ServerCore::Reactor)
    .with_worker_pool(4, 2, 64);
    let server = GridFtpServer::start(cfg, 5).unwrap();
    World {
        server,
        server_obs,
        user_cred: Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    }
}

fn login(w: &World) -> ClientSession {
    let cfg = ClientConfig::new(w.user_cred.clone(), w.trust.clone())
        .with_clock(Clock::Fixed(NOW))
        .with_seed(77)
        .no_delegation()
        .with_retry(RetryPolicy::once().with_attempt_timeout(Some(Duration::from_secs(10))));
    let link: Box<dyn Link> =
        Box::new(TcpLink::connect(w.server.addr().to_socket_addr()).unwrap());
    let mut session = ClientSession::from_link(link, cfg).unwrap();
    session.login().unwrap();
    session.set_dcau(DcauMode::None).unwrap();
    session
}

fn gauge(w: &World, name: &str) -> f64 {
    w.server_obs.metrics().gauge_value(name)
}

fn wait_for_held(w: &World, at_least: f64) {
    eventually(Duration::from_secs(30), Duration::from_millis(20), "idle herd registered", || {
        gauge(w, "server.sessions_held") >= at_least
    });
}

fn p99(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() * 99 / 100]
}

#[test]
fn reactor_holds_idle_herd_within_memory_and_rtt_budgets() {
    let w = world();

    // Baseline RSS after server start but before the herd arrives.
    let rss_before = ig_obs::process::resident_bytes();

    // The idle herd: connect, take the banner, then just sit there.
    let mut idle = Vec::with_capacity(IDLE_SESSIONS);
    for i in 0..IDLE_SESSIONS {
        let mut link = TcpLink::connect(w.server.addr().to_socket_addr())
            .unwrap_or_else(|e| panic!("idle connect #{i} failed: {e}"));
        let banner = link.recv().unwrap();
        assert!(banner.starts_with(b"220"), "bad banner for idle #{i}");
        idle.push(link);
    }
    wait_for_held(&w, IDLE_SESSIONS as f64);

    if let (Some(before), Some(after)) = (rss_before, ig_obs::process::resident_bytes()) {
        let delta = after.saturating_sub(before);
        let per_session = delta / IDLE_SESSIONS as u64;
        assert!(
            per_session < RSS_PER_IDLE_CEILING,
            "idle sessions too fat: {delta} bytes for {IDLE_SESSIONS} \
             sessions = {per_session} B/session (ceiling {RSS_PER_IDLE_CEILING})"
        );
    }

    // Active load: authenticated PUTs racing in their own threads while
    // the herd sits on the same reactor.
    let active: Vec<_> = (0..ACTIVE_SESSIONS)
        .map(|i| {
            let mut session = login(&w);
            std::thread::spawn(move || {
                let data: Vec<u8> = (0..PUT_LEN as u32).map(|b| (b * 11 % 241) as u8).collect();
                let opts = TransferOpts::default()
                    .block(8 * 1024)
                    .timeout(Some(Duration::from_secs(10)));
                let sent = transfer::put_bytes(
                    &mut session,
                    &format!("/home/alice/scale-{i}.bin"),
                    &data,
                    &opts,
                )
                .unwrap();
                assert_eq!(sent, PUT_LEN as u64);
                session.quit().unwrap();
            })
        })
        .collect();

    // Command RTT through the loaded reactor, measured on a fresh
    // pre-auth session (NOOP answers before login). Re-measured a
    // bounded number of times: a transient CI load spike should not
    // flake tier-1, a real wakeup storm fails every round.
    retry_measurement(3, "loaded p99 NOOP RTT", || {
        let mut probe = TcpLink::connect(w.server.addr().to_socket_addr()).unwrap();
        let _banner = probe.recv().unwrap();
        let mut rtts = Vec::with_capacity(200);
        for _ in 0..200 {
            let t0 = Instant::now();
            probe.send(b"NOOP").unwrap();
            let reply = probe.recv().unwrap();
            rtts.push(t0.elapsed());
            assert!(reply.starts_with(b"200"), "NOOP got {:?}", String::from_utf8_lossy(&reply));
        }
        probe.send(b"QUIT").unwrap();
        let _ = probe.recv();
        let p99 = p99(&mut rtts);
        if p99 < P99_BUDGET {
            Ok(())
        } else {
            Err(format!(
                "p99 NOOP RTT {p99:?} over the {P99_BUDGET:?} budget under \
                 {IDLE_SESSIONS} idle + {ACTIVE_SESSIONS} active sessions"
            ))
        }
    });

    for t in active {
        t.join().unwrap();
    }

    // The reactor actually multiplexed all of this on epoll.
    assert!(
        w.server_obs.metrics().counter_value("server.reactor_wakeups") > 0,
        "reactor wakeup counter never moved"
    );
    let held = gauge(&w, "server.sessions_held");
    assert!(
        held >= IDLE_SESSIONS as f64,
        "sessions_held fell below the idle herd: {held}"
    );

    // Hang up the herd; the reactor reaps every entry.
    drop(idle);
    w.server.shutdown();
    eventually(Duration::from_secs(30), Duration::from_millis(20), "sessions torn down", || {
        gauge(&w, "server.sessions_active") == 0.0
    });
}
