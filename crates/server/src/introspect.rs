//! Live session introspection for the admin plane.
//!
//! The `sessions` admin command must answer "who is connected and what
//! are they doing" without touching the session threads themselves, so
//! every control session registers a [`SessionTicket`] in a shared
//! [`SessionIndex`] at accept and updates it at a handful of cheap
//! points (command dispatch, login, transfer byte counts). The ticket
//! deregisters on drop — including unwinds — so the index can never
//! leak an entry past its session.
//!
//! The index is deliberately *lightweight*: a mutexed map touched once
//! per command, never per data block (byte counts are added once per
//! completed transfer). It is an operator convenience, not an
//! accounting surface — the usage ledger (`crate::usage`) remains the
//! source of truth for billing-grade numbers.

use ig_obs::json::escape_str_into;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Lifecycle state shown per session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Connected, not yet authenticated.
    PreAuth,
    /// Authenticated, between commands.
    Idle,
    /// A data transfer is in flight.
    Transfer,
}

impl SessionState {
    /// Stable lowercase label for the JSON surface.
    pub fn label(&self) -> &'static str {
        match self {
            SessionState::PreAuth => "pre-auth",
            SessionState::Idle => "idle",
            SessionState::Transfer => "transfer",
        }
    }
}

#[derive(Debug)]
struct SessionEntry {
    user: Option<String>,
    state: SessionState,
    last_verb: String,
    last_cmd: Instant,
    bytes_in: u64,
    bytes_out: u64,
}

/// Registry of live control sessions, keyed by a monotone session id.
#[derive(Debug, Default)]
pub struct SessionIndex {
    next_id: AtomicU64,
    live: Mutex<BTreeMap<u64, SessionEntry>>,
}

impl SessionIndex {
    /// A fresh, empty index.
    pub fn new() -> Arc<SessionIndex> {
        Arc::new(SessionIndex::default())
    }

    /// Register a new session; the returned ticket deregisters on drop.
    pub fn register(self: &Arc<SessionIndex>) -> SessionTicket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.live.lock().insert(
            id,
            SessionEntry {
                user: None,
                state: SessionState::PreAuth,
                last_verb: String::new(),
                last_cmd: Instant::now(),
                bytes_in: 0,
                bytes_out: 0,
            },
        );
        SessionTicket { index: Arc::clone(self), id }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.live.lock().len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// JSON array of live sessions, id-ordered (BTreeMap), rendered at
    /// call time so `last_cmd_age_ms` is current.
    pub fn snapshot_json(&self) -> String {
        let now = Instant::now();
        let mut out = String::from("[");
        for (i, (id, e)) in self.live.lock().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&id.to_string());
            out.push_str(",\"user\":");
            match &e.user {
                Some(u) => escape_str_into(&mut out, u),
                None => out.push_str("null"),
            }
            out.push_str(",\"state\":\"");
            out.push_str(e.state.label());
            out.push_str("\",\"last_verb\":");
            escape_str_into(&mut out, &e.last_verb);
            out.push_str(",\"last_cmd_age_ms\":");
            let age = now.saturating_duration_since(e.last_cmd).as_millis() as u64;
            out.push_str(&age.to_string());
            out.push_str(",\"bytes_in\":");
            out.push_str(&e.bytes_in.to_string());
            out.push_str(",\"bytes_out\":");
            out.push_str(&e.bytes_out.to_string());
            out.push('}');
        }
        out.push(']');
        out
    }

    fn with_entry(&self, id: u64, f: impl FnOnce(&mut SessionEntry)) {
        if let Some(e) = self.live.lock().get_mut(&id) {
            f(e);
        }
    }
}

/// One session's handle into the index. Cheap updates; drop = gone.
#[derive(Debug)]
pub struct SessionTicket {
    index: Arc<SessionIndex>,
    id: u64,
}

impl SessionTicket {
    /// The session id (also the trace `session` span's seed ordinal
    /// peer: both count accepts).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Record a dispatched command verb and refresh the activity clock.
    pub fn touch(&self, verb: &str) {
        self.index.with_entry(self.id, |e| {
            e.last_verb.clear();
            e.last_verb.push_str(verb);
            e.last_cmd = Instant::now();
        });
    }

    /// Record a successful login.
    pub fn set_user(&self, user: &str) {
        self.index.with_entry(self.id, |e| {
            e.user = Some(user.to_string());
            if e.state == SessionState::PreAuth {
                e.state = SessionState::Idle;
            }
        });
    }

    /// Move the session between lifecycle states.
    pub fn set_state(&self, state: SessionState) {
        self.index.with_entry(self.id, |e| e.state = state);
    }

    /// RAII scope for one transfer: flips the state to `Transfer` now
    /// and back to `Idle` when the returned guard drops — error and
    /// unwind paths included.
    pub fn transfer_scope(&self) -> TransferScope {
        self.set_state(SessionState::Transfer);
        TransferScope { index: Arc::clone(&self.index), id: self.id }
    }

    /// Add transferred bytes (called once per completed transfer).
    pub fn add_bytes(&self, inbound: bool, n: u64) {
        self.index.with_entry(self.id, |e| {
            if inbound {
                e.bytes_in += n;
            } else {
                e.bytes_out += n;
            }
        });
    }
}

impl Drop for SessionTicket {
    fn drop(&mut self) {
        self.index.live.lock().remove(&self.id);
    }
}

/// See [`SessionTicket::transfer_scope`].
#[derive(Debug)]
pub struct TransferScope {
    index: Arc<SessionIndex>,
    id: u64,
}

impl Drop for TransferScope {
    fn drop(&mut self) {
        self.index.with_entry(self.id, |e| {
            if e.state == SessionState::Transfer {
                e.state = SessionState::Idle;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_register_and_deregister() {
        let idx = SessionIndex::new();
        let a = idx.register();
        let b = idx.register();
        assert_eq!(idx.len(), 2);
        assert_ne!(a.id(), b.id());
        drop(a);
        assert_eq!(idx.len(), 1);
        drop(b);
        assert!(idx.is_empty());
    }

    #[test]
    fn snapshot_reflects_updates() {
        let idx = SessionIndex::new();
        let t = idx.register();
        t.touch("STOR");
        t.set_user("alice");
        t.set_state(SessionState::Transfer);
        t.add_bytes(true, 4096);
        let json = idx.snapshot_json();
        assert!(json.contains("\"user\":\"alice\""), "{json}");
        assert!(json.contains("\"state\":\"transfer\""));
        assert!(json.contains("\"last_verb\":\"STOR\""));
        assert!(json.contains("\"bytes_in\":4096"));
        assert!(json.contains("\"bytes_out\":0"));
    }

    #[test]
    fn transfer_scope_restores_idle() {
        let idx = SessionIndex::new();
        let t = idx.register();
        t.set_user("carol");
        {
            let _scope = t.transfer_scope();
            assert!(idx.snapshot_json().contains("\"state\":\"transfer\""));
        }
        assert!(idx.snapshot_json().contains("\"state\":\"idle\""));
    }

    #[test]
    fn pre_auth_until_login() {
        let idx = SessionIndex::new();
        let t = idx.register();
        assert!(idx.snapshot_json().contains("\"state\":\"pre-auth\""));
        t.set_user("bob");
        assert!(idx.snapshot_json().contains("\"state\":\"idle\""));
    }
}
