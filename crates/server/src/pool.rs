//! Bounded sharded worker pool for the reactor core.
//!
//! The reactor thread must never block on command execution (a single
//! `STOR` can run for seconds), so it hands complete command frames to
//! this pool. Two properties matter:
//!
//! * **Order**: a session always hashes to the same shard and a shard's
//!   queue is FIFO, so pipelined commands from one session execute in
//!   arrival order even with many workers per shard. (The reactor
//!   additionally never dispatches a session that is already busy, so
//!   within a session there is at most one in-flight job.)
//! * **Backpressure**: shard queues are bounded. [`ShardedPool::try_submit`]
//!   hands the job back instead of blocking or growing without bound;
//!   the reactor parks the frame in the session's pending buffer and
//!   retries after the next completion drains capacity.

use crossbeam::channel::{bounded, Sender, TrySendError};
use std::io;
use std::thread::JoinHandle;

/// A sharded, bounded pool of named worker threads executing jobs of
/// type `J` through a fixed handler.
pub(crate) struct ShardedPool<J: Send + 'static> {
    shards: Vec<Sender<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> ShardedPool<J> {
    /// Spawn `shards * workers_per_shard` threads. `handler` runs every
    /// job; it must do its own error signalling (typically via a
    /// completion channel captured in the closure). Thread-spawn
    /// failure is returned typed — the caller decides whether a
    /// partially-spawned pool is fatal (it joins what was spawned).
    pub(crate) fn new<F>(
        shards: usize,
        workers_per_shard: usize,
        queue_depth: usize,
        handler: F,
    ) -> io::Result<ShardedPool<J>>
    where
        F: Fn(J) + Send + Sync + Clone + 'static,
    {
        assert!(shards >= 1 && workers_per_shard >= 1 && queue_depth >= 1);
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded::<J>(queue_depth);
            senders.push(tx);
            receivers.push(rx);
        }
        let mut workers = Vec::with_capacity(shards * workers_per_shard);
        for (shard, rx) in receivers.into_iter().enumerate() {
            for w in 0..workers_per_shard {
                let rx = rx.clone();
                let handler = handler.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("ig-pool-{shard}-{w}"))
                    .spawn(move || {
                        // Sender side dropped => recv errs => worker exits.
                        while let Ok(job) = rx.recv() {
                            handler(job);
                        }
                    });
                match spawned {
                    Ok(h) => workers.push(h),
                    Err(e) => {
                        // Join whatever made it up before reporting.
                        drop(senders);
                        for h in workers {
                            let _ = h.join();
                        }
                        return Err(e);
                    }
                }
            }
        }
        Ok(ShardedPool { shards: senders, workers })
    }

    /// Submit `job` to the shard owning `key`. On a full (or torn-down)
    /// shard the job comes back to the caller untouched.
    pub(crate) fn try_submit(&self, key: u64, job: J) -> Result<(), J> {
        let shard = (key % self.shards.len() as u64) as usize;
        match self.shards[shard].try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(j)) | Err(TrySendError::Disconnected(j)) => Err(j),
        }
    }

    /// Jobs currently queued (not yet picked up) across all shards —
    /// exported as the `server.dispatch_queue_depth` gauge.
    pub(crate) fn depth(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

impl<J: Send + 'static> Drop for ShardedPool<J> {
    fn drop(&mut self) {
        // Closing the channels lets workers drain their queues and exit.
        self.shards.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_everything_and_joins_on_drop() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        let pool: ShardedPool<usize> =
            ShardedPool::new(2, 2, 8, move |n| {
                h2.fetch_add(n, Ordering::SeqCst);
            })
            .unwrap();
        let mut submitted = 0usize;
        for i in 0..100u64 {
            let mut job = 1usize;
            loop {
                match pool.try_submit(i, job) {
                    Ok(()) => break,
                    Err(j) => {
                        job = j;
                        std::thread::yield_now();
                    }
                }
            }
            submitted += 1;
        }
        drop(pool); // joins: all accepted jobs ran
        assert_eq!(hits.load(Ordering::SeqCst), submitted);
    }

    #[test]
    fn same_key_lands_on_one_shard_in_order() {
        // One worker per shard: per-shard FIFO means per-key FIFO.
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        let pool: ShardedPool<u32> = ShardedPool::new(4, 1, 64, move |n| {
            s2.lock().unwrap().push(n);
            std::thread::sleep(std::time::Duration::from_millis(1));
        })
        .unwrap();
        for n in 0..20u32 {
            let mut job = n;
            loop {
                match pool.try_submit(7, job) {
                    Ok(()) => break,
                    Err(j) => {
                        job = j;
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            }
        }
        drop(pool);
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, (0..20).collect::<Vec<_>>(), "per-key order must hold");
    }

    #[test]
    fn backpressure_hands_job_back() {
        // Worker parks on a gate so the queue (depth 1) fills up.
        let (gate_tx, gate_rx) = crossbeam::channel::bounded::<()>(0);
        let pool: ShardedPool<u32> = ShardedPool::new(1, 1, 1, move |_| {
            let _ = gate_rx.recv();
        })
        .unwrap();
        // First job occupies the worker, second fills the queue; the
        // third must bounce.
        pool.try_submit(0, 1).unwrap();
        let mut bounced = false;
        for _ in 0..200 {
            match pool.try_submit(0, 2) {
                Ok(()) => {}
                Err(j) => {
                    assert_eq!(j, 2);
                    bounced = true;
                    break;
                }
            }
        }
        assert!(bounced, "bounded queue must eventually refuse");
        assert!(pool.depth() >= 1);
        drop(gate_tx); // release workers
        drop(pool);
    }
}
