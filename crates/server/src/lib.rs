//! # ig-server — the Globus-style GridFTP server
//!
//! Reproduces the architecture of Fig 2: a **server protocol
//! interpreter** ([`session`]) that speaks the control channel, and a
//! **data transfer process** ([`dtp`]) that moves bytes over MODE E
//! parallel data channels — optionally striped across several data mover
//! nodes ([`striped`]), each behind its own (simulated) NIC.
//!
//! Security follows §IIC exactly:
//! * control-channel authentication is obligatory (`AUTH GSSAPI` +
//!   `ADAT` token pump over [`ig_gsi`]), the control channel is
//!   `ENC`-protected by default;
//! * after authentication an **authorization callout** ([`authz`]) maps
//!   the validated identity to a local account — either the classic
//!   gridmap file, or the GCMU callout that parses the username straight
//!   out of the DN when the certificate came from the local online CA
//!   (§IV-C), eliminating the gridmap;
//! * the server then confines the session to that user's view of storage
//!   ([`users::UserContext`], the stand-in for the `setuid` the real
//!   server performs);
//! * data channels default to DCAU with the delegated credential and
//!   `PROT C`, switchable per session — and the **`DCSC`** command swaps
//!   the data-channel credential/trust without touching the control
//!   channel (§V).
//!
//! Storage access goes through the **DSI** trait ([`dsi`]), mirroring
//! the Globus Data Storage Interface that lets "any storage system that
//! can implement its data storage interface" (§II-A) sit under a GridFTP
//! server; in-memory and POSIX backends are provided.

pub mod admin;
pub mod authz;
pub mod config;
pub mod data;
pub mod dsi;
pub mod dtp;
pub mod error;
pub mod fault;
pub mod introspect;
pub mod listener;
mod pool;
#[cfg(target_os = "linux")]
mod reactor;
pub mod session;
pub mod striped;
pub mod tunables;
pub mod usage;
pub mod users;

pub use admin::SchedulerControl;
pub use authz::{AuthzCallout, ChainAuthz, GcmuAuthz, GridmapAuthz};
pub use config::{ServerConfig, ServerCore};
pub use dsi::{expand_stream, memory::MemDsi, posix::PosixDsi, read_all, walk, Dsi, ExpandOutcome, WalkEntry};
pub use dtp::RecvFault;
pub use error::ServerError;
pub use fault::FaultInjector;
pub use introspect::{SessionIndex, SessionState, SessionTicket, TransferScope};
pub use listener::{DrainReport, GridFtpServer};
pub use tunables::{ReloadError, TunableSlot, TunableValue, Tunables};
pub use usage::{stats_json, UsageReporter, UsageSnapshot};
pub use users::UserContext;
