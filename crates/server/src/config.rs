//! Server configuration.

use crate::admin::SchedulerControl;
use crate::authz::AuthzCallout;
use crate::dsi::Dsi;
use crate::introspect::SessionIndex;
use crate::tunables::{ReloadError, TunableSlot, TunableValue, Tunables};
use crate::usage::UsageReporter;
use ig_pki::time::Clock;
use ig_pki::{Credential, TrustStore};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::Arc;

/// Which concurrency core drives control sessions.
///
/// Both cores run the identical protocol machine
/// (`session::Session::process_message`); they differ only in how
/// sessions are multiplexed onto OS resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ServerCore {
    /// One blocking thread per control session (portable fallback).
    #[default]
    Threaded,
    /// One epoll reactor thread holding every idle session, plus a
    /// bounded sharded worker pool for command execution. Linux only;
    /// `GridFtpServer::start` returns a typed error elsewhere.
    Reactor,
}

impl ServerCore {
    /// Stable lowercase label used in `SITE STATS` and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            ServerCore::Threaded => "threaded",
            ServerCore::Reactor => "reactor",
        }
    }
}

/// Everything a GridFTP server instance needs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Endpoint name (hostname); also what the GCMU online-CA marker is
    /// matched against.
    pub name: String,
    /// Host credential presented on the control channel.
    pub credential: Credential,
    /// Trust roots for validating clients (and data-channel peers).
    pub trust: TrustStore,
    /// Identity → local account mapping.
    pub authz: Arc<dyn AuthzCallout>,
    /// Storage backend.
    pub dsi: Arc<dyn Dsi>,
    /// Clock (fixed in tests, system in examples).
    pub clock: Clock,
    /// Whether this server understands the paper's `DCSC` command.
    /// `false` models the "legacy GridFTP server that knows nothing
    /// about DCSC" of §IV-B.
    pub dcsc_enabled: bool,
    /// Number of stripes (data movers). 1 = conventional server; >1
    /// enables `SPAS`/`SPOR` striped transfers (Fig 2's striped layout).
    pub stripes: usize,
    /// Per-stripe bandwidth limit in bytes/second (models one NIC per
    /// data mover node; `None` = unthrottled).
    pub stripe_rate: Option<f64>,
    /// MODE E block size in bytes.
    pub block_size: usize,
    /// Blocks between restart/perf markers on the control channel.
    pub marker_interval: usize,
    /// Usage reporting sink (Fig 1).
    pub usage: Arc<UsageReporter>,
    /// 220 banner text.
    pub banner: String,
    /// IP data-channel listeners bind to.
    pub data_ip: Ipv4Addr,
    /// RSA key size for delegation handshakes (small in tests).
    pub key_bits: usize,
    /// Optional one-shot fault injector applied to outgoing data streams
    /// (experiment E9's mid-transfer crash).
    pub fault: Option<std::sync::Arc<crate::fault::FaultInjector>>,
    /// How long a data transfer may sit with no progress before the
    /// server abandons it (both directions).
    pub stall_timeout: std::time::Duration,
    /// Idle deadline on the control channel: a client that goes silent
    /// this long gets a typed timeout instead of a parked session thread.
    /// `None` = wait forever (legacy behaviour).
    pub control_idle_timeout: Option<std::time::Duration>,
    /// Optional chaos hook wrapped around every data stream the server
    /// opens or accepts (the chaos matrix's server-side fault site).
    pub data_chaos: Option<std::sync::Arc<ig_xio::ChaosHook>>,
    /// Observability hub: session/transfer spans, command RTT metrics,
    /// and the registry `SITE STATS` serves. Defaults to
    /// [`ig_obs::Obs::global`]; tests pass a private hub per server.
    pub obs: Arc<ig_obs::Obs>,
    /// Concurrency core for control sessions.
    pub core: ServerCore,
    /// Reactor worker pool: number of shards (independent bounded
    /// queues; a session always hashes to the same shard, preserving
    /// per-session command order).
    pub worker_shards: usize,
    /// Reactor worker pool: threads per shard.
    pub workers_per_shard: usize,
    /// Reactor worker pool: queued jobs per shard before backpressure
    /// (the reactor parks further frames in per-session buffers).
    pub dispatch_queue: usize,
    /// Whether clients may select the reliable-UDP MODE E data driver
    /// (`OPTS DATA Transport=udp`). Off = the legacy TCP-only server.
    pub udp_enabled: bool,
    /// Default congestion controller for UDP data channels (clients may
    /// override per session via `OPTS DATA CC=<reno|cubic|bbr>`).
    pub udp_cc: ig_netsim::CcAlgo,
    /// Deterministic datagram-level fault injection on UDP data
    /// channels (the chaos matrix's datagram fault site; distinct from
    /// `data_chaos`, which faults whole link frames).
    pub udp_chaos: Option<ig_xio::DatagramChaos>,
    /// Path for the local admin-plane unix socket (`None` = no admin
    /// surface). Linux only; ignored elsewhere.
    pub admin_socket: Option<PathBuf>,
    /// UID the admin socket trusts (`None` = this process's euid). The
    /// `SO_PEERCRED` check runs before any byte of a connection is read.
    pub admin_uid: Option<u32>,
    /// Hot-swap slot for the reloadable tunables (see
    /// [`crate::tunables`]). Shared by every clone of this config, so
    /// an admin reload reaches sessions on both cores.
    pub tunables: Arc<TunableSlot>,
    /// Live-session registry behind the admin `sessions` command.
    pub sessions: Arc<SessionIndex>,
    /// Optional hook into a fair-share scheduler so the admin plane can
    /// adjust per-tenant weights and rate caps (`limits set`).
    pub scheduler: Option<Arc<dyn SchedulerControl>>,
}

impl ServerConfig {
    /// A config with sensible defaults for a single-node server.
    pub fn new(
        name: &str,
        credential: Credential,
        trust: TrustStore,
        authz: Arc<dyn AuthzCallout>,
        dsi: Arc<dyn Dsi>,
    ) -> Self {
        ServerConfig {
            name: name.to_string(),
            credential,
            trust,
            authz,
            dsi,
            clock: Clock::System,
            dcsc_enabled: true,
            stripes: 1,
            stripe_rate: None,
            block_size: 64 * 1024,
            marker_interval: 16,
            usage: UsageReporter::new(),
            banner: format!("{name} GridFTP Server (ig-server) ready."),
            data_ip: Ipv4Addr::LOCALHOST,
            key_bits: 512,
            fault: None,
            stall_timeout: std::time::Duration::from_secs(30),
            control_idle_timeout: None,
            data_chaos: None,
            obs: ig_obs::Obs::global(),
            core: ServerCore::default(),
            worker_shards: 4,
            workers_per_shard: 2,
            dispatch_queue: 64,
            udp_enabled: true,
            udp_cc: ig_netsim::CcAlgo::Bbr,
            udp_chaos: None,
            admin_socket: None,
            admin_uid: None,
            tunables: TunableSlot::new(),
            sessions: SessionIndex::new(),
            scheduler: None,
        }
    }

    /// The live tunable snapshot, seeded from the builder-set fields on
    /// first read. Sessions call this at each use site so an admin
    /// reload takes effect without restarting anything.
    pub fn live(&self) -> Arc<Tunables> {
        self.tunables.get_or_seed(|| self.tunable_seed())
    }

    /// Validate and apply an admin reload batch (all-or-nothing; see
    /// [`crate::tunables::TunableSlot::reload`]). The one non-tunable
    /// knob handled here is `data_chaos_armed`, which arms/disarms the
    /// installed chaos hook — validated with the rest of the batch so a
    /// rejected batch toggles nothing.
    pub fn reload(
        &self,
        updates: &[(String, TunableValue)],
    ) -> Result<Arc<Tunables>, ReloadError> {
        let mut chaos_arm = None;
        let mut tun = Vec::new();
        for (field, value) in updates {
            if field == "data_chaos_armed" {
                let hook = self.data_chaos.as_ref().ok_or_else(|| {
                    ReloadError::InvalidValue {
                        field: field.clone(),
                        reason: "no chaos hook installed".to_string(),
                    }
                })?;
                match value {
                    TunableValue::Bool(b) => chaos_arm = Some((Arc::clone(hook), *b)),
                    _ => {
                        return Err(ReloadError::InvalidValue {
                            field: field.clone(),
                            reason: "expected bool".to_string(),
                        })
                    }
                }
            } else {
                tun.push((field.clone(), value.clone()));
            }
        }
        let out = self.tunables.reload(|| self.tunable_seed(), &tun)?;
        if let Some((hook, arm)) = chaos_arm {
            if arm {
                hook.arm();
            } else {
                hook.disarm();
            }
        }
        Ok(out)
    }

    fn tunable_seed(&self) -> Tunables {
        Tunables {
            stall_timeout: self.stall_timeout,
            control_idle_timeout: self.control_idle_timeout,
            block_size: self.block_size,
            marker_interval: self.marker_interval,
            stripe_rate: self.stripe_rate,
        }
    }

    /// Builder: fixed clock.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Builder: disable DCSC (legacy server, §IV-B).
    pub fn legacy(mut self) -> Self {
        self.dcsc_enabled = false;
        self
    }

    /// Builder: striped deployment.
    pub fn with_stripes(mut self, stripes: usize, per_stripe_rate: Option<f64>) -> Self {
        assert!(stripes >= 1, "need at least one stripe");
        self.stripes = stripes;
        self.stripe_rate = per_stripe_rate;
        self
    }

    /// Builder: install a one-shot fault injector on outgoing data.
    pub fn with_fault(mut self, fault: std::sync::Arc<crate::fault::FaultInjector>) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Builder: block size.
    pub fn with_block_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "block size must be positive");
        self.block_size = bytes;
        self
    }

    /// Builder: data-transfer stall deadline.
    pub fn with_stall_timeout(mut self, t: std::time::Duration) -> Self {
        self.stall_timeout = t;
        self
    }

    /// Builder: control-channel idle deadline.
    pub fn with_control_idle_timeout(mut self, t: std::time::Duration) -> Self {
        self.control_idle_timeout = Some(t);
        self
    }

    /// Builder: wrap server-side data streams in a chaos hook.
    pub fn with_data_chaos(mut self, hook: std::sync::Arc<ig_xio::ChaosHook>) -> Self {
        self.data_chaos = Some(hook);
        self
    }

    /// Builder: a private observability hub (tests isolate metrics and
    /// traces per server instance this way).
    pub fn with_obs(mut self, obs: Arc<ig_obs::Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Builder: select the concurrency core.
    pub fn with_core(mut self, core: ServerCore) -> Self {
        self.core = core;
        self
    }

    /// Builder: forbid the UDP data driver (TCP-only legacy posture).
    pub fn without_udp(mut self) -> Self {
        self.udp_enabled = false;
        self
    }

    /// Builder: default congestion controller for UDP data channels.
    pub fn with_udp_cc(mut self, cc: ig_netsim::CcAlgo) -> Self {
        self.udp_cc = cc;
        self
    }

    /// Builder: datagram-level chaos on UDP data channels.
    pub fn with_udp_chaos(mut self, chaos: ig_xio::DatagramChaos) -> Self {
        self.udp_chaos = Some(chaos);
        self
    }

    /// Builder: expose the local admin plane on a unix socket at `path`.
    pub fn with_admin_socket(mut self, path: impl Into<PathBuf>) -> Self {
        self.admin_socket = Some(path.into());
        self
    }

    /// Builder: UID the admin socket trusts instead of this process's
    /// euid (tests use a mismatched UID to drive the rejection path).
    pub fn with_admin_uid(mut self, uid: u32) -> Self {
        self.admin_uid = Some(uid);
        self
    }

    /// Builder: hand the admin plane a scheduler to adjust.
    pub fn with_scheduler(mut self, sched: Arc<dyn SchedulerControl>) -> Self {
        self.scheduler = Some(sched);
        self
    }

    /// Builder: size the reactor worker pool.
    pub fn with_worker_pool(
        mut self,
        shards: usize,
        workers_per_shard: usize,
        dispatch_queue: usize,
    ) -> Self {
        assert!(shards >= 1 && workers_per_shard >= 1 && dispatch_queue >= 1);
        self.worker_shards = shards;
        self.workers_per_shard = workers_per_shard;
        self.dispatch_queue = dispatch_queue;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::GcmuAuthz;
    use crate::dsi::memory::MemDsi;
    use ig_gsi::context::test_support::ca_and_credential;

    #[test]
    fn builders() {
        let mut rng = ig_crypto::rng::seeded(1);
        let (ca, cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=host");
        let mut trust = TrustStore::new();
        trust.add_root(ca.root_cert().clone());
        let cfg = ServerConfig::new(
            "ep.example.org",
            cred,
            trust,
            Arc::new(GcmuAuthz::new("ep.example.org")),
            Arc::new(MemDsi::new()),
        )
        .legacy()
        .with_stripes(4, Some(1e6))
        .with_block_size(1024)
        .with_clock(Clock::Fixed(42));
        assert!(!cfg.dcsc_enabled);
        assert_eq!(cfg.stripes, 4);
        assert_eq!(cfg.block_size, 1024);
        assert_eq!(cfg.clock.now(), 42);
        assert!(cfg.banner.contains("ep.example.org"));
    }
}
