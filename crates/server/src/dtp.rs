//! The Data Transfer Process: MODE E senders and receivers.
//!
//! The sender fans blocks out round-robin over N parallel streams from a
//! bounded queue (so a slow stream backpressures the reader); the
//! receiver runs one thread per accepted connection, all writing through
//! the DSI at block offsets — order never matters. This is the §II-B DTP,
//! separated from the protocol interpreter exactly as in Fig 2.

use crate::dsi::Dsi;
use crate::error::{Result, ServerError};
use crate::users::UserContext;
use ig_protocol::mode_e::{self, Block, BlockView};
use ig_protocol::ByteRanges;
use ig_xio::Link;
use parking_lot::Mutex;
use std::io::IoSlice;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One queued piece of work for a stream worker: `(file_offset, chunk,
/// start, end)` — the block payload is `chunk[start..end]`. The read
/// chunk is shared by reference, so fanning one DSI read out into many
/// blocks allocates nothing per block; workers frame each block as a
/// vectored header + payload-slice send.
type BlockPiece = (u64, Arc<[u8]>, usize, usize);

/// Shared live progress of a transfer (polled for markers).
#[derive(Default)]
pub struct Progress {
    /// Payload bytes moved so far.
    pub bytes: AtomicU64,
    /// Completed byte ranges (receiver side).
    pub ranges: Mutex<ByteRanges>,
}

impl Progress {
    /// Fresh shared progress.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Bytes so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of completed ranges.
    pub fn ranges_snapshot(&self) -> ByteRanges {
        self.ranges.lock().clone()
    }
}

/// Spawn one block-sending worker per stream, each draining its own
/// bounded queue. Worker 0 announces the EOD count first; every worker
/// ends with EOD + close when its queue disconnects — the GridFTP close
/// protocol. Shared by the single-file and directory-stream senders.
fn spawn_block_workers(
    streams: Vec<Box<dyn Link>>,
    progress: &Arc<Progress>,
) -> Result<(Vec<crossbeam::channel::Sender<BlockPiece>>, Vec<std::thread::JoinHandle<Result<()>>>)>
{
    assert!(!streams.is_empty(), "need at least one stream");
    let n = streams.len();
    // One bounded queue per stream: strict round-robin. A shared queue
    // lets one fast worker drain everything (guaranteed on a single-core
    // host), collapsing all traffic onto one connection.
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = crossbeam::channel::bounded::<BlockPiece>(4);
        txs.push(tx);
        rxs.push(rx);
    }
    let mut workers = Vec::with_capacity(n);
    for (i, mut stream) in streams.into_iter().enumerate() {
        let rx = rxs.remove(0);
        let progress = Arc::clone(progress);
        let spawned = std::thread::Builder::new()
            .name(format!("dtp-stream-{i}"))
            .spawn(move || -> Result<()> {
                // First stream announces how many EODs to expect.
                if i == 0 {
                    stream
                        .send(&Block::eof_count(n as u64).encode())
                        .map_err(|e| ServerError::Data(format!("send EOF count: {e}")))?;
                }
                while let Ok((offset, chunk, start, end)) = rx.recv() {
                    let len = (end - start) as u64;
                    let header = mode_e::encode_header(0, len, offset);
                    stream
                        .send_vectored(&[
                            IoSlice::new(&header),
                            IoSlice::new(&chunk[start..end]),
                        ])
                        .map_err(|e| ServerError::Data(format!("send block: {e}")))?;
                    progress.bytes.fetch_add(len, Ordering::Relaxed);
                }
                stream
                    .send(&Block::eod().encode())
                    .map_err(|e| ServerError::Data(format!("send EOD: {e}")))?;
                let _ = stream.close();
                Ok(())
            });
        match spawned {
            Ok(w) => workers.push(w),
            Err(e) => {
                // Dropping `txs` ends already-spawned workers cleanly
                // (their queues disconnect and they send EOD/close).
                drop(txs);
                for w in workers {
                    let _ = w.join();
                }
                return Err(ServerError::Spawn(format!("dtp stream worker {i}: {e}")));
            }
        }
    }
    Ok((txs, workers))
}

/// Join block workers after the feed finished (or failed): worker errors
/// win over feed errors only when the feed succeeded.
fn join_block_workers(
    workers: Vec<std::thread::JoinHandle<Result<()>>>,
    feed_err: Option<ServerError>,
) -> Result<()> {
    let mut worker_err = None;
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => worker_err = worker_err.or(Some(e)),
            Err(_) => {
                worker_err = worker_err.or(Some(ServerError::Data("stream worker panicked".into())))
            }
        }
    }
    match (worker_err, feed_err) {
        (Some(e), _) => Err(e),
        (None, Some(e)) => Err(e),
        (None, None) => Ok(()),
    }
}

/// Send `ranges` of `path` over `streams` as MODE E blocks.
///
/// Returns the payload bytes sent. Stream workers send data blocks; the
/// first stream additionally announces the EOD count (one per stream),
/// and every stream ends with EOD — the GridFTP close protocol.
pub fn send_ranges(
    streams: Vec<Box<dyn Link>>,
    dsi: &Arc<dyn Dsi>,
    user: &UserContext,
    path: &str,
    ranges: &[(u64, u64)],
    block_size: usize,
    progress: &Arc<Progress>,
) -> Result<u64> {
    let n = streams.len();
    let (txs, workers) = spawn_block_workers(streams, progress)?;
    // Reader: stream file ranges into the queues in block-sized pieces,
    // strictly round-robin over streams. Each read chunk is shared with
    // the workers by reference; the per-block queue items carry only an
    // offset and a sub-range, never a copy of the payload.
    let mut total = 0u64;
    let read_chunk = block_size.max(64 * 1024);
    let mut feed_err: Option<ServerError> = None;
    let mut next_stream = 0usize;
    'outer: for &(start, end) in ranges {
        let mut offset = start;
        while offset < end {
            let want = read_chunk.min((end - offset) as usize);
            let data = match dsi.read(user, path, offset, want) {
                Ok(d) => d,
                Err(e) => {
                    feed_err = Some(e);
                    break 'outer;
                }
            };
            if data.is_empty() {
                break; // EOF inside the range
            }
            let got = data.len() as u64;
            let chunk: Arc<[u8]> = Arc::from(data);
            let mut piece_start = 0usize;
            while piece_start < chunk.len() {
                let piece_end = (piece_start + block_size).min(chunk.len());
                let piece =
                    (offset + piece_start as u64, Arc::clone(&chunk), piece_start, piece_end);
                if txs[next_stream].send(piece).is_err() {
                    feed_err = Some(ServerError::Data("stream workers died".into()));
                    break 'outer;
                }
                next_stream = (next_stream + 1) % n;
                piece_start = piece_end;
            }
            offset += got;
            total += got;
        }
    }
    drop(txs); // signals workers to send EODs
    join_block_workers(workers, feed_err)?;
    Ok(total)
}

/// Send the directory tree under `root` over `streams` as one streamed
/// MODE E transfer in [`ig_protocol::stream_dir`] framing, skipping the
/// first `skip` walk entries (file-granular resume). Returns the stream
/// bytes sent.
///
/// The walk is sorted depth-first pre-order, so the entry sequence is
/// deterministic and `skip` means the same thing to sender and receiver.
/// Stream offsets start at 0 on every attempt: each resume attempt is a
/// self-contained stream whose end marker counts only the entries it
/// carried.
pub fn send_dir(
    streams: Vec<Box<dyn Link>>,
    dsi: &Arc<dyn Dsi>,
    user: &UserContext,
    root: &str,
    skip: u64,
    block_size: usize,
    progress: &Arc<Progress>,
) -> Result<u64> {
    use ig_protocol::stream_dir::{encode_end, encode_header, encode_trailer, StreamEntry};

    let entries = crate::dsi::walk(dsi.as_ref(), user, root)?;
    if skip as usize > entries.len() {
        return Err(ServerError::Data(format!(
            "resume skip {skip} beyond the tree's {} entries",
            entries.len()
        )));
    }
    let n = streams.len();
    let (txs, workers) = spawn_block_workers(streams, progress)?;

    // The feed walks the tree and pushes the framing + payload bytes as
    // sequential-offset blocks, strict round-robin — the receiver's
    // contiguous reassembled prefix is then exactly a decodable prefix of
    // the entry stream.
    let mut offset = 0u64;
    let mut next_stream = 0usize;
    let mut total = 0u64;
    let mut feed = |chunk: Arc<[u8]>| -> Result<()> {
        let mut start = 0usize;
        while start < chunk.len() {
            let end = (start + block_size).min(chunk.len());
            let piece = (offset, Arc::clone(&chunk), start, end);
            if txs[next_stream].send(piece).is_err() {
                return Err(ServerError::Data("stream workers died".into()));
            }
            offset += (end - start) as u64;
            total += (end - start) as u64;
            next_stream = (next_stream + 1) % n;
            start = end;
        }
        Ok(())
    };

    let read_chunk = block_size.max(64 * 1024);
    let mut run = || -> Result<()> {
        for entry in &entries[skip as usize..] {
            let meta = if entry.is_dir {
                StreamEntry::dir(entry.rel_path.clone())
            } else {
                StreamEntry::file(entry.rel_path.clone(), entry.size)
            };
            feed(Arc::from(encode_header(&meta)?))?;
            if entry.is_dir {
                continue;
            }
            let abs = if root.ends_with('/') {
                format!("{root}{}", entry.rel_path)
            } else {
                format!("{root}/{}", entry.rel_path)
            };
            let mut hasher = ig_crypto::Sha256::new();
            let mut sent = 0u64;
            while sent < entry.size {
                let want = read_chunk.min((entry.size - sent) as usize);
                let data = dsi.read(user, &abs, sent, want)?;
                if data.is_empty() {
                    return Err(ServerError::Storage(format!(
                        "{abs} shrank mid-stream ({sent} of {} bytes)",
                        entry.size
                    )));
                }
                sent += data.len() as u64;
                hasher.update(&data);
                feed(Arc::from(data))?;
            }
            feed(Arc::from(encode_trailer(&hasher.finalize())))?;
        }
        feed(Arc::from(encode_end(entries.len() as u64 - skip)))?;
        Ok(())
    };
    let feed_err = run().err();
    drop(txs); // signals workers to send EODs
    join_block_workers(workers, feed_err)?;
    Ok(total)
}

/// Send an in-memory buffer as MODE E blocks over `streams`
/// (directory listings, client-side uploads of in-memory data).
pub fn send_buffer(
    streams: Vec<Box<dyn Link>>,
    data: &[u8],
    block_size: usize,
    progress: &Arc<Progress>,
) -> Result<u64> {
    send_buffer_at(streams, 0, data, block_size, progress)
}

/// Like [`send_buffer`] but places the buffer at file offset `base`
/// (resumed uploads send only the missing tail/holes).
pub fn send_buffer_at(
    mut streams: Vec<Box<dyn Link>>,
    base: u64,
    data: &[u8],
    block_size: usize,
    progress: &Arc<Progress>,
) -> Result<u64> {
    let n = streams.len();
    assert!(n > 0, "need at least one stream");
    assert!(block_size > 0, "block size must be positive");
    streams[0]
        .send(&Block::eof_count(n as u64).encode())
        .map_err(|e| ServerError::Data(format!("send EOF count: {e}")))?;
    // Vectored header + payload-slice sends straight out of the caller's
    // buffer: no per-block `Block` materialization or payload copy.
    let mut off = 0usize;
    let mut i = 0usize;
    while off < data.len() {
        let end = (off + block_size).min(data.len());
        let header = mode_e::encode_header(0, (end - off) as u64, base + off as u64);
        streams[i % n]
            .send_vectored(&[IoSlice::new(&header), IoSlice::new(&data[off..end])])
            .map_err(|e| ServerError::Data(format!("send block: {e}")))?;
        progress.bytes.fetch_add((end - off) as u64, Ordering::Relaxed);
        off = end;
        i += 1;
    }
    for stream in streams.iter_mut() {
        stream
            .send(&Block::eod().encode())
            .map_err(|e| ServerError::Data(format!("send EOD: {e}")))?;
        let _ = stream.close();
    }
    Ok(data.len() as u64)
}

/// Typed classification of a receive-side failure, so the session layer
/// (and through it the client) can tell a stalled peer from a truncated
/// stream from corrupted framing.
#[derive(Debug, Clone)]
pub enum RecvFault {
    /// The idle deadline expired with the connection still open.
    TimedOut(String),
    /// The peer vanished (or EODs never arrived) before the transfer
    /// completed.
    Truncated(String),
    /// A frame arrived but failed MODE E structural checks.
    Corrupt(String),
    /// The storage layer rejected a write.
    Storage(String),
}

impl std::fmt::Display for RecvFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvFault::TimedOut(m)
            | RecvFault::Truncated(m)
            | RecvFault::Corrupt(m)
            | RecvFault::Storage(m) => write!(f, "{m}"),
        }
    }
}

impl From<RecvFault> for ServerError {
    fn from(f: RecvFault) -> Self {
        match f {
            RecvFault::TimedOut(m) => ServerError::Timeout(m),
            RecvFault::Truncated(m) => ServerError::Truncated(m),
            RecvFault::Corrupt(m) => ServerError::Corrupt(m),
            RecvFault::Storage(m) => ServerError::Storage(m),
        }
    }
}

/// Shared receiver state across connection threads.
struct RecvShared {
    dsi: Arc<dyn Dsi>,
    user: UserContext,
    path: String,
    progress: Arc<Progress>,
    eods: AtomicU64,
    eof_expected: AtomicU64, // 0 = unknown yet
    error: Mutex<Option<RecvFault>>,
}

impl RecvShared {
    fn fault(&self, f: RecvFault) {
        let mut err = self.error.lock();
        if err.is_none() {
            *err = Some(f);
        }
    }
}

/// Receiver for one transfer: feed it connections as they arrive.
pub struct Receiver {
    shared: Arc<RecvShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    idle: Option<std::time::Duration>,
}

impl Receiver {
    /// Start receiving into `path` (created/extended as blocks land).
    pub fn new(
        dsi: Arc<dyn Dsi>,
        user: UserContext,
        path: &str,
        progress: Arc<Progress>,
    ) -> Self {
        // Ensure the destination exists even for zero-byte transfers.
        if !dsi.exists(&user, path) {
            let _ = dsi.truncate(&user, path, 0);
        }
        Receiver {
            shared: Arc::new(RecvShared {
                dsi,
                user,
                path: path.to_string(),
                progress,
                eods: AtomicU64::new(0),
                eof_expected: AtomicU64::new(0),
                error: Mutex::new(None),
            }),
            threads: Mutex::new(Vec::new()),
            idle: None,
        }
    }

    /// Builder: bound how long a stream may sit silent. Without it a
    /// half-open peer parks a receive thread forever and
    /// [`Receiver::finish`] never returns; with it the stalled stream
    /// fails as [`RecvFault::TimedOut`]. Set before adding streams.
    pub fn with_idle(mut self, idle: std::time::Duration) -> Self {
        self.idle = Some(idle);
        self
    }

    /// Handle one data connection on a background thread.
    ///
    /// A refused spawn (thread exhaustion) surfaces as
    /// [`ServerError::Spawn`] instead of panicking mid-transfer.
    pub fn add_stream(&self, mut link: Box<dyn Link>) -> Result<()> {
        if let Some(idle) = self.idle {
            let _ = link.set_recv_timeout(Some(idle));
        }
        let shared = Arc::clone(&self.shared);
        let spawned = std::thread::Builder::new().name("dtp-recv".into()).spawn(move || {
            // One receive buffer per connection, reused for every block;
            // blocks are parsed as borrowed views straight out of it.
            let mut msg = Vec::new();
            loop {
                if let Err(e) = link.recv_into(&mut msg) {
                    use std::io::ErrorKind;
                    let fault = match e.kind() {
                        // Deadline: the connection is open but silent.
                        ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                            RecvFault::TimedOut(format!("data connection idle: {e}"))
                        }
                        // EOF without EOD = abnormal close.
                        _ => RecvFault::Truncated(format!("data connection dropped: {e}")),
                    };
                    shared.fault(fault);
                    return;
                }
                let block = match BlockView::parse(&msg) {
                    Ok(b) => b,
                    Err(e) => {
                        shared.fault(RecvFault::Corrupt(format!("bad block: {e}")));
                        return;
                    }
                };
                if block.is_eof_count() {
                    shared.eof_expected.store(block.offset, Ordering::SeqCst);
                    continue;
                }
                if !block.payload.is_empty() && !block.is_restart() {
                    let end = block.offset + block.payload.len() as u64;
                    if let Err(e) =
                        shared.dsi.write(&shared.user, &shared.path, block.offset, block.payload)
                    {
                        shared.fault(RecvFault::Storage(format!("storage write: {e}")));
                        return;
                    }
                    shared.progress.bytes.fetch_add(block.payload.len() as u64, Ordering::Relaxed);
                    shared.progress.ranges.lock().add(block.offset, end);
                }
                if block.is_eod() {
                    shared.eods.fetch_add(1, Ordering::SeqCst);
                    let _ = link.close();
                    return;
                }
            }
        });
        match spawned {
            Ok(handle) => {
                self.threads.lock().push(handle);
                Ok(())
            }
            Err(e) => Err(ServerError::Spawn(format!("dtp receive worker: {e}"))),
        }
    }

    /// All announced connections closed cleanly?
    pub fn done(&self) -> bool {
        let expected = self.shared.eof_expected.load(Ordering::SeqCst);
        expected > 0 && self.shared.eods.load(Ordering::SeqCst) >= expected
    }

    /// Any stream-level error so far (display form).
    pub fn error(&self) -> Option<String> {
        self.shared.error.lock().as_ref().map(|f| f.to_string())
    }

    /// Any stream-level fault so far, typed.
    pub fn fault(&self) -> Option<RecvFault> {
        self.shared.error.lock().clone()
    }

    /// Wait for completion (all threads joined). Returns bytes received.
    pub fn finish(self) -> Result<u64> {
        let threads = std::mem::take(&mut *self.threads.lock());
        for t in threads {
            let _ = t.join();
        }
        if let Some(f) = self.shared.error.lock().clone() {
            return Err(f.into());
        }
        if !self.done() {
            return Err(ServerError::Truncated(
                "transfer ended before all EODs arrived".into(),
            ));
        }
        Ok(self.shared.progress.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsi::memory::MemDsi;
    use ig_xio::pipe;

    fn setup(data: &[u8]) -> (Arc<dyn Dsi>, UserContext) {
        let dsi = MemDsi::new();
        dsi.put("/src.bin", data);
        (Arc::new(dsi) as Arc<dyn Dsi>, UserContext::superuser())
    }

    /// Wire a sender and receiver together over N in-process pipes.
    fn transfer(data: &[u8], streams: usize, block: usize) -> Vec<u8> {
        let (dsi, user) = setup(data);
        let dst_dsi: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let progress_rx = Progress::new();
        let receiver = Receiver::new(Arc::clone(&dst_dsi), user.clone(), "/dst.bin", Arc::clone(&progress_rx));
        let mut sender_links: Vec<Box<dyn Link>> = Vec::new();
        for _ in 0..streams {
            let (a, b) = pipe();
            sender_links.push(Box::new(a));
            receiver.add_stream(Box::new(b)).unwrap();
        }
        let progress_tx = Progress::new();
        let len = data.len() as u64;
        let sent = send_ranges(
            sender_links,
            &dsi,
            &user,
            "/src.bin",
            &[(0, len)],
            block,
            &progress_tx,
        )
        .unwrap();
        assert_eq!(sent, len);
        assert_eq!(progress_tx.bytes(), len);
        let received = receiver.finish().unwrap();
        assert_eq!(received, len);
        crate::dsi::read_all(dst_dsi.as_ref(), &user, "/dst.bin", 1 << 16).unwrap()
    }

    #[test]
    fn single_stream_transfer() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(transfer(&data, 1, 1024), data);
    }

    #[test]
    fn parallel_streams_transfer() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 253) as u8).collect();
        for streams in [2usize, 4, 8] {
            assert_eq!(transfer(&data, streams, 4096), data, "streams={streams}");
        }
    }

    #[test]
    fn tiny_file_many_streams() {
        // Fewer blocks than streams: some streams carry only EOD.
        let data = b"tiny".to_vec();
        assert_eq!(transfer(&data, 8, 1024), data);
    }

    #[test]
    fn empty_file() {
        let data = Vec::new();
        assert_eq!(transfer(&data, 4, 1024), data);
    }

    #[test]
    fn partial_range_send() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let (dsi, user) = setup(&data);
        let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let progress = Progress::new();
        let receiver = Receiver::new(Arc::clone(&dst), user.clone(), "/out", Arc::clone(&progress));
        let (a, b) = pipe();
        receiver.add_stream(Box::new(b)).unwrap();
        let sent = send_ranges(
            vec![Box::new(a)],
            &dsi,
            &user,
            "/src.bin",
            &[(100, 200), (300, 400)],
            64,
            &Progress::new(),
        )
        .unwrap();
        assert_eq!(sent, 200);
        receiver.finish().unwrap();
        // Ranges landed at their original offsets.
        let ranges = progress.ranges_snapshot();
        assert_eq!(ranges.ranges(), &[(100, 200), (300, 400)]);
        assert_eq!(dst.read(&user, "/out", 100, 100).unwrap(), &data[100..200]);
    }

    /// Stream a source tree over N pipes into a staging file, then
    /// expand the staged bytes — the directory-transfer data path minus
    /// the control channel.
    fn dir_transfer(streams: usize, block: usize, skip: u64) -> (Arc<dyn Dsi>, u64) {
        let src: Arc<dyn Dsi> = Arc::new({
            let m = MemDsi::new();
            m.put("/tree/a/one.bin", b"first file");
            m.put("/tree/a/two.bin", &[7u8; 5000]);
            m.put("/tree/top.txt", b"top");
            m.put("/tree/z/deep/leaf", b"");
            m
        });
        let user = UserContext::superuser();
        let staging: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let progress = Progress::new();
        let receiver =
            Receiver::new(Arc::clone(&staging), user.clone(), "/stream", Arc::clone(&progress));
        let mut sender_links: Vec<Box<dyn Link>> = Vec::new();
        for _ in 0..streams {
            let (a, b) = pipe();
            sender_links.push(Box::new(a));
            receiver.add_stream(Box::new(b)).unwrap();
        }
        let sent =
            send_dir(sender_links, &src, &user, "/tree", skip, block, &Progress::new()).unwrap();
        let received = receiver.finish().unwrap();
        assert_eq!(sent, received);
        let data = crate::dsi::read_all(staging.as_ref(), &user, "/stream", 1 << 16).unwrap();
        let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let out = crate::dsi::expand_stream(dst.as_ref(), &user, "/copy", &data).unwrap();
        assert!(out.finished, "stream must carry its end marker: {out:?}");
        assert_eq!(out.error, None);
        (dst, out.entries)
    }

    #[test]
    fn dir_stream_roundtrips_over_parallel_streams() {
        for streams in [1usize, 3] {
            let (dst, entries) = dir_transfer(streams, 512, 0);
            let user = UserContext::superuser();
            // 7 walk entries: a, a/one.bin, a/two.bin, top.txt, z, z/deep,
            // z/deep/leaf.
            assert_eq!(entries, 7, "streams={streams}");
            assert_eq!(
                crate::dsi::read_all(dst.as_ref(), &user, "/copy/a/two.bin", 1 << 16).unwrap(),
                vec![7u8; 5000]
            );
            assert_eq!(
                crate::dsi::read_all(dst.as_ref(), &user, "/copy/top.txt", 64).unwrap(),
                b"top"
            );
            assert_eq!(dst.size(&user, "/copy/z/deep/leaf").unwrap(), 0);
        }
    }

    #[test]
    fn dir_stream_resume_skips_complete_entries() {
        // Skipping the first 3 entries yields a stream of the remaining 4
        // that still decodes and expands cleanly.
        let (dst, entries) = dir_transfer(1, 256, 3);
        assert_eq!(entries, 4);
        let user = UserContext::superuser();
        // Entry order: a, a/one.bin, a/two.bin, top.txt, z, z/deep, z/deep/leaf.
        assert!(dst.exists(&user, "/copy/top.txt"));
        assert!(!dst.exists(&user, "/copy/a/one.bin"));
    }

    #[test]
    fn dir_stream_skip_past_end_is_typed_error() {
        let src: Arc<dyn Dsi> = Arc::new({
            let m = MemDsi::new();
            m.put("/tree/f", b"x");
            m
        });
        let user = UserContext::superuser();
        let (a, b) = pipe();
        drop(b);
        let err = send_dir(
            vec![Box::new(a)],
            &src,
            &user,
            "/tree",
            9,
            256,
            &Progress::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("skip"), "{err}");
    }

    #[test]
    fn receiver_reports_dropped_connection() {
        let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let user = UserContext::superuser();
        let receiver = Receiver::new(dst, user, "/out", Progress::new());
        let (a, b) = pipe();
        receiver.add_stream(Box::new(b)).unwrap();
        // Send one data block then drop without EOD.
        let mut a: Box<dyn Link> = Box::new(a);
        a.send(&Block::eof_count(1).encode()).unwrap();
        a.send(&Block::data(0, vec![1, 2, 3]).encode()).unwrap();
        drop(a);
        let err = receiver.finish().unwrap_err();
        assert!(err.to_string().contains("dropped"));
    }

    #[test]
    fn receiver_rejects_garbage_blocks() {
        let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let receiver = Receiver::new(dst, UserContext::superuser(), "/out", Progress::new());
        let (mut a, b) = pipe();
        receiver.add_stream(Box::new(b)).unwrap();
        a.send(b"definitely not a block").unwrap();
        let err = receiver.finish().unwrap_err();
        assert!(err.to_string().contains("bad block"));
    }

    #[test]
    fn idle_stream_times_out_typed() {
        // A half-open peer (connection alive, no traffic) must yield a
        // typed timeout instead of parking finish() forever.
        let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let receiver = Receiver::new(dst, UserContext::superuser(), "/out", Progress::new())
            .with_idle(std::time::Duration::from_millis(50));
        let (a, b) = pipe();
        receiver.add_stream(Box::new(b)).unwrap();
        let err = receiver.finish().unwrap_err();
        assert!(matches!(err, ServerError::Timeout(_)), "{err}");
        drop(a); // keep the peer open for the whole test
    }

    #[test]
    fn truncation_and_corruption_are_distinct() {
        // Dropped-before-EOD surfaces as Truncated...
        let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let receiver = Receiver::new(dst, UserContext::superuser(), "/out", Progress::new());
        let (a, b) = pipe();
        receiver.add_stream(Box::new(b)).unwrap();
        drop(a);
        assert!(matches!(receiver.finish().unwrap_err(), ServerError::Truncated(_)));
        // ...while an unparseable frame surfaces as Corrupt.
        let dst: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let receiver = Receiver::new(dst, UserContext::superuser(), "/out", Progress::new());
        let (mut a, b) = pipe();
        receiver.add_stream(Box::new(b)).unwrap();
        a.send(b"not mode e").unwrap();
        assert!(matches!(receiver.finish().unwrap_err(), ServerError::Corrupt(_)));
    }

    #[test]
    fn missing_source_file_errors() {
        let dsi: Arc<dyn Dsi> = Arc::new(MemDsi::new());
        let user = UserContext::superuser();
        let (a, b) = pipe();
        drop(b);
        let err = send_ranges(
            vec![Box::new(a)],
            &dsi,
            &user,
            "/missing",
            &[(0, 100)],
            64,
            &Progress::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no such file") || err.to_string().contains("data"));
    }
}
