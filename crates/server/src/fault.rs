//! Fault injection: kill a transfer after N payload bytes.
//!
//! Experiment E9 reproduces Fig 6's recovery story: "If any failure
//! occurs during the transfer, Globus Online will use the short-term
//! certificate to reauthenticate with the endpoints on the user's behalf
//! and restart the transfer from the last checkpoint." The injector
//! models a mid-transfer server/network crash: it fires once, the
//! transfer's data connections die, and the *retry* sails through.

use ig_xio::Link;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// A one-shot byte-budget fault.
pub struct FaultInjector {
    remaining: AtomicI64,
    armed: AtomicBool,
    fired: AtomicBool,
}

impl FaultInjector {
    /// Fail the first send that pushes the cumulative payload past
    /// `after_bytes`.
    pub fn after_bytes(after_bytes: u64) -> Arc<Self> {
        Arc::new(FaultInjector {
            remaining: AtomicI64::new(after_bytes as i64),
            armed: AtomicBool::new(true),
            fired: AtomicBool::new(false),
        })
    }

    /// Account `n` bytes; `true` means "fail now".
    pub fn should_fail(&self, n: usize) -> bool {
        if !self.armed.load(Ordering::SeqCst) {
            return false;
        }
        // Saturate at zero: with `fetch_sub` the counter kept falling and
        // could wrap past i64::MIN under sustained traffic, resurrecting
        // a spent fault; `n as i64` also went negative for absurd sizes,
        // *growing* the budget. Clamp the charge and pin the counter.
        let charge = i64::try_from(n).unwrap_or(i64::MAX);
        let before = self
            .remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(charge))
            })
            .expect("update closure never fails");
        if before < charge {
            // Only the first crosser fires; everyone else proceeds.
            if self.armed.swap(false, Ordering::SeqCst) {
                self.fired.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    /// Has the fault fired yet?
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// A link wrapper that consults a [`FaultInjector`] on every send.
pub struct FaultLink<L: Link> {
    inner: L,
    injector: Arc<FaultInjector>,
}

impl<L: Link> FaultLink<L> {
    /// Wrap `inner`.
    pub fn new(inner: L, injector: Arc<FaultInjector>) -> Self {
        FaultLink { inner, injector }
    }
}

impl<L: Link> Link for FaultLink<L> {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        if self.injector.should_fail(data.len()) {
            // Simulate the crash: drop the connection underneath us too.
            let _ = self.inner.close();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected fault: connection lost",
            ));
        }
        self.inner.send(data)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.inner.recv()
    }

    fn close(&mut self) -> io::Result<()> {
        self.inner.close()
    }

    fn recv_into(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        self.inner.recv_into(buf)
    }

    fn send_vectored(&mut self, parts: &[io::IoSlice<'_>]) -> io::Result<()> {
        if self.injector.should_fail(parts.iter().map(|p| p.len()).sum()) {
            let _ = self.inner.close();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected fault: connection lost",
            ));
        }
        self.inner.send_vectored(parts)
    }

    fn set_recv_timeout(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.inner.set_recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_xio::pipe;

    #[test]
    fn fires_once_at_budget() {
        let inj = FaultInjector::after_bytes(100);
        let (a, mut b) = pipe();
        let mut f = FaultLink::new(a, Arc::clone(&inj));
        f.send(&[0u8; 60]).unwrap();
        assert!(!inj.fired());
        let err = f.send(&[0u8; 60]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(inj.fired());
        // Peer sees the close.
        assert_eq!(b.recv().unwrap(), vec![0u8; 60]);
        assert!(b.recv().is_err());
    }

    #[test]
    fn subsequent_traffic_passes() {
        let inj = FaultInjector::after_bytes(10);
        // First link takes the hit...
        let (a, _b) = pipe();
        let mut f1 = FaultLink::new(a, Arc::clone(&inj));
        assert!(f1.send(&[0u8; 20]).is_err());
        // ...retry on a fresh link succeeds.
        let (a2, mut b2) = pipe();
        let mut f2 = FaultLink::new(a2, Arc::clone(&inj));
        f2.send(&[0u8; 1000]).unwrap();
        assert_eq!(b2.recv().unwrap().len(), 1000);
    }

    #[test]
    fn zero_budget_fails_immediately() {
        let inj = FaultInjector::after_bytes(0);
        let (a, _b) = pipe();
        let mut f = FaultLink::new(a, inj);
        assert!(f.send(&[1]).is_err());
    }

    #[test]
    fn zero_budget_single_fire_under_contention() {
        // Regression: after_bytes == 0 drives `remaining` negative on the
        // very first account; the old `fetch_sub` accounting kept
        // subtracting from an already-negative counter. The saturating
        // version pins at zero and still fires exactly once across
        // racing streams.
        let inj = FaultInjector::after_bytes(0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let inj = Arc::clone(&inj);
            handles.push(std::thread::spawn(move || {
                let mut fails = 0;
                for _ in 0..1000 {
                    if inj.should_fail(usize::MAX / 2) {
                        fails += 1;
                    }
                }
                fails
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1, "exactly one send should fail");
        assert!(inj.fired());
    }

    #[test]
    fn spent_injector_survives_astronomical_traffic() {
        // Regression: sustained huge accounts after the fire must neither
        // wrap the counter back positive nor re-arm the fault.
        let inj = FaultInjector::after_bytes(1);
        assert!(!inj.should_fail(1)); // exactly at the budget: no fire
        assert!(inj.should_fail(usize::MAX)); // crosses: fires
        for _ in 0..64 {
            assert!(!inj.should_fail(usize::MAX));
        }
        assert!(inj.fired());
    }

    #[test]
    fn only_one_stream_fires_under_contention() {
        let inj = FaultInjector::after_bytes(1000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let inj = Arc::clone(&inj);
            handles.push(std::thread::spawn(move || {
                let mut fails = 0;
                for _ in 0..100 {
                    if inj.should_fail(64) {
                        fails += 1;
                    }
                }
                fails
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1, "exactly one send should fail");
    }
}
