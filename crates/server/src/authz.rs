//! Authorization callouts: validated identity → local account.
//!
//! §IIC: "an authorization callout is invoked to verify authorization and
//! determine the local user id for which the request should be executed.
//! This callout is linked dynamically." Two callouts matter to the paper:
//!
//! * [`GridmapAuthz`] — the conventional gridmap file, "a frequent
//!   source of errors and complaints" (§IV-C);
//! * [`GcmuAuthz`] — GCMU's replacement: "picks up the local user id
//!   from the certificate subject if the certificate is signed by the
//!   local MyProxy Online CA", so "there is no need to maintain an
//!   explicit DN to username mapping".

use crate::error::{Result, ServerError};
use ig_pki::validate::ValidatedIdentity;
use ig_pki::Gridmap;
use parking_lot::RwLock;

/// A pluggable identity → local-account mapping.
pub trait AuthzCallout: Send + Sync {
    /// Map a validated identity to a local username, or refuse.
    fn authorize(&self, identity: &ValidatedIdentity) -> Result<String>;

    /// Human-readable name for diagnostics and the E8 ledger.
    fn name(&self) -> &'static str;
}

/// Classic gridmap-file authorization.
pub struct GridmapAuthz {
    gridmap: RwLock<Gridmap>,
}

impl GridmapAuthz {
    /// Wrap a gridmap.
    pub fn new(gridmap: Gridmap) -> Self {
        GridmapAuthz { gridmap: RwLock::new(gridmap) }
    }

    /// Admin adds a mapping (conventional step (h) — counted by E8).
    pub fn add_mapping(&self, dn: &ig_pki::DistinguishedName, user: &str) {
        self.gridmap.write().add(dn, user);
    }

    /// Current entry count (per-user admin burden metric).
    pub fn entries(&self) -> usize {
        self.gridmap.read().len()
    }
}

impl AuthzCallout for GridmapAuthz {
    fn authorize(&self, identity: &ValidatedIdentity) -> Result<String> {
        self.gridmap
            .read()
            .lookup(&identity.identity)
            .map(str::to_string)
            .map_err(|e| ServerError::AuthzFailed(e.to_string()))
    }

    fn name(&self) -> &'static str {
        "gridmap"
    }
}

/// GCMU's callout: trust the DN minted by the local online CA.
pub struct GcmuAuthz {
    /// This endpoint's hostname; only certificates minted by *this*
    /// endpoint's online CA are mapped (§IV: "this certificate will be
    /// used to authenticate with this site only").
    endpoint: String,
}

impl GcmuAuthz {
    /// Callout for the given endpoint hostname.
    pub fn new(endpoint: &str) -> Self {
        GcmuAuthz { endpoint: endpoint.to_string() }
    }
}

impl AuthzCallout for GcmuAuthz {
    fn authorize(&self, identity: &ValidatedIdentity) -> Result<String> {
        match identity.online_ca_endpoint.as_deref() {
            Some(ep) if ep == self.endpoint => {
                identity.identity.common_name().map(str::to_string).ok_or_else(|| {
                    ServerError::AuthzFailed(format!(
                        "online-CA certificate {} has no CN",
                        identity.identity
                    ))
                })
            }
            Some(other) => Err(ServerError::AuthzFailed(format!(
                "certificate was minted by online CA of {other}, not {}",
                self.endpoint
            ))),
            None => Err(ServerError::AuthzFailed(
                "certificate was not issued by the local online CA".into(),
            )),
        }
    }

    fn name(&self) -> &'static str {
        "gcmu-dn"
    }
}

/// Try callouts in order; first success wins (GCMU deployments keep a
/// gridmap fallback for legacy certificates).
pub struct ChainAuthz {
    callouts: Vec<Box<dyn AuthzCallout>>,
}

impl ChainAuthz {
    /// Build from an ordered list.
    pub fn new(callouts: Vec<Box<dyn AuthzCallout>>) -> Self {
        ChainAuthz { callouts }
    }
}

impl AuthzCallout for ChainAuthz {
    fn authorize(&self, identity: &ValidatedIdentity) -> Result<String> {
        let mut last = None;
        for c in &self.callouts {
            match c.authorize(identity) {
                Ok(user) => return Ok(user),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| ServerError::AuthzFailed("no callouts configured".into())))
    }

    fn name(&self) -> &'static str {
        "chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_pki::DistinguishedName;

    fn identity(dn: &str, endpoint: Option<&str>) -> ValidatedIdentity {
        let d = DistinguishedName::parse(dn).unwrap();
        ValidatedIdentity {
            subject: d.clone(),
            identity: d,
            anchor: DistinguishedName::parse("/O=CA").unwrap(),
            online_ca_endpoint: endpoint.map(str::to_string),
        }
    }

    #[test]
    fn gridmap_maps_known_rejects_unknown() {
        let mut g = Gridmap::new();
        g.add(&DistinguishedName::parse("/O=Grid/CN=Alice Smith").unwrap(), "asmith");
        let authz = GridmapAuthz::new(g);
        assert_eq!(
            authz.authorize(&identity("/O=Grid/CN=Alice Smith", None)).unwrap(),
            "asmith"
        );
        // The paper's stale-gridmap failure.
        let err = authz.authorize(&identity("/O=Grid/CN=New User", None)).unwrap_err();
        assert!(matches!(err, ServerError::AuthzFailed(_)));
        assert_eq!(authz.entries(), 1);
        authz.add_mapping(&DistinguishedName::parse("/O=Grid/CN=New User").unwrap(), "newu");
        assert_eq!(authz.entries(), 2);
        assert_eq!(authz.name(), "gridmap");
    }

    #[test]
    fn gcmu_parses_cn_from_local_online_ca() {
        let authz = GcmuAuthz::new("cluster.example.org");
        // No gridmap entry needed — the DN carries the username.
        assert_eq!(
            authz
                .authorize(&identity(
                    "/O=GCMU/OU=cluster.example.org/CN=alice",
                    Some("cluster.example.org")
                ))
                .unwrap(),
            "alice"
        );
    }

    #[test]
    fn gcmu_rejects_foreign_and_offline_certs() {
        let authz = GcmuAuthz::new("cluster.example.org");
        // Cert from another endpoint's online CA.
        assert!(authz
            .authorize(&identity("/O=GCMU/OU=other/CN=alice", Some("other.example.org")))
            .is_err());
        // Conventional CA cert without the marker.
        assert!(authz.authorize(&identity("/O=Grid/CN=alice", None)).is_err());
        assert_eq!(authz.name(), "gcmu-dn");
    }

    #[test]
    fn chain_falls_back() {
        let mut g = Gridmap::new();
        g.add(&DistinguishedName::parse("/O=Legacy/CN=Old User").unwrap(), "olduser");
        let chain = ChainAuthz::new(vec![
            Box::new(GcmuAuthz::new("ep.example.org")),
            Box::new(GridmapAuthz::new(g)),
        ]);
        // GCMU path.
        assert_eq!(
            chain
                .authorize(&identity("/O=GCMU/OU=ep/CN=bob", Some("ep.example.org")))
                .unwrap(),
            "bob"
        );
        // Legacy gridmap path.
        assert_eq!(
            chain.authorize(&identity("/O=Legacy/CN=Old User", None)).unwrap(),
            "olduser"
        );
        // Neither.
        assert!(chain.authorize(&identity("/O=Nowhere/CN=x", None)).is_err());
    }

    #[test]
    fn empty_chain_rejects() {
        let chain = ChainAuthz::new(vec![]);
        assert!(chain.authorize(&identity("/CN=x", None)).is_err());
    }
}
