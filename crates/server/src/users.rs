//! Local user accounts and the session's user confinement.
//!
//! The real server "does a setuid to the local user id as determined by
//! the authorization callout" (§IIC). We reproduce the observable effect:
//! every DSI call carries a [`UserContext`] and the DSI enforces that the
//! session only touches paths inside that user's home tree.

use crate::error::{Result, ServerError};
use std::borrow::Cow;

/// Is `path` already in normal form (absolute, no empty/`.`/`..`
/// components, no trailing slash except the root itself)?
fn is_normal(path: &str) -> bool {
    if path == "/" {
        return true;
    }
    path.starts_with('/')
        && !path.ends_with('/')
        && path[1..].split('/').all(|c| !c.is_empty() && c != "." && c != "..")
}

/// Is a normalized `path` equal to or beneath `home` (itself normalized,
/// no trailing slash)?
fn within(path: &str, home: &str) -> bool {
    path == home
        || (path.len() > home.len()
            && path.starts_with(home)
            && path.as_bytes()[home.len()] == b'/')
}

/// The local identity a session runs as after authorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserContext {
    /// Local account name.
    pub username: String,
    /// Home directory (absolute, normalized, no trailing slash except root).
    pub home: String,
}

impl UserContext {
    /// A normal user confined to `/home/<username>`.
    pub fn user(username: &str) -> Self {
        UserContext { username: username.to_string(), home: format!("/home/{username}") }
    }

    /// An unconfined context (tests, single-user servers).
    pub fn superuser() -> Self {
        UserContext { username: "root".to_string(), home: "/".to_string() }
    }

    /// Normalize a path: resolve `.`/`..`, collapse slashes; relative
    /// paths are resolved against the home directory.
    ///
    /// # Errors
    /// Rejects paths whose `..` escape the filesystem root.
    pub fn normalize(&self, path: &str) -> Result<String> {
        let absolute = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("{}/{}", self.home.trim_end_matches('/'), path)
        };
        let mut stack: Vec<&str> = Vec::new();
        for comp in absolute.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    if stack.pop().is_none() {
                        return Err(ServerError::AccessDenied(format!(
                            "path {path:?} escapes the root"
                        )));
                    }
                }
                c => stack.push(c),
            }
        }
        Ok(format!("/{}", stack.join("/")))
    }

    /// Normalize and confine: the resulting path must be inside `home`.
    pub fn resolve(&self, path: &str) -> Result<String> {
        Ok(self.resolve_ref(path)?.into_owned())
    }

    /// Like [`UserContext::resolve`], but borrows the input when it is
    /// already in normal form. The per-block DSI write path resolves the
    /// same destination path for every block; this keeps that resolution
    /// allocation-free in the steady state.
    pub fn resolve_ref<'a>(&self, path: &'a str) -> Result<Cow<'a, str>> {
        let normalized: Cow<'a, str> = if is_normal(path) {
            Cow::Borrowed(path)
        } else {
            Cow::Owned(self.normalize(path)?)
        };
        if self.home == "/" {
            return Ok(normalized);
        }
        if within(&normalized, self.home.trim_end_matches('/')) {
            Ok(normalized)
        } else {
            Err(ServerError::AccessDenied(format!(
                "user {} may not access {normalized} (home {})",
                self.username, self.home
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        let u = UserContext::user("alice");
        assert_eq!(u.normalize("/a/b/c").unwrap(), "/a/b/c");
        assert_eq!(u.normalize("/a//b/./c/").unwrap(), "/a/b/c");
        assert_eq!(u.normalize("/a/b/../c").unwrap(), "/a/c");
        assert_eq!(u.normalize("relative.txt").unwrap(), "/home/alice/relative.txt");
        assert_eq!(u.normalize("/").unwrap(), "/");
        assert!(u.normalize("/../etc").is_err());
    }

    #[test]
    fn confinement() {
        let u = UserContext::user("alice");
        assert_eq!(u.resolve("/home/alice/data.txt").unwrap(), "/home/alice/data.txt");
        assert_eq!(u.resolve("x/y.txt").unwrap(), "/home/alice/x/y.txt");
        assert_eq!(u.resolve("/home/alice").unwrap(), "/home/alice");
        // Escapes rejected.
        assert!(u.resolve("/home/bob/secret").is_err());
        assert!(u.resolve("/etc/passwd").is_err());
        assert!(u.resolve("/home/alice/../bob/x").is_err());
        // Prefix trickery rejected.
        assert!(u.resolve("/home/alicefake/x").is_err());
    }

    #[test]
    fn resolve_ref_borrows_normal_paths() {
        use std::borrow::Cow;
        let u = UserContext::user("alice");
        // Already-normalized paths come back borrowed (no allocation).
        assert!(matches!(u.resolve_ref("/home/alice/data.txt"), Ok(Cow::Borrowed(_))));
        assert!(matches!(UserContext::superuser().resolve_ref("/"), Ok(Cow::Borrowed("/"))));
        // Anything needing normalization is owned, with identical results.
        for p in ["x/y.txt", "/home/alice//x/./y", "/home/alice/x/"] {
            assert_eq!(u.resolve_ref(p).unwrap(), u.resolve(p).unwrap());
            assert!(matches!(u.resolve_ref(p), Ok(Cow::Owned(_))));
        }
        // The fast path still confines.
        assert!(u.resolve_ref("/home/bob/secret").is_err());
        assert!(u.resolve_ref("/home/alicefake/x").is_err());
    }

    #[test]
    fn superuser_unconfined() {
        let root = UserContext::superuser();
        assert_eq!(root.resolve("/anything/at/all").unwrap(), "/anything/at/all");
        assert_eq!(root.resolve("rel").unwrap(), "/rel");
    }
}
