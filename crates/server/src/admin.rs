//! The operator surface: a local unix-socket admin plane.
//!
//! A hosted fleet endpoint (§VI) is operated, not just run: operators
//! need live metrics, a view of who is connected, a way to retire an
//! instance without losing acknowledged bytes, and a way to adjust
//! tunables without a restart. This module is that surface, served on a
//! mode-`0600` unix socket ([`ig_xio::UdsListener`]) next to the
//! daemon:
//!
//! * **Authentication** is the kernel's: `SO_PEERCRED` must report the
//!   configured UID (default: this process's euid) or the connection is
//!   dropped *before a single byte is read*.
//! * **Handshake** is one text line each way (`IGADMIN 1\n` →
//!   `IGADMIN 1 OK\n`), so a version mismatch fails fast and legibly.
//! * **Framing** after the handshake is the control channel's own
//!   4-byte big-endian length prefix ([`ig_xio::FrameBuf`]), one JSON
//!   object per frame in both directions, capped at
//!   [`ADMIN_MAX_FRAME`].
//!
//! Commands: `metrics` (the same serialized snapshot `SITE STATS`
//! serves — one serializer, two surfaces), `sessions` (live session
//! index), `trace` (cursor-bounded stable-trace streaming, optionally
//! `follow`ing), `drain` (graceful retirement), `reload` (validated
//! tunable hot-swap), `limits` (per-tenant scheduler adjustment).
//!
//! The admin plane records metrics (`admin.requests`,
//! `admin.rejected_uid`, `admin.rtt_ns`) and *unstable* trace events
//! only — like the reactor, it must never perturb the stable trace
//! stream it is itself exporting, or `trace follow` would fail the
//! replay byte-identity gate by observing itself.

/// Hook the admin plane uses to adjust a fair-share scheduler at
/// runtime (`limits set`). Implemented by `ig-gol`'s `FairScheduler`;
/// defined here so `ig-server` needs no dependency on the scheduler
/// crate.
pub trait SchedulerControl: Send + Sync {
    /// Reconfigure an *existing* tenant's share. Unknown tenants are a
    /// typed error string (`unknown tenant ...`), not a silent create —
    /// an admin typo must not mint a tenant.
    fn set_limits(
        &self,
        tenant: &str,
        weight: u32,
        rate_per_s: Option<f64>,
        burst: f64,
        queue_cap: usize,
    ) -> std::result::Result<(), String>;

    /// JSON array describing every tenant's share and queue state.
    fn tenants_json(&self) -> String;
}

/// Admin protocol version spoken by this build.
pub const ADMIN_PROTO_VERSION: u32 = 1;

/// Cap on a single admin frame, both directions. Far below the control
/// channel's `MAX_FRAME`: admin requests are small JSON objects, and a
/// huge announced length is an attack or a bug either way.
pub const ADMIN_MAX_FRAME: usize = 1024 * 1024;

pub mod wire {
    //! Minimal JSON for the admin wire format.
    //!
    //! `ig-server` deliberately has no serde dependency (see
    //! `ig-obs::json` for the emission half); admin requests are small
    //! and their grammar is fixed, so parsing is a ~100-line recursive
    //! descent kept next to the protocol it serves. Public because the
    //! admin client example and the integration tests speak the same
    //! wire format.

    /// A parsed JSON value. Numbers are `f64` (admin payloads carry
    /// cursors and sizes well below 2^53).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number.
        Num(f64),
        /// String (unescaped).
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object, insertion-ordered.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => {
                    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        /// String payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Non-negative integral payload.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        /// Float payload.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// Bool payload.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at offset {pos}", pos = *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
            Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
            Some(b'"') => parse_string(b, pos).map(Json::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    let value = parse_value(b, pos)?;
                    fields.push((key, value));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            Some(c) => Err(format!("unexpected byte {c:#04x} at offset {}", *pos)),
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at offset {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", *pos))?;
                            // Surrogate pairs are not in the admin
                            // grammar; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| format!("bad codepoint at {}", *pos))?;
                            out.push(c);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences
                    // have no bytes < 0x80, so no escape collision).
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| format!("invalid utf-8 at offset {}", *pos))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_admin_shapes() {
            let v = parse(
                "{\"cmd\":\"reload\",\"set\":{\"block_size\":4096,\
                 \"stripe_rate\":null,\"data_chaos_armed\":true}}",
            )
            .unwrap();
            assert_eq!(v.get("cmd").and_then(Json::as_str), Some("reload"));
            let set = v.get("set").unwrap();
            assert_eq!(set.get("block_size").and_then(Json::as_u64), Some(4096));
            assert_eq!(set.get("stripe_rate"), Some(&Json::Null));
            assert_eq!(set.get("data_chaos_armed").and_then(Json::as_bool), Some(true));
        }

        #[test]
        fn roundtrips_escapes() {
            let v = parse("{\"s\":\"a\\\"b\\\\c\\nd\\u00e9\"}").unwrap();
            assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd\u{e9}"));
        }

        #[test]
        fn rejects_garbage() {
            assert!(parse("{").is_err());
            assert!(parse("{\"a\":}").is_err());
            assert!(parse("[1,2,]").is_err());
            assert!(parse("123 456").is_err());
            assert!(parse("1e999").is_err(), "non-finite numbers rejected");
        }

        #[test]
        fn nested_arrays_and_numbers() {
            let v = parse("[0, -1.5, [true, null], {\"k\":[]}]").unwrap();
            match v {
                Json::Arr(items) => {
                    assert_eq!(items.len(), 4);
                    assert_eq!(items[1].as_f64(), Some(-1.5));
                }
                other => panic!("expected array, got {other:?}"),
            }
        }
    }
}

#[cfg(target_os = "linux")]
pub use plane::spawn_admin;

#[cfg(target_os = "linux")]
mod plane {
    use super::wire::{self, Json};
    use super::{SchedulerControl, ADMIN_MAX_FRAME, ADMIN_PROTO_VERSION};
    use crate::config::ServerConfig;
    use crate::error::{Result, ServerError};
    use crate::listener::GridFtpServer;
    use crate::tunables::{tunables_json, TunableValue};
    use crate::usage::stats_json;
    use ig_obs::json::{escape_str_into, kv};
    use ig_xio::{FrameBuf, UdsListener};
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Weak};
    use std::time::{Duration, Instant};

    /// Poll interval for the nonblocking accept loop and the trace
    /// follow stream.
    const POLL: Duration = Duration::from_millis(20);

    /// Spawn the admin listener thread for `server`. Holds only a
    /// `Weak` back-reference, so the admin plane can never keep a
    /// dropped server alive; it exits when the server stops.
    pub fn spawn_admin(server: &Arc<GridFtpServer>) -> Result<()> {
        let config = Arc::clone(server.config_arc());
        let path = config
            .admin_socket
            .clone()
            .expect("spawn_admin called without admin_socket configured");
        let listener = UdsListener::bind_private(&path)
            .map_err(|e| ServerError::Spawn(format!("admin socket {}: {e}", path.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServerError::Spawn(format!("admin socket: {e}")))?;
        let allowed_uid = config.admin_uid.unwrap_or_else(ig_xio::uds::process_euid);
        let weak = Arc::downgrade(server);
        let stop = server.stop_flag();
        std::thread::Builder::new()
            .name("ig-admin".into())
            .spawn(move || accept_loop(listener, config, weak, stop, allowed_uid))
            .map_err(|e| ServerError::Spawn(format!("admin thread: {e}")))?;
        Ok(())
    }

    fn accept_loop(
        listener: UdsListener,
        config: Arc<ServerConfig>,
        weak: Weak<GridFtpServer>,
        stop: Arc<AtomicBool>,
        allowed_uid: u32,
    ) {
        let rejected = config.obs.metrics().counter("admin.rejected_uid");
        while !stop.load(Ordering::SeqCst) && weak.strong_count() > 0 {
            match listener.accept() {
                Ok((stream, uid)) => {
                    // The peer-credential gate: enforced before any byte
                    // of the connection is read or parsed.
                    if uid != allowed_uid {
                        rejected.inc();
                        drop(stream);
                        continue;
                    }
                    let config = Arc::clone(&config);
                    let weak = weak.clone();
                    let stop = Arc::clone(&stop);
                    let _ = std::thread::Builder::new()
                        .name("ig-admin-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, config, weak, stop);
                        });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // UdsListener drop unlinks the socket file.
    }

    /// Read the one-line client hello, bounded at 64 bytes.
    fn read_hello(stream: &mut UnixStream) -> std::io::Result<String> {
        let mut line = Vec::with_capacity(16);
        let mut byte = [0u8; 1];
        while line.len() < 64 {
            match stream.read(&mut byte) {
                Ok(0) => break,
                Ok(_) if byte[0] == b'\n' => {
                    return Ok(String::from_utf8_lossy(&line).into_owned())
                }
                Ok(_) => line.push(byte[0]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "admin hello missing or oversized",
        ))
    }

    fn serve_connection(
        mut stream: UnixStream,
        config: Arc<ServerConfig>,
        weak: Weak<GridFtpServer>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<()> {
        // Version handshake: one text line each way, then framed JSON.
        let hello = read_hello(&mut stream)?;
        let ours = format!("IGADMIN {ADMIN_PROTO_VERSION}");
        if hello.trim() != ours {
            stream.write_all(format!("{ours} ERR version-mismatch\n").as_bytes())?;
            return Ok(());
        }
        stream.write_all(format!("{ours} OK\n").as_bytes())?;

        let requests = config.obs.metrics().counter("admin.requests");
        let rtt = config.obs.metrics().histogram("admin.rtt_ns");
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        let mut inbuf = FrameBuf::new();
        let mut chunk = [0u8; 4096];
        loop {
            if stop.load(Ordering::SeqCst) && inbuf.pending() == 0 {
                return Ok(());
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // peer closed
                Ok(n) => inbuf.push(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            loop {
                let frame = match inbuf.next_frame() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    // Announced length beyond the control-channel cap:
                    // protocol violation, drop the connection.
                    Err(e) => return Err(e),
                };
                if frame.len() > ADMIN_MAX_FRAME {
                    send_frame(&mut stream, &err_reply("frame-too-large", ""))?;
                    return Ok(());
                }
                let started = Instant::now();
                requests.inc();
                let keep_going =
                    dispatch(&frame, &mut stream, &config, &weak, &stop)?;
                let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                rtt.record(elapsed);
                if !keep_going {
                    return Ok(());
                }
            }
        }
    }

    fn send_frame(stream: &mut UnixStream, payload: &str) -> std::io::Result<()> {
        stream.write_all(&FrameBuf::encode(payload.as_bytes()))
    }

    fn err_reply(code: &str, detail: &str) -> String {
        let mut out = String::from("{\"ok\":false,\"error\":");
        escape_str_into(&mut out, code);
        if !detail.is_empty() {
            out.push_str(",\"detail\":");
            escape_str_into(&mut out, detail);
        }
        out.push('}');
        out
    }

    /// Handle one request frame. Returns `false` when the connection
    /// should close after the reply.
    fn dispatch(
        frame: &[u8],
        stream: &mut UnixStream,
        config: &Arc<ServerConfig>,
        weak: &Weak<GridFtpServer>,
        stop: &Arc<AtomicBool>,
    ) -> std::io::Result<bool> {
        let text = match std::str::from_utf8(frame) {
            Ok(t) => t,
            Err(_) => {
                send_frame(stream, &err_reply("bad-request", "frame is not utf-8"))?;
                return Ok(true);
            }
        };
        let req = match wire::parse(text) {
            Ok(v) => v,
            Err(e) => {
                send_frame(stream, &err_reply("bad-request", &e))?;
                return Ok(true);
            }
        };
        let cmd = req.get("cmd").and_then(Json::as_str).unwrap_or("").to_string();
        config.obs.event_unstable("admin.cmd", vec![kv("verb", cmd.as_str())]);
        match cmd.as_str() {
            "metrics" => {
                let mut out = String::from("{\"ok\":true,\"stats\":");
                out.push_str(&stats_json(
                    config.obs.component(),
                    config.core.label(),
                    &config.usage,
                    config.obs.metrics(),
                ));
                out.push('}');
                send_frame(stream, &out)?;
                Ok(true)
            }
            "sessions" => {
                let mut out = String::from("{\"ok\":true,\"active\":");
                out.push_str(&config.sessions.len().to_string());
                out.push_str(",\"sessions\":");
                out.push_str(&config.sessions.snapshot_json());
                out.push('}');
                send_frame(stream, &out)?;
                Ok(true)
            }
            "trace" => {
                let since = req.get("since").and_then(Json::as_u64).unwrap_or(0);
                let follow = req.get("follow").and_then(Json::as_bool).unwrap_or(false);
                let max_ms =
                    req.get("max_ms").and_then(Json::as_u64).unwrap_or(1000).min(60_000);
                serve_trace(stream, config, stop, since, follow, max_ms)?;
                Ok(true)
            }
            "drain" => {
                let deadline_ms =
                    req.get("deadline_ms").and_then(Json::as_u64).unwrap_or(5000);
                let Some(server) = weak.upgrade() else {
                    send_frame(stream, &err_reply("server-gone", ""))?;
                    return Ok(false);
                };
                let report = server.drain(Duration::from_millis(deadline_ms));
                let mut out = String::from("{\"ok\":true,\"drained\":true,\"already\":");
                out.push_str(if report.already { "true" } else { "false" });
                out.push_str(",\"clean\":");
                out.push_str(if report.clean { "true" } else { "false" });
                out.push_str(",\"waited_ms\":");
                out.push_str(&report.waited_ms.to_string());
                out.push_str(",\"transfers_interrupted\":");
                out.push_str(&report.transfers_interrupted.to_string());
                out.push('}');
                send_frame(stream, &out)?;
                Ok(true)
            }
            "reload" => {
                let Some(Json::Obj(fields)) = req.get("set") else {
                    send_frame(stream, &err_reply("bad-request", "missing \"set\" object"))?;
                    return Ok(true);
                };
                let mut updates = Vec::with_capacity(fields.len());
                for (name, value) in fields {
                    let tv = match value {
                        Json::Null => TunableValue::Null,
                        Json::Bool(b) => TunableValue::Bool(*b),
                        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {
                            TunableValue::U64(*n as u64)
                        }
                        Json::Num(n) => TunableValue::F64(*n),
                        _ => {
                            send_frame(
                                stream,
                                &err_reply("invalid-value", &format!("field {name:?}")),
                            )?;
                            return Ok(true);
                        }
                    };
                    updates.push((name.clone(), tv));
                }
                match config.reload(&updates) {
                    Ok(active) => {
                        let mut out = String::from("{\"ok\":true,\"tunables\":");
                        out.push_str(&tunables_json(&active));
                        out.push('}');
                        send_frame(stream, &out)?;
                    }
                    Err(e) => {
                        let mut out = String::from("{\"ok\":false,\"error\":");
                        escape_str_into(&mut out, e.code());
                        out.push_str(",\"field\":");
                        escape_str_into(&mut out, e.field());
                        out.push_str(",\"detail\":");
                        escape_str_into(&mut out, &e.to_string());
                        out.push('}');
                        send_frame(stream, &out)?;
                    }
                }
                Ok(true)
            }
            "limits" => {
                let Some(sched) = config.scheduler.as_ref() else {
                    send_frame(stream, &err_reply("no-scheduler", ""))?;
                    return Ok(true);
                };
                match req.get("op").and_then(Json::as_str).unwrap_or("list") {
                    "list" => {
                        let mut out = String::from("{\"ok\":true,\"tenants\":");
                        out.push_str(&sched.tenants_json());
                        out.push('}');
                        send_frame(stream, &out)?;
                    }
                    "set" => {
                        let tenant = req.get("tenant").and_then(Json::as_str);
                        let weight = req.get("weight").and_then(Json::as_u64);
                        let queue_cap = req.get("queue_cap").and_then(Json::as_u64);
                        let (Some(tenant), Some(weight), Some(queue_cap)) =
                            (tenant, weight, queue_cap)
                        else {
                            send_frame(
                                stream,
                                &err_reply(
                                    "bad-request",
                                    "limits set needs tenant, weight, queue_cap",
                                ),
                            )?;
                            return Ok(true);
                        };
                        let rate = req.get("rate_per_s").and_then(Json::as_f64);
                        let burst = req.get("burst").and_then(Json::as_f64).unwrap_or(1.0);
                        match sched.set_limits(
                            tenant,
                            weight.min(u64::from(u32::MAX)) as u32,
                            rate,
                            burst,
                            queue_cap as usize,
                        ) {
                            Ok(()) => send_frame(stream, "{\"ok\":true}")?,
                            Err(e) => {
                                send_frame(stream, &err_reply("limits-rejected", &e))?
                            }
                        }
                    }
                    other => send_frame(
                        stream,
                        &err_reply("bad-request", &format!("unknown limits op {other:?}")),
                    )?,
                }
                Ok(true)
            }
            other => {
                send_frame(
                    stream,
                    &err_reply("unknown-command", &format!("no such command {other:?}")),
                )?;
                Ok(true)
            }
        }
    }

    /// One trace chunk as a reply frame. The JSONL payload travels as a
    /// single JSON string so the framing stays one-object-per-frame.
    fn trace_reply(export: &ig_obs::trace::StableExport, done: bool) -> String {
        let mut out = String::with_capacity(export.jsonl.len() + 64);
        out.push_str("{\"ok\":true,\"next\":");
        out.push_str(&export.next.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&export.dropped.to_string());
        out.push_str(",\"done\":");
        out.push_str(if done { "true" } else { "false" });
        out.push_str(",\"jsonl\":");
        escape_str_into(&mut out, &export.jsonl);
        out.push('}');
        out
    }

    fn serve_trace(
        stream: &mut UnixStream,
        config: &Arc<ServerConfig>,
        stop: &Arc<AtomicBool>,
        since: u64,
        follow: bool,
        max_ms: u64,
    ) -> std::io::Result<()> {
        let mut cursor = since;
        if !follow {
            let export = config.obs.export_stable_since(cursor);
            return send_frame(stream, &trace_reply(&export, true));
        }
        // Follow mode: poll the cursor until the window closes or the
        // server stops, emitting a frame per non-empty chunk. The
        // cursor API makes each poll O(new events), not O(buffer).
        let deadline = Instant::now() + Duration::from_millis(max_ms);
        loop {
            let export = config.obs.export_stable_since(cursor);
            let closing =
                Instant::now() >= deadline || stop.load(Ordering::SeqCst);
            if !export.jsonl.is_empty() || export.dropped > 0 || closing {
                cursor = export.next;
                send_frame(stream, &trace_reply(&export, closing))?;
                if closing {
                    return Ok(());
                }
            }
            std::thread::sleep(POLL);
        }
    }
}
