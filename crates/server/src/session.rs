//! The server protocol interpreter (PI): one control-channel session.
//!
//! Message mapping: every inbound [`Link`] message is one command line;
//! every outbound message is one complete (possibly multiline) reply.
//! After `AUTH GSSAPI`/`ADAT` completes, commands arrive inside
//! `ENC`/`MIC` envelopes and replies leave the same way (§IIC: control
//! channel protected by default).

use crate::config::ServerConfig;
use crate::data::{
    connect_transport, maybe_throttle, wrap_accept, wrap_connect, AnyDataListener, DataSecurity,
};
use crate::dtp::{send_dir, send_ranges, Progress, Receiver};
use crate::error::{Result, ServerError};
use crate::usage::TransferRecord;
use crate::users::UserContext;
use ig_crypto::encode::{base64_decode, base64_encode};
use ig_gsi::context::{GsiConfig, SecureContext};
use ig_gsi::delegation::{self, PendingDelegation};
use ig_gsi::handshake::{Acceptor, Step};
use ig_gsi::ProtectionLevel;
use ig_pki::validate::ValidatedIdentity;
use ig_pki::Credential;
use ig_protocol::command::{Command, DcauMode, ModeCode, ProtectedKind};
use ig_protocol::markers::{PerfMarker, RestartMarker};
use ig_protocol::secure_line;
use ig_obs::kv;
use ig_protocol::{dcsc, ByteRanges, HostPort, Reply};
use ig_netsim::CcAlgo;
use ig_xio::{DataTransport, Link, UdpConfig};
use rand::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Marker emission period during transfers.
const MARKER_PERIOD: Duration = Duration::from_millis(50);

pub(crate) enum LoopControl {
    Continue,
    Quit,
}

/// Per-session state.
pub struct Session<R: Rng> {
    config: Arc<ServerConfig>,
    rng: R,
    ctx: Option<SecureContext>,
    acceptor: Option<Acceptor>,
    identity: Option<ValidatedIdentity>,
    user: Option<UserContext>,
    delegated: Option<Credential>,
    pending_deleg: Option<PendingDelegation>,
    dcsc: Option<Credential>,
    mode: ModeCode,
    parallelism: usize,
    prot: ProtectionLevel,
    dcau: DcauMode,
    restart: Option<ByteRanges>,
    /// Declared command-pipelining window (`PIPE <n>`). Both cores
    /// already answer queued commands strictly in order, so the window
    /// is declarative — stored for introspection, echoed in the reply.
    pipe_window: u32,
    listeners: Vec<AnyDataListener>,
    port_targets: Vec<HostPort>,
    /// Data-channel transport for subsequent PASV/SPAS/PORT channels
    /// (`OPTS DATA Transport=<tcp|udp>`).
    data_transport: DataTransport,
    /// Congestion controller for UDP data channels
    /// (`OPTS DATA CC=<reno|cubic|bbr>`).
    data_cc: CcAlgo,
    cwd: String,
    /// The session-lifetime span; command events hang off it.
    span: ig_obs::Span,
    /// Cached handle for the per-command RTT histogram.
    cmd_rtt: Arc<ig_obs::Histogram>,
    /// Handle into the shared [`crate::introspect::SessionIndex`] the
    /// admin `sessions` command snapshots; deregisters on drop.
    ticket: crate::introspect::SessionTicket,
    /// Live-session gauge: +1 in `new`, -1 when this guard drops — one
    /// accounting shared by the threaded and reactor cores. Declared
    /// after `span` on purpose: fields drop in declaration order, so
    /// the span's `span.end` is already in the trace by the time the
    /// gauge reads zero (tests poll the gauge, then export).
    sessions_active: ActiveSessionGuard,
}

/// Decrements `server.sessions_active` when the session is dropped.
struct ActiveSessionGuard(Arc<ig_obs::Gauge>);

impl Drop for ActiveSessionGuard {
    fn drop(&mut self) {
        self.0.add(-1.0);
    }
}

/// Decrements `server.transfers_active` when one transfer's scope ends.
/// The drain state machine polls this gauge to zero, so the guard must
/// cover every exit from a transfer method — including error replies.
struct ActiveTransferGuard(Arc<ig_obs::Gauge>);

impl Drop for ActiveTransferGuard {
    fn drop(&mut self) {
        self.0.add(-1.0);
    }
}

fn send_reply(
    ctx: &mut Option<SecureContext>,
    link: &mut Box<dyn Link>,
    wrap: bool,
    reply: &Reply,
) -> Result<()> {
    let wire = if wrap {
        let ctx = ctx.as_mut().expect("wrap only after auth");
        secure_line::protect_reply(ctx, ProtectedKind::Enc, reply).to_wire()
    } else {
        reply.to_wire()
    };
    link.send(wire.as_bytes())
        .map_err(|e| ServerError::Data(format!("control send: {e}")))
}

/// Run one session to completion over `link`.
pub fn run_session<R: Rng>(
    link: Box<dyn Link>,
    config: Arc<ServerConfig>,
    rng: R,
) -> Result<()> {
    let obs = Arc::clone(&config.obs);
    let out = run_session_inner(link, config, rng);
    obs.dump_if_env();
    out
}

fn run_session_inner<R: Rng>(
    mut link: Box<dyn Link>,
    config: Arc<ServerConfig>,
    rng: R,
) -> Result<()> {
    let mut session = Session::new(config, rng);
    if let Some(idle) = session.config.live().control_idle_timeout {
        let _ = link.set_recv_timeout(Some(idle));
    }
    session.greet(&mut link)?;
    loop {
        let msg = match link.recv() {
            Ok(m) => m,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                // Idle deadline expired: tell the client (best effort)
                // and surface a *typed* timeout instead of parking the
                // session thread forever on a partitioned peer.
                let _ = send_reply(
                    &mut session.ctx,
                    &mut link,
                    false,
                    &Reply::new(421, "Control connection idle too long; closing."),
                );
                return Err(ServerError::Timeout(format!("control channel idle: {e}")));
            }
            Err(_) => return Ok(()), // client went away
        };
        match session.process_message(&mut link, msg)? {
            LoopControl::Continue => {}
            LoopControl::Quit => return Ok(()),
        }
    }
}

impl<R: Rng> Session<R> {
    /// Fresh pre-auth session state. Both server cores build sessions
    /// here so the protocol machine is identical by construction.
    pub(crate) fn new(config: Arc<ServerConfig>, rng: R) -> Session<R> {
        let span = config.obs.span("session", vec![kv("endpoint", config.name.as_str())]);
        let cmd_rtt = config.obs.metrics().histogram("server.cmd_rtt_ns");
        let sessions_active = config.obs.metrics().gauge("server.sessions_active");
        sessions_active.add(1.0);
        let sessions_active = ActiveSessionGuard(sessions_active);
        let ticket = config.sessions.register();
        let udp_cc = config.udp_cc;
        Session {
            config,
            rng,
            ctx: None,
            acceptor: None,
            identity: None,
            user: None,
            delegated: None,
            pending_deleg: None,
            dcsc: None,
            mode: ModeCode::Stream,
            parallelism: 1,
            prot: ProtectionLevel::Clear,
            dcau: DcauMode::Self_,
            restart: None,
            pipe_window: 1,
            data_transport: DataTransport::Tcp,
            data_cc: udp_cc,
            listeners: Vec::new(),
            port_targets: Vec::new(),
            cwd: "/".to_string(),
            span,
            cmd_rtt,
            ticket,
            sessions_active,
        }
    }

    /// Send the 220 service-ready banner (always unwrapped).
    pub(crate) fn greet(&mut self, link: &mut Box<dyn Link>) -> Result<()> {
        let banner = Reply::service_ready(&self.config.banner);
        send_reply(&mut self.ctx, link, false, &banner)
    }

    /// One resumable step of the protocol machine: decode a complete
    /// inbound message, dispatch it, and write the reply to `link`.
    /// The threaded core calls this from its blocking recv loop; the
    /// reactor core calls it from a pool worker with a frame the event
    /// loop buffered. An `Err` is session-fatal and has already sent
    /// the 421 (best effort).
    pub(crate) fn process_message(
        &mut self,
        link: &mut Box<dyn Link>,
        msg: Vec<u8>,
    ) -> Result<LoopControl> {
        let line = match String::from_utf8(msg) {
            Ok(l) => l,
            Err(_) => {
                send_reply(
                    &mut self.ctx,
                    link,
                    false,
                    &Reply::syntax_error("Command not UTF-8."),
                )?;
                return Ok(LoopControl::Continue);
            }
        };
        let parsed = Command::parse(&line);
        let cmd = match parsed {
            Ok(c) => c,
            Err(e) => {
                send_reply(
                    &mut self.ctx,
                    link,
                    false,
                    &Reply::syntax_error(&format!("Syntax error: {e}")),
                )?;
                return Ok(LoopControl::Continue);
            }
        };
        // Unwrap RFC 2228 envelopes.
        let (cmd, wrapped) = match &cmd {
            Command::Protected { .. } => {
                if self.ctx.is_none() {
                    send_reply(
                        &mut self.ctx,
                        link,
                        false,
                        &Reply::new(503, "Protected commands require completed AUTH."),
                    )?;
                    return Ok(LoopControl::Continue);
                }
                let ctx = self.ctx.as_mut().expect("checked above");
                match secure_line::unprotect_command(ctx, &cmd) {
                    Ok(inner) => (inner, true),
                    Err(e) => {
                        send_reply(
                            &mut self.ctx,
                            link,
                            false,
                            &Reply::new(535, format!("Protection error: {e}")),
                        )?;
                        return Ok(LoopControl::Continue);
                    }
                }
            }
            _ => (cmd, false),
        };
        match self.handle(link, cmd, wrapped) {
            Ok(ctl) => Ok(ctl),
            Err(e) => {
                // Session-fatal error: try to notify, then drop.
                let _ = send_reply(
                    &mut self.ctx,
                    link,
                    false,
                    &Reply::new(421, format!("Service error: {e}")),
                );
                Err(e)
            }
        }
    }
    fn reply(&mut self, link: &mut Box<dyn Link>, wrap: bool, reply: Reply) -> Result<()> {
        self.config.obs.metrics().add(&format!("server.reply_{}", reply.code), 1);
        send_reply(&mut self.ctx, link, wrap, &reply)
    }

    fn authed(&self) -> bool {
        self.user.is_some()
    }

    fn resolve_path(&self, path: &str) -> String {
        if path.starts_with('/') {
            path.to_string()
        } else if self.cwd == "/" {
            format!("/{path}")
        } else {
            format!("{}/{path}", self.cwd)
        }
    }

    /// Assemble the data-channel security posture. §V: a DCSC context
    /// replaces both the presented credential and (via its self-signed
    /// chain certs) the accepted trust anchors; `DCSC D` has cleared
    /// `self.dcsc`, falling back to the login (delegated) credential.
    fn data_security(&self) -> DataSecurity {
        let (credential, trust) = match &self.dcsc {
            Some(cred) => (
                Some(cred.clone()),
                self.config.trust.with_extra_roots(cred.chain().iter()),
            ),
            None => (self.delegated.clone(), self.config.trust.clone()),
        };
        DataSecurity {
            dcau: self.dcau.clone(),
            prot: self.prot,
            credential,
            trust,
            clock: self.config.clock,
        }
    }

    /// Dispatch one command, recording a replay-stable `cmd.dispatch`
    /// event on the session span and the command RTT (recv-to-reply on
    /// the server side) in `server.cmd_rtt_ns`.
    fn handle(
        &mut self,
        link: &mut Box<dyn Link>,
        cmd: Command,
        wrap: bool,
    ) -> Result<LoopControl> {
        let verb = cmd.verb();
        self.span.event("cmd.dispatch", vec![kv("verb", verb)]);
        self.ticket.touch(verb);
        self.config.obs.metrics().add("server.commands", 1);
        let t0 = Instant::now();
        let out = self.handle_inner(link, cmd, wrap);
        self.cmd_rtt.record(t0.elapsed().as_nanos() as u64);
        if let Err(e) = &out {
            // Error text can carry addresses/OS details: unstable.
            self.span
                .event_unstable("cmd.error", vec![kv("verb", verb), kv("error", e.to_string())]);
        }
        out
    }

    fn handle_inner(
        &mut self,
        link: &mut Box<dyn Link>,
        cmd: Command,
        wrap: bool,
    ) -> Result<LoopControl> {
        // Commands allowed before authentication.
        match &cmd {
            Command::Quit => {
                self.reply(link, wrap, Reply::goodbye())?;
                return Ok(LoopControl::Quit);
            }
            Command::Noop => {
                self.reply(link, wrap, Reply::ok("NOOP ok."))?;
                return Ok(LoopControl::Continue);
            }
            Command::Feat => {
                let mut lines = vec!["Features:".to_string()];
                for f in [
                    "AUTH GSSAPI",
                    "MODE E",
                    "PARALLEL",
                    "SPAS",
                    "SPOR",
                    "ERET P,DIR",
                    "ESTO DIR",
                    "PIPE",
                    "SIZE",
                    "MLST type*;size*;",
                    "REST STREAM",
                    "CKSM SHA256",
                    "PBSZ",
                    "PROT",
                    "DCAU",
                ] {
                    lines.push(format!(" {f}"));
                }
                if self.config.dcsc_enabled {
                    lines.push(" DCSC P,D".to_string());
                }
                if self.config.udp_enabled {
                    lines.push(" DATA TCP,UDP;CC=RENO,CUBIC,BBR".to_string());
                }
                lines.push("End".to_string());
                self.reply(link, wrap, Reply::multiline(211, lines))?;
                return Ok(LoopControl::Continue);
            }
            Command::Auth(mech) => {
                if mech.to_ascii_uppercase() != "GSSAPI" {
                    self.reply(link, wrap, Reply::new(504, "Only GSSAPI is supported."))?;
                    return Ok(LoopControl::Continue);
                }
                let cfg = GsiConfig {
                    credential: Some(self.config.credential.clone()),
                    trust: self.config.trust.clone(),
                    require_peer_auth: true,
                    clock: self.config.clock,
                    insecure_skip_peer_validation: false,
                };
                match Acceptor::new(cfg) {
                    Ok(a) => {
                        self.acceptor = Some(a);
                        self.reply(link, wrap, Reply::new(334, "Using authentication type GSSAPI; ADAT must follow."))?;
                    }
                    Err(e) => {
                        self.reply(link, wrap, Reply::new(431, format!("Security init failed: {e}")))?;
                    }
                }
                return Ok(LoopControl::Continue);
            }
            Command::Adat(b64) => {
                return self.handle_adat(link, wrap, b64.clone());
            }
            _ => {}
        }
        if !self.authed() {
            self.reply(
                link,
                wrap,
                Reply::not_logged_in("Please authenticate with AUTH GSSAPI first."),
            )?;
            return Ok(LoopControl::Continue);
        }
        // Authenticated command set.
        match cmd {
            Command::User(_) | Command::Pass(_) => {
                self.reply(link, wrap, Reply::new(230, "Already authenticated via GSI."))?;
            }
            Command::Type(_t) => {
                self.reply(link, wrap, Reply::ok("Type set."))?;
            }
            Command::Mode(m) => {
                self.mode = m;
                self.reply(link, wrap, Reply::ok("Mode set."))?;
            }
            Command::Pbsz(_) => {
                self.reply(link, wrap, Reply::ok("PBSZ=0."))?;
            }
            Command::Prot(level) => {
                match ProtectionLevel::from_code(level) {
                    Some(p) => {
                        self.prot = p;
                        self.reply(link, wrap, Reply::ok("Protection level set."))?;
                    }
                    None => {
                        self.reply(link, wrap, Reply::new(536, "Unsupported protection level."))?;
                    }
                }
            }
            Command::Dcau(mode) => {
                self.dcau = mode;
                self.reply(link, wrap, Reply::ok("DCAU set."))?;
            }
            Command::Pipe(n) => {
                if (1..=64).contains(&n) {
                    self.pipe_window = n;
                    let w = self.pipe_window;
                    self.reply(
                        link,
                        wrap,
                        Reply::ok(&format!("Pipelining window {w} accepted; replies stay ordered.")),
                    )?;
                } else {
                    self.reply(link, wrap, Reply::new(501, "PIPE window must be 1..=64."))?;
                }
            }
            Command::Dcsc { context_type, blob } => {
                if !self.config.dcsc_enabled {
                    // The legacy-server behaviour of §IV-B.
                    self.reply(link, wrap, Reply::syntax_error("DCSC not understood."))?;
                    return Ok(LoopControl::Continue);
                }
                match dcsc::interpret(context_type, blob.as_deref()) {
                    Ok(dcsc::DcscAction::Install(cred)) => {
                        self.dcsc = Some(*cred);
                        self.reply(link, wrap, Reply::ok("Data channel security context installed."))?;
                    }
                    Ok(dcsc::DcscAction::RevertToDefault) => {
                        self.dcsc = None;
                        self.reply(link, wrap, Reply::ok("Data channel security context reverted."))?;
                    }
                    Err(e) => {
                        self.reply(link, wrap, Reply::syntax_error(&format!("Bad DCSC: {e}")))?;
                    }
                }
            }
            Command::Opts { ref target, ref params } => {
                if target == "DATA" {
                    return self.handle_opts_data(link, wrap, params.clone());
                }
                if let Some(p) = cmd.parallelism() {
                    self.parallelism = (p as usize).max(1);
                    self.reply(link, wrap, Reply::ok("Parallelism set."))?;
                } else {
                    self.reply(link, wrap, Reply::ok("Option ignored."))?;
                }
            }
            Command::Pasv => {
                self.listeners.clear();
                self.port_targets.clear();
                let udp = self.udp_config();
                let l = AnyDataListener::bind(self.config.data_ip, self.data_transport, &udp)?;
                let addr = l.addr()?;
                self.listeners.push(l);
                self.reply(
                    link,
                    wrap,
                    Reply::new(227, format!("Entering Passive Mode ({addr})")),
                )?;
            }
            Command::Spas => {
                if self.config.stripes < 2 {
                    self.reply(link, wrap, Reply::syntax_error("Server is not striped."))?;
                    return Ok(LoopControl::Continue);
                }
                self.listeners.clear();
                self.port_targets.clear();
                let udp = self.udp_config();
                let mut lines = vec!["Entering Striped Passive Mode".to_string()];
                for _ in 0..self.config.stripes {
                    let l = AnyDataListener::bind(self.config.data_ip, self.data_transport, &udp)?;
                    lines.push(format!(" {}", l.addr()?));
                    self.listeners.push(l);
                }
                self.reply(link, wrap, Reply::multiline(229, lines))?;
            }
            Command::Port(hp) => {
                self.listeners.clear();
                self.port_targets = vec![hp];
                self.reply(link, wrap, Reply::ok("PORT ok."))?;
            }
            Command::Spor(list) => {
                self.listeners.clear();
                self.port_targets = list;
                self.reply(link, wrap, Reply::ok("SPOR ok."))?;
            }
            Command::Rest(marker) => {
                match ByteRanges::parse_marker(&marker) {
                    Ok(r) => {
                        self.restart = Some(r);
                        self.reply(link, wrap, Reply::new(350, "Restart marker accepted."))?;
                    }
                    Err(_) => match marker.parse::<u64>() {
                        Ok(offset) => {
                            let mut r = ByteRanges::new();
                            r.add(0, offset);
                            self.restart = Some(r);
                            self.reply(link, wrap, Reply::new(350, "Restart offset accepted."))?;
                        }
                        Err(_) => {
                            self.reply(link, wrap, Reply::syntax_error("Bad REST marker."))?;
                        }
                    },
                }
            }
            Command::Size(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(&path);
                match self.config.dsi.size(&user, &p) {
                    Ok(s) => self.reply(link, wrap, Reply::new(213, s.to_string()))?,
                    Err(e) => self.reply(link, wrap, Reply::action_failed(&e.to_string()))?,
                }
            }
            Command::Mdtm(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(&path);
                if self.config.dsi.exists(&user, &p) {
                    self.reply(link, wrap, Reply::new(213, self.config.clock.now().to_string()))?;
                } else {
                    self.reply(link, wrap, Reply::action_failed("No such file."))?;
                }
            }
            Command::Dele(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(&path);
                match self.config.dsi.delete(&user, &p) {
                    Ok(()) => self.reply(link, wrap, Reply::new(250, "File deleted."))?,
                    Err(e) => self.reply(link, wrap, Reply::action_failed(&e.to_string()))?,
                }
            }
            Command::Mkd(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(&path);
                match self.config.dsi.mkdir(&user, &p) {
                    Ok(()) => self.reply(link, wrap, Reply::new(257, format!("\"{p}\" created.")))?,
                    Err(e) => self.reply(link, wrap, Reply::action_failed(&e.to_string()))?,
                }
            }
            Command::Rmd(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(&path);
                match self.config.dsi.rmdir(&user, &p) {
                    Ok(()) => self.reply(link, wrap, Reply::new(250, "Directory removed."))?,
                    Err(e) => self.reply(link, wrap, Reply::action_failed(&e.to_string()))?,
                }
            }
            Command::Cwd(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(&path);
                if self.config.dsi.list(&user, &p).is_ok() {
                    self.cwd = p;
                    self.reply(link, wrap, Reply::new(250, "Directory changed."))?;
                } else {
                    self.reply(link, wrap, Reply::action_failed("No such directory."))?;
                }
            }
            Command::Cdup => {
                let parent = match self.cwd.rfind('/') {
                    Some(0) | None => "/".to_string(),
                    Some(i) => self.cwd[..i].to_string(),
                };
                self.cwd = parent;
                self.reply(link, wrap, Reply::new(250, "Directory changed."))?;
            }
            Command::Pwd => {
                let cwd = self.cwd.clone();
                self.reply(link, wrap, Reply::new(257, format!("\"{cwd}\" is the current directory.")))?;
            }
            Command::Mlst(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(path.as_deref().unwrap_or("."));
                match self.config.dsi.size(&user, &p) {
                    Ok(s) => {
                        self.reply(
                            link,
                            wrap,
                            Reply::multiline(
                                250,
                                vec![
                                    "Listing:".into(),
                                    format!(" type=file;size={s}; {p}"),
                                    "End".into(),
                                ],
                            ),
                        )?;
                    }
                    Err(_) => {
                        if self.config.dsi.list(&user, &p).is_ok() {
                            self.reply(
                                link,
                                wrap,
                                Reply::multiline(
                                    250,
                                    vec![
                                        "Listing:".into(),
                                        format!(" type=dir;size=0; {p}"),
                                        "End".into(),
                                    ],
                                ),
                            )?;
                        } else {
                            self.reply(link, wrap, Reply::action_failed("No such path."))?;
                        }
                    }
                }
            }
            Command::List(path) | Command::Nlst(path) | Command::Mlsd(path) => {
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(path.as_deref().unwrap_or("."));
                let entries = match self.config.dsi.list(&user, &p) {
                    Ok(e) => e,
                    Err(e) => {
                        self.reply(link, wrap, Reply::action_failed(&e.to_string()))?;
                        return Ok(LoopControl::Continue);
                    }
                };
                let text: String =
                    entries.iter().map(|e| format!("{}\r\n", e.to_mlsd())).collect();
                self.run_send_transfer(link, wrap, TransferSource::Buffer(text.into_bytes()))?;
            }
            Command::Retr(path) => {
                let p = self.resolve_path(&path);
                self.run_send_transfer(link, wrap, TransferSource::File(p))?;
            }
            Command::Eret { module, args } => match module.to_ascii_uppercase().as_str() {
                // `ERET P <offset>,<length> <path>` — partial file
                // retrieval (the classic GridFTP ERET module).
                "P" => {
                    let Some((range, path)) = args.split_once(' ') else {
                        self.reply(link, wrap, Reply::syntax_error("ERET P needs <offset>,<length> <path>."))?;
                        return Ok(LoopControl::Continue);
                    };
                    let parsed = range.split_once(',').and_then(|(o, l)| {
                        Some((o.trim().parse::<u64>().ok()?, l.trim().parse::<u64>().ok()?))
                    });
                    let Some((offset, length)) = parsed else {
                        self.reply(link, wrap, Reply::syntax_error("Bad ERET P range."))?;
                        return Ok(LoopControl::Continue);
                    };
                    let p = self.resolve_path(path.trim());
                    self.run_send_transfer(link, wrap, TransferSource::Partial { path: p, offset, length })?;
                }
                // `ERET DIR <skip> <path>` — stream the tree under
                // <path> as one directory stream, skipping the first
                // <skip> walk entries (file-granular resume).
                "DIR" => {
                    let Some((skip, path)) = args.split_once(' ') else {
                        self.reply(link, wrap, Reply::syntax_error("ERET DIR needs <skip> <path>."))?;
                        return Ok(LoopControl::Continue);
                    };
                    let Ok(skip) = skip.trim().parse::<u64>() else {
                        self.reply(link, wrap, Reply::syntax_error("Bad ERET DIR skip count."))?;
                        return Ok(LoopControl::Continue);
                    };
                    let p = self.resolve_path(path.trim());
                    self.run_send_transfer(link, wrap, TransferSource::Dir { path: p, skip })?;
                }
                _ => {
                    self.reply(link, wrap, Reply::new(504, "Only the P (partial) and DIR ERET modules are supported."))?;
                }
            },
            Command::Stor(path) => {
                let p = self.resolve_path(&path);
                self.run_receive_transfer(link, wrap, &p)?;
            }
            Command::Esto { module, args } => match module.to_ascii_uppercase().as_str() {
                // `ESTO DIR <path>` — receive a directory stream and
                // expand it under <path>.
                "DIR" => {
                    let p = self.resolve_path(args.trim());
                    self.run_receive_dir(link, wrap, &p)?;
                }
                // Unknown ESTO modules used to fall through to a plain
                // STOR of the args' last token — silently wrong data
                // layout. They are now refused up front.
                _ => {
                    self.reply(link, wrap, Reply::new(504, "Only the DIR ESTO module is supported."))?;
                }
            },
            Command::Allo(_) => {
                self.reply(link, wrap, Reply::ok("ALLO noted."))?;
            }
            Command::Cksm { algorithm, offset, length, path } => {
                if algorithm != "SHA256" {
                    self.reply(link, wrap, Reply::new(504, "Only SHA256 checksums supported."))?;
                    return Ok(LoopControl::Continue);
                }
                let user = self.user.clone().expect("authed");
                let p = self.resolve_path(&path);
                match checksum(self.config.dsi.as_ref(), &user, &p, offset, length) {
                    Ok(hex) => self.reply(link, wrap, Reply::new(213, hex))?,
                    Err(e) => self.reply(link, wrap, Reply::action_failed(&e.to_string()))?,
                }
            }
            Command::Abor => {
                self.reply(link, wrap, Reply::new(226, "No transfer in progress."))?;
            }
            Command::Site(arg) => {
                self.handle_site(link, wrap, &arg)?;
            }
            Command::Unknown { verb, .. } => {
                self.reply(link, wrap, Reply::syntax_error(&format!("Unknown command {verb}.")))?;
            }
            // Already handled above.
            Command::Quit
            | Command::Noop
            | Command::Feat
            | Command::Auth(_)
            | Command::Adat(_)
            | Command::Protected { .. } => unreachable!("handled in pre-auth dispatch"),
        }
        Ok(LoopControl::Continue)
    }

    fn handle_adat(
        &mut self,
        link: &mut Box<dyn Link>,
        wrap: bool,
        b64: String,
    ) -> Result<LoopControl> {
        let Some(acceptor) = self.acceptor.as_mut() else {
            self.reply(link, wrap, Reply::new(503, "ADAT before AUTH."))?;
            return Ok(LoopControl::Continue);
        };
        let token = match base64_decode(&b64) {
            Ok(t) => t,
            Err(e) => {
                self.acceptor = None;
                self.reply(link, wrap, Reply::new(535, format!("Bad ADAT base64: {e}")))?;
                return Ok(LoopControl::Continue);
            }
        };
        match acceptor.step(&token, &mut self.rng) {
            Ok(Step::Send(t)) => {
                self.reply(link, wrap, Reply::adat_continue(&base64_encode(&t)))?;
            }
            Ok(Step::Done(est)) => {
                self.acceptor = None;
                let peer = match est.peer.clone() {
                    Some(p) => p,
                    None => {
                        self.reply(link, wrap, Reply::new(535, "Anonymous clients not allowed."))?;
                        return Ok(LoopControl::Continue);
                    }
                };
                // Authorization callout (Fig 3 step 5).
                match self.config.authz.authorize(&peer) {
                    Ok(local) => {
                        self.ctx = Some(SecureContext::from_established(est));
                        self.user = Some(UserContext::user(&local));
                        self.ticket.set_user(&local);
                        self.cwd = format!("/home/{local}");
                        self.identity = Some(peer);
                        self.reply(link, wrap, Reply::adat_done(None))?;
                    }
                    Err(e) => {
                        self.reply(link, wrap, Reply::new(535, format!("Authorization failed: {e}")))?;
                    }
                }
            }
            Ok(Step::SendAndDone(..)) => {
                self.acceptor = None;
                self.reply(link, wrap, Reply::new(535, "Unexpected handshake state."))?;
            }
            Err(e) => {
                self.acceptor = None;
                self.reply(link, wrap, Reply::new(535, format!("Authentication failed: {e}")))?;
            }
        }
        Ok(LoopControl::Continue)
    }

    fn handle_site(&mut self, link: &mut Box<dyn Link>, wrap: bool, arg: &str) -> Result<()> {
        let mut parts = arg.split_whitespace();
        match (
            parts.next().map(str::to_ascii_uppercase).as_deref(),
            parts.next().map(str::to_ascii_uppercase).as_deref(),
        ) {
            (Some("DELEG"), Some("REQ")) => {
                // Server generates a key + CSR (GSI delegation, §IIC).
                let (req, pending) = delegation::offer(&mut self.rng, self.config.key_bits)
                    .map_err(ServerError::Gsi)?;
                self.pending_deleg = Some(pending);
                self.reply(link, wrap, Reply::new(250, format!("DELEG={}", base64_encode(&req))))
            }
            (Some("DELEG"), Some("PUT")) => {
                let b64 = parts.next().unwrap_or("");
                let Some(pending) = self.pending_deleg.take() else {
                    return self.reply(link, wrap, Reply::new(503, "No delegation in progress."));
                };
                let grant = match base64_decode(b64) {
                    Ok(g) => g,
                    Err(e) => {
                        return self
                            .reply(link, wrap, Reply::syntax_error(&format!("Bad base64: {e}")))
                    }
                };
                match delegation::complete(pending, &grant) {
                    Ok(cred) => {
                        self.delegated = Some(cred);
                        self.reply(link, wrap, Reply::new(250, "Delegation complete."))
                    }
                    Err(e) => {
                        self.reply(link, wrap, Reply::new(535, format!("Delegation failed: {e}")))
                    }
                }
            }
            (Some("STATS"), _) => {
                // Observability surface (§ DESIGN.md 10): one line of JSON
                // holding the usage totals (the E1 pipeline's source) and a
                // snapshot of the same metrics registry every layer records
                // into. Rendered by the same serializer as the admin
                // plane's `metrics` command, so the two surfaces can
                // never drift apart.
                let stats = crate::usage::stats_json(
                    self.config.obs.component(),
                    self.config.core.label(),
                    &self.config.usage,
                    self.config.obs.metrics(),
                );
                self.reply(link, wrap, Reply::new(250, stats))
            }
            _ => self.reply(link, wrap, Reply::ok("SITE command ignored.")),
        }
    }

    /// `OPTS DATA Transport=<tcp|udp>;CC=<reno|cubic|bbr>;` — select the
    /// data-channel transport (and, for UDP, the congestion controller)
    /// for subsequent PASV/SPAS/PORT channels. Keys are
    /// case-insensitive; unknown keys are ignored so clients can probe.
    fn handle_opts_data(
        &mut self,
        link: &mut Box<dyn Link>,
        wrap: bool,
        params: String,
    ) -> Result<LoopControl> {
        let mut transport = self.data_transport;
        let mut cc = self.data_cc;
        for kv in params.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) = match kv.split_once('=') {
                Some(p) => p,
                None => {
                    self.reply(link, wrap, Reply::syntax_error("OPTS DATA expects Key=Value;"))?;
                    return Ok(LoopControl::Continue);
                }
            };
            match key.to_ascii_lowercase().as_str() {
                "transport" => match DataTransport::parse(val) {
                    Some(t) => transport = t,
                    None => {
                        self.reply(
                            link,
                            wrap,
                            Reply::new(501, format!("Unknown transport {val:?} (tcp|udp).")),
                        )?;
                        return Ok(LoopControl::Continue);
                    }
                },
                "cc" => match CcAlgo::parse(val) {
                    Some(a) => cc = a,
                    None => {
                        self.reply(
                            link,
                            wrap,
                            Reply::new(501, format!("Unknown CC {val:?} (reno|cubic|bbr).")),
                        )?;
                        return Ok(LoopControl::Continue);
                    }
                },
                _ => {} // forward-compatible: ignore unknown keys
            }
        }
        if transport == DataTransport::Udp && !self.config.udp_enabled {
            self.reply(link, wrap, Reply::new(504, "UDP data transport disabled on this server."))?;
            return Ok(LoopControl::Continue);
        }
        self.data_transport = transport;
        self.data_cc = cc;
        // A transport change invalidates any channel already negotiated.
        self.listeners.clear();
        self.port_targets.clear();
        self.reply(
            link,
            wrap,
            Reply::ok(&format!(
                "Data transport {} (cc={}).",
                transport.label(),
                cc.label()
            )),
        )?;
        Ok(LoopControl::Continue)
    }

    /// Assemble the per-session UDP driver config: session-selected CC,
    /// server-wide datagram chaos, and the shared obs hub.
    fn udp_config(&self) -> UdpConfig {
        let mut cfg = UdpConfig::default()
            .with_cc(self.data_cc)
            .with_obs(Arc::clone(&self.config.obs))
            .with_stall_timeout(self.config.live().stall_timeout);
        if let Some(chaos) = self.config.udp_chaos {
            cfg = cfg.with_chaos(chaos);
        }
        cfg
    }

    /// Arm the per-transfer accounting: bump `server.transfers_active`
    /// (the gauge the drain state machine polls to zero) and flip the
    /// session's introspection state to `Transfer`. Both roll back when
    /// the returned guards drop, so every exit path — clean, error
    /// reply, or unwind — leaves the books balanced.
    fn begin_transfer(&self) -> (ActiveTransferGuard, crate::introspect::TransferScope) {
        let gauge = self.config.obs.metrics().gauge("server.transfers_active");
        gauge.add(1.0);
        (ActiveTransferGuard(gauge), self.ticket.transfer_scope())
    }

    /// Wrap a fully-established data stream in the configured chaos
    /// hook, if any, then in an [`ig_xio::ObsLink`] recording per-block
    /// DTP latency. Chaos sits above the handshake (faults hit
    /// post-handshake wire traffic; the handshake itself runs clean) and
    /// below the observer, so recorded block latencies include any
    /// chaos-injected delays.
    fn chaosify(&self, stream: Box<dyn Link>) -> Box<dyn Link> {
        let stream = match &self.config.data_chaos {
            Some(hook) => hook.wrap(stream),
            None => stream,
        };
        Box::new(ig_xio::ObsLink::new(stream, Arc::clone(&self.config.obs), "server.dtp"))
    }

    /// Build the data streams for an outgoing (sending) transfer.
    fn open_send_streams(&mut self, sec: &DataSecurity) -> Result<Vec<Box<dyn Link>>> {
        let live = self.config.live();
        let mut streams: Vec<Box<dyn Link>> = Vec::new();
        if !self.port_targets.is_empty() {
            // Active: connect out (we are the sender, the canonical case).
            let udp = self.udp_config();
            for target in self.port_targets.clone() {
                for _ in 0..self.parallelism {
                    let conn = connect_transport(target, self.data_transport, &udp)?;
                    let throttled = maybe_throttle(conn, live.stripe_rate);
                    let secured = wrap_connect(throttled, sec, &mut self.rng)?;
                    streams.push(self.chaosify(secured));
                }
            }
        } else if !self.listeners.is_empty() {
            // Passive sender (two-party GET): accept `parallelism`
            // connections per listener.
            for l in &self.listeners {
                for _ in 0..self.parallelism {
                    let conn = l.accept_link(live.stall_timeout)?;
                    let throttled = maybe_throttle(conn, live.stripe_rate);
                    let secured = wrap_accept(throttled, sec, &mut self.rng)?;
                    streams.push(self.chaosify(secured));
                }
            }
        } else {
            return Err(ServerError::Data("no data channel established (use PASV/PORT)".into()));
        }
        Ok(streams)
    }

    fn run_send_transfer(
        &mut self,
        link: &mut Box<dyn Link>,
        wrap: bool,
        source: TransferSource,
    ) -> Result<()> {
        let user = self.user.clone().expect("authed");
        let sec = self.data_security();
        // Determine ranges before opening data channels.
        let (ranges, total_len) = match &source {
            TransferSource::File(path) => {
                let size = match self.config.dsi.size(&user, path) {
                    Ok(s) => s,
                    Err(e) => {
                        self.reply(link, wrap, Reply::action_failed(&e.to_string()))?;
                        return Ok(());
                    }
                };
                let ranges = match self.restart.take() {
                    // REST semantics for RETR: send only what the ranges say
                    // is still missing (stream offset N = resend [N, size)).
                    Some(have) => have.missing(size),
                    None => vec![(0, size)],
                };
                (ranges, size)
            }
            TransferSource::Partial { path, offset, length } => {
                let size = match self.config.dsi.size(&user, path) {
                    Ok(s) => s,
                    Err(e) => {
                        self.reply(link, wrap, Reply::action_failed(&e.to_string()))?;
                        return Ok(());
                    }
                };
                let start = (*offset).min(size);
                let end = start.saturating_add(*length).min(size);
                (vec![(start, end)], end - start)
            }
            TransferSource::Buffer(buf) => (vec![(0, buf.len() as u64)], buf.len() as u64),
            TransferSource::Dir { path, skip } => {
                // Validate root + skip before the 150 so a bad request
                // fails cheaply, without opening data channels.
                let entries = match crate::dsi::walk(self.config.dsi.as_ref(), &user, path) {
                    Ok(e) => e,
                    Err(e) => {
                        self.reply(link, wrap, Reply::action_failed(&e.to_string()))?;
                        return Ok(());
                    }
                };
                if *skip > entries.len() as u64 {
                    self.reply(
                        link,
                        wrap,
                        Reply::action_failed(&format!(
                            "resume skip {skip} beyond the tree's {} entries",
                            entries.len()
                        )),
                    )?;
                    return Ok(());
                }
                // Approximate payload bytes for the span; the stream
                // adds framing on top.
                (Vec::new(), entries.iter().map(|e| e.size).sum())
            }
        };
        let streams = match self.open_send_streams(&sec) {
            Ok(s) => match &self.config.fault {
                Some(inj) => s
                    .into_iter()
                    .map(|l| {
                        Box::new(crate::fault::FaultLink::new(l, std::sync::Arc::clone(inj)))
                            as Box<dyn Link>
                    })
                    .collect(),
                None => s,
            },
            Err(e) => {
                self.reply(link, wrap, Reply::new(425, format!("Cannot open data channel: {e}")))?;
                return Ok(());
            }
        };
        let stream_count = streams.len() as u32;
        let tspan = self.config.obs.span(
            "transfer",
            vec![
                kv("direction", "send"),
                kv("streams", stream_count),
                kv("bytes_expected", total_len),
            ],
        );
        let _active = self.begin_transfer();
        self.reply(link, wrap, Reply::opening_data())?;
        // One coherent tunable snapshot for the whole transfer: a
        // reload mid-flight affects the next transfer, not this one.
        let live = self.config.live();
        let progress = Progress::new();
        let progress2 = Arc::clone(&progress);
        let dsi = Arc::clone(&self.config.dsi);
        let user2 = user.clone();
        let block_size = live.block_size;
        let spawned = std::thread::Builder::new().name("dtp-send".into()).spawn(
            move || -> Result<u64> {
                match source {
                    TransferSource::File(path)
                    | TransferSource::Partial { path, .. } => {
                        send_ranges(streams, &dsi, &user2, &path, &ranges, block_size, &progress2)
                    }
                    TransferSource::Buffer(buf) => {
                        crate::dtp::send_buffer(streams, &buf, block_size, &progress2)
                    }
                    TransferSource::Dir { path, skip } => {
                        send_dir(streams, &dsi, &user2, &path, skip, block_size, &progress2)
                    }
                }
            },
        );
        let worker = match spawned {
            Ok(w) => w,
            Err(e) => {
                // Thread exhaustion is an operational signal, not a
                // session-fatal bug: count it, fail this transfer, keep
                // the control channel up.
                self.config.obs.metrics().add("server.spawn_failures", 1);
                self.port_targets.clear();
                self.listeners.clear();
                tspan.end_with(vec![kv("outcome", "spawn-error")]);
                return self.reply(
                    link,
                    wrap,
                    Reply::new(426, format!("Transfer failed: cannot spawn sender: {e}")),
                );
            }
        };
        // Poll progress, emitting 112 perf markers.
        let start = Instant::now();
        let mut last_bytes = 0u64;
        let mut last_progress = Instant::now();
        while !worker.is_finished() {
            std::thread::sleep(MARKER_PERIOD);
            let bytes = progress.bytes();
            if bytes != last_bytes {
                last_bytes = bytes;
                last_progress = Instant::now();
                // 112 markers are sourced from the registry: progress is
                // published as a gauge first and the marker reads it back,
                // so `SITE STATS` and the control channel cannot disagree.
                let metrics = self.config.obs.metrics();
                metrics.set_gauge("server.transfer_progress_bytes", bytes as f64);
                let marker = PerfMarker {
                    timestamp: start.elapsed().as_secs_f64(),
                    stripe_index: 0,
                    total_stripes: self.config.stripes as u32,
                    stripe_bytes: metrics.gauge_value("server.transfer_progress_bytes") as u64,
                };
                self.reply(link, wrap, marker.to_reply())?;
            } else if last_progress.elapsed() > live.stall_timeout {
                break;
            }
        }
        let outcome = worker
            .join()
            .map_err(|_| ServerError::Data("sender worker panicked".into()))?;
        self.port_targets.clear();
        self.listeners.clear();
        match outcome {
            Ok(bytes) => {
                self.config.usage.record(TransferRecord {
                    timestamp: self.config.clock.now(),
                    bytes,
                    user: user.username.clone(),
                    inbound: false,
                    streams: stream_count,
                });
                // Mirrored at the same call site as `usage.record` so the
                // SITE STATS counters can never drift from usage.rs.
                let metrics = self.config.obs.metrics();
                metrics.add("server.transfers_out", 1);
                metrics.add("server.bytes_out", bytes);
                self.ticket.add_bytes(false, bytes);
                tspan.end_with(vec![kv("outcome", "ok"), kv("bytes", bytes)]);
                self.reply(link, wrap, Reply::transfer_complete())
            }
            Err(e) => {
                self.config.obs.metrics().add("server.transfer_errors", 1);
                tspan.end_with(vec![kv("outcome", "error")]);
                self.reply(link, wrap, Reply::new(426, format!("Transfer failed: {e}")))
            }
        }
    }

    fn run_receive_transfer(
        &mut self,
        link: &mut Box<dyn Link>,
        wrap: bool,
        path: &str,
    ) -> Result<()> {
        let user = self.user.clone().expect("authed");
        let sec = self.data_security();
        let resuming = self.restart.take();
        if resuming.is_none() {
            // Fresh upload: start from scratch.
            let _ = self.config.dsi.truncate(&user, path, 0);
        }
        let tspan = self.config.obs.span(
            "transfer",
            vec![kv("direction", "recv"), kv("resuming", resuming.is_some())],
        );
        let _active = self.begin_transfer();
        self.reply(link, wrap, Reply::opening_data())?;
        let progress = Progress::new();
        if let Some(have) = &resuming {
            // Seed progress with what already landed so markers are global.
            let mut r = progress.ranges.lock();
            for &(s, e) in have.ranges() {
                r.add(s, e);
            }
        }
        let receiver = Receiver::new(
            Arc::clone(&self.config.dsi),
            user.clone(),
            path,
            Arc::clone(&progress),
        )
        .with_idle(self.config.live().stall_timeout);
        let end = self.pump_receiver(link, wrap, &sec, &receiver, &progress)?;
        self.listeners.clear();
        self.port_targets.clear();
        let connected = match end {
            PumpEnd::SpawnError(e) => {
                self.config.obs.metrics().add("server.spawn_failures", 1);
                tspan.end_with(vec![kv("outcome", "spawn-error")]);
                return self.reply(link, wrap, Reply::new(426, format!("Transfer failed: {e}")));
            }
            PumpEnd::AuthError(e) => {
                // Failed DCAU on one connection fails the transfer.
                tspan.end_with(vec![kv("outcome", "auth-error")]);
                return self.reply(
                    link,
                    wrap,
                    Reply::new(425, format!("Data channel authentication failed: {e}")),
                );
            }
            PumpEnd::Drained { connected } => connected,
        };
        match receiver.finish() {
            Ok(bytes) => {
                self.config.usage.record(TransferRecord {
                    timestamp: self.config.clock.now(),
                    bytes,
                    user: user.username.clone(),
                    inbound: true,
                    streams: connected as u32,
                });
                // Same call site as `usage.record`: SITE STATS stays in
                // lock-step with usage.rs.
                let metrics = self.config.obs.metrics();
                metrics.add("server.transfers_in", 1);
                metrics.add("server.bytes_in", bytes);
                self.ticket.add_bytes(true, bytes);
                tspan.end_with(vec![kv("outcome", "ok"), kv("bytes", bytes)]);
                self.reply(link, wrap, Reply::transfer_complete())
            }
            Err(e) => {
                self.config.obs.metrics().add("server.transfer_errors", 1);
                tspan.end_with(vec![kv("outcome", "error")]);
                self.reply(link, wrap, Reply::new(426, format!("Transfer failed: {e}")))
            }
        }
    }

    /// Drive the accept/connect + 111-marker loop for an inbound
    /// transfer until the receiver drains, errors, or stalls. Emits only
    /// in-transfer markers; terminal replies are the caller's job, keyed
    /// off the returned [`PumpEnd`]. Shared by plain `STOR` and
    /// `ESTO DIR` so both directions of pipelined sessions exercise one
    /// code path.
    fn pump_receiver(
        &mut self,
        link: &mut Box<dyn Link>,
        wrap: bool,
        sec: &DataSecurity,
        receiver: &Receiver,
        progress: &Arc<Progress>,
    ) -> Result<PumpEnd> {
        let live = self.config.live();
        let mut connected = 0usize;
        let mut last_marker = ByteRanges::new();
        let mut last_progress = Instant::now();
        loop {
            if receiver.done() || receiver.error().is_some() {
                break;
            }
            if !self.port_targets.is_empty() && connected == 0 {
                // Active receive: we connect out (unusual but legal).
                let udp = self.udp_config();
                for target in self.port_targets.clone() {
                    for _ in 0..self.parallelism {
                        let conn = connect_transport(target, self.data_transport, &udp)?;
                        let throttled = maybe_throttle(conn, live.stripe_rate);
                        let secured = wrap_connect(throttled, sec, &mut self.rng)?;
                        if let Err(e) = receiver.add_stream(self.chaosify(secured)) {
                            return Ok(PumpEnd::SpawnError(e.to_string()));
                        }
                        connected += 1;
                    }
                }
            }
            for l in &self.listeners {
                if let Some(conn) = l.try_accept_link() {
                    let throttled = maybe_throttle(conn, live.stripe_rate);
                    match wrap_accept(throttled, sec, &mut self.rng) {
                        Ok(s) => {
                            if let Err(e) = receiver.add_stream(self.chaosify(s)) {
                                return Ok(PumpEnd::SpawnError(e.to_string()));
                            }
                            connected += 1;
                            last_progress = Instant::now();
                        }
                        Err(e) => return Ok(PumpEnd::AuthError(e.to_string())),
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
            // Emit 111 restart markers as new ranges land.
            let snapshot = progress.ranges_snapshot();
            if snapshot != last_marker {
                last_marker = snapshot.clone();
                last_progress = Instant::now();
                self.reply(link, wrap, RestartMarker { ranges: snapshot }.to_reply())?;
            } else if last_progress.elapsed() > live.stall_timeout {
                break;
            }
        }
        Ok(PumpEnd::Drained { connected })
    }

    /// `ESTO DIR <root>`: receive one directory stream into staging
    /// memory, then expand every *complete* entry under `root` on the
    /// real DSI. The terminal reply always carries the entry count —
    /// `226 Directory stream complete (<n> entries).` on success,
    /// `426 Directory stream failed after <n> entries: <reason>` on a
    /// mid-stream fault — so the client can resume file-granularly by
    /// re-sending from entry `n`.
    fn run_receive_dir(
        &mut self,
        link: &mut Box<dyn Link>,
        wrap: bool,
        root: &str,
    ) -> Result<()> {
        let user = self.user.clone().expect("authed");
        let sec = self.data_security();
        // REST does not apply here; resume is entry-granular via the
        // count in the terminal reply. Drop any stale marker so it
        // cannot leak into this transfer.
        self.restart = None;
        let tspan = self
            .config
            .obs
            .span("transfer", vec![kv("direction", "recv-dir")]);
        let _active = self.begin_transfer();
        self.reply(link, wrap, Reply::opening_data())?;
        let progress = Progress::new();
        // Stage the raw stream in session-private memory: expansion must
        // be entry-atomic even though MODE E blocks land out of order.
        let staging = crate::dsi::memory::MemDsi::new();
        let staging: Arc<dyn crate::dsi::Dsi> = Arc::new(staging);
        let su = UserContext::superuser();
        let receiver =
            Receiver::new(Arc::clone(&staging), su.clone(), "/stream", Arc::clone(&progress))
                .with_idle(self.config.live().stall_timeout);
        let end = self.pump_receiver(link, wrap, &sec, &receiver, &progress)?;
        self.listeners.clear();
        self.port_targets.clear();
        let connected = match end {
            PumpEnd::SpawnError(e) => {
                self.config.obs.metrics().add("server.spawn_failures", 1);
                tspan.end_with(vec![kv("outcome", "spawn-error")]);
                return self.reply(link, wrap, Reply::new(426, format!("Transfer failed: {e}")));
            }
            PumpEnd::AuthError(e) => {
                tspan.end_with(vec![kv("outcome", "auth-error")]);
                return self.reply(
                    link,
                    wrap,
                    Reply::new(425, format!("Data channel authentication failed: {e}")),
                );
            }
            PumpEnd::Drained { connected } => connected,
        };
        let fin = receiver.finish();
        // Expand whatever complete prefix landed — holes left by lost
        // blocks fail a header magic or trailer checksum and stop the
        // decoder at the last complete entry, never mid-file.
        let staged = crate::dsi::read_all(staging.as_ref(), &su, "/stream", 256 * 1024)
            .unwrap_or_default();
        let outcome =
            crate::dsi::expand_stream(self.config.dsi.as_ref(), &user, root, &staged);
        match outcome {
            Err(e) => {
                self.config.obs.metrics().add("server.transfer_errors", 1);
                tspan.end_with(vec![kv("outcome", "error")]);
                self.reply(
                    link,
                    wrap,
                    Reply::new(426, format!("Directory stream failed after 0 entries: {e}")),
                )
            }
            Ok(out) if out.finished && out.error.is_none() => {
                // Every entry decoded, every checksum passed, count
                // matched: the tree is complete even if the transport
                // died after the final block.
                let bytes = staged.len() as u64;
                self.config.usage.record(TransferRecord {
                    timestamp: self.config.clock.now(),
                    bytes,
                    user: user.username.clone(),
                    inbound: true,
                    streams: connected as u32,
                });
                let metrics = self.config.obs.metrics();
                metrics.add("server.transfers_in", 1);
                metrics.add("server.bytes_in", bytes);
                self.ticket.add_bytes(true, bytes);
                tspan.end_with(vec![kv("outcome", "ok"), kv("bytes", bytes)]);
                self.reply(
                    link,
                    wrap,
                    Reply::new(
                        226,
                        format!("Directory stream complete ({} entries).", out.entries),
                    ),
                )
            }
            Ok(out) => {
                let reason = out
                    .error
                    .clone()
                    .or_else(|| fin.err().map(|e| e.to_string()))
                    .unwrap_or_else(|| "stream ended before the end marker".to_string());
                self.config.obs.metrics().add("server.transfer_errors", 1);
                tspan.end_with(vec![kv("outcome", "error"), kv("entries", out.entries)]);
                self.reply(
                    link,
                    wrap,
                    Reply::new(
                        426,
                        format!("Directory stream failed after {} entries: {reason}", out.entries),
                    ),
                )
            }
        }
    }
}

/// How [`Session::pump_receiver`] ended.
enum PumpEnd {
    /// Receiver drained or stalled; the caller should `finish()`.
    Drained { connected: usize },
    /// A data stream's worker thread failed to spawn.
    SpawnError(String),
    /// A data connection failed DCAU authentication.
    AuthError(String),
}

enum TransferSource {
    File(String),
    Partial { path: String, offset: u64, length: u64 },
    Buffer(Vec<u8>),
    /// A whole tree as one directory stream, resuming at walk entry
    /// `skip` (`ERET DIR <skip> <path>`).
    Dir { path: String, skip: u64 },
}

/// SHA-256 over a byte range of a DSI file, streamed in 256 KiB reads.
fn checksum(
    dsi: &dyn crate::dsi::Dsi,
    user: &UserContext,
    path: &str,
    offset: u64,
    length: Option<u64>,
) -> Result<String> {
    let size = dsi.size(user, path)?;
    let start = offset.min(size);
    let end = match length {
        Some(l) => (start + l).min(size),
        None => size,
    };
    let mut hasher = ig_crypto::Sha256::new();
    let mut pos = start;
    while pos < end {
        let want = (256 * 1024).min((end - pos) as usize);
        let chunk = dsi.read(user, path, pos, want)?;
        if chunk.is_empty() {
            break;
        }
        pos += chunk.len() as u64;
        hasher.update(&chunk);
    }
    Ok(ig_crypto::encode::hex_encode(&hasher.finalize()))
}
