//! Usage reporting — the data source behind the paper's Fig 1.
//!
//! "The Globus GridFTP server is deployed on more than 5,000 servers
//! worldwide and is responsible for an average of more than 10 million
//! transfers totaling approximately half a petabyte of data every day
//! (see Figure 1; these numbers are based on reporting from GridFTP
//! servers that choose to enable reporting)." Every server/session
//! records completed transfers here; experiment E1 aggregates a
//! simulated fleet's reports into the Fig 1 time series.

use parking_lot::Mutex;
use std::sync::Arc;

/// One completed transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferRecord {
    /// UNIX seconds at completion.
    pub timestamp: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Local account.
    pub user: String,
    /// `true` for STOR (inbound), `false` for RETR (outbound).
    pub inbound: bool,
    /// Number of parallel streams used.
    pub streams: u32,
}

/// A sink for transfer records.
#[derive(Default)]
pub struct UsageReporter {
    records: Mutex<Vec<TransferRecord>>,
}

/// One bucket of the aggregated series (a Fig 1 data point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageBucket {
    /// Bucket start (UNIX seconds).
    pub start: u64,
    /// Transfers completed in the bucket.
    pub transfers: u64,
    /// Bytes moved in the bucket.
    pub bytes: u64,
}

impl UsageReporter {
    /// Shared reporter.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record a completed transfer.
    pub fn record(&self, rec: TransferRecord) {
        self.records.lock().push(rec);
    }

    /// Total transfers recorded.
    pub fn total_transfers(&self) -> u64 {
        self.records.lock().len() as u64
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.records.lock().iter().map(|r| r.bytes).sum()
    }

    /// Aggregate into `bucket_secs`-wide buckets between the earliest and
    /// latest record (inclusive); empty buckets are emitted so the series
    /// plots cleanly.
    pub fn aggregate(&self, bucket_secs: u64) -> Vec<UsageBucket> {
        assert!(bucket_secs > 0, "bucket width must be positive");
        let records = self.records.lock();
        if records.is_empty() {
            return Vec::new();
        }
        let min = records.iter().map(|r| r.timestamp).min().expect("non-empty");
        let max = records.iter().map(|r| r.timestamp).max().expect("non-empty");
        let first = min / bucket_secs * bucket_secs;
        let buckets = (max - first) / bucket_secs + 1;
        let mut out: Vec<UsageBucket> = (0..buckets)
            .map(|i| UsageBucket { start: first + i * bucket_secs, transfers: 0, bytes: 0 })
            .collect();
        for r in records.iter() {
            let idx = ((r.timestamp - first) / bucket_secs) as usize;
            out[idx].transfers += 1;
            out[idx].bytes += r.bytes;
        }
        out
    }

    /// Snapshot of raw records (cloned).
    pub fn records(&self) -> Vec<TransferRecord> {
        self.records.lock().clone()
    }

    /// Merge another reporter's records into this one (fleet roll-up).
    pub fn absorb(&self, other: &UsageReporter) {
        let other_records = other.records.lock().clone();
        self.records.lock().extend(other_records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, bytes: u64) -> TransferRecord {
        TransferRecord { timestamp: t, bytes, user: "u".into(), inbound: true, streams: 4 }
    }

    #[test]
    fn totals() {
        let r = UsageReporter::new();
        assert_eq!(r.total_transfers(), 0);
        r.record(rec(10, 100));
        r.record(rec(20, 200));
        assert_eq!(r.total_transfers(), 2);
        assert_eq!(r.total_bytes(), 300);
    }

    #[test]
    fn aggregation_with_gaps() {
        let r = UsageReporter::new();
        r.record(rec(5, 10));
        r.record(rec(8, 10));
        r.record(rec(25, 40)); // bucket 2 (20..30); bucket 1 empty
        let buckets = r.aggregate(10);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], UsageBucket { start: 0, transfers: 2, bytes: 20 });
        assert_eq!(buckets[1], UsageBucket { start: 10, transfers: 0, bytes: 0 });
        assert_eq!(buckets[2], UsageBucket { start: 20, transfers: 1, bytes: 40 });
    }

    #[test]
    fn empty_aggregate() {
        let r = UsageReporter::new();
        assert!(r.aggregate(60).is_empty());
    }

    #[test]
    fn absorb_merges_fleet() {
        let hub = UsageReporter::new();
        let a = UsageReporter::new();
        let b = UsageReporter::new();
        a.record(rec(1, 1));
        b.record(rec(2, 2));
        hub.absorb(&a);
        hub.absorb(&b);
        assert_eq!(hub.total_transfers(), 2);
        assert_eq!(hub.total_bytes(), 3);
    }
}
