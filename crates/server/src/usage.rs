//! Usage reporting — the data source behind the paper's Fig 1.
//!
//! "The Globus GridFTP server is deployed on more than 5,000 servers
//! worldwide and is responsible for an average of more than 10 million
//! transfers totaling approximately half a petabyte of data every day
//! (see Figure 1; these numbers are based on reporting from GridFTP
//! servers that choose to enable reporting)." Every server/session
//! records completed transfers here; experiments E1 and E15 aggregate a
//! simulated fleet's reports into the Fig 1 time series.
//!
//! # Sharding (DESIGN.md §14)
//!
//! At fleet scale the ledger is the hottest shared structure in the
//! hosted service: every completed transfer on every worker lands here.
//! The original single-`Mutex<Vec>` design serialized all of them; this
//! version stripes records across [`UsageReporter::DEFAULT_SHARDS`]
//! shards, each its own mutex + running totals, with writers routed by a
//! sticky per-thread hint so a worker thread almost never contends.
//! Readers merge on snapshot: `aggregate`/`records`/`snapshot` lock the
//! shards one at a time and combine, producing a canonical
//! (timestamp-ordered) view that is bit-for-bit independent of how the
//! writes were striped. `SITE STATS` consumes only the running totals,
//! which are updated under the shard lock, so its JSON stays
//! byte-compatible with the single-mutex ledger.
//!
//! The original implementation survives as [`oracle::SingleMutexReporter`]
//! — the test oracle the differential property tests drive in lock-step
//! with the sharded ledger.

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Counters every stats surface must expose even before their
/// subsystem has fired once. The registry only snapshots metrics that
/// exist, so scheduler and UDP counters would otherwise be absent from
/// `SITE STATS` on an idle server — touching them here (get-or-create
/// at zero) pins the reply shape.
const ALWAYS_PRESENT_COUNTERS: &[&str] = &[
    "gol.sched.submitted",
    "gol.sched.grants",
    "gol.sched.rejects",
    "gol.sched.queue_full",
    "udp.retransmits",
    "udp.naks",
    "udp.corrupt_drops",
    "udp.chaos_faults",
];

/// The one serializer behind both operator surfaces: the control
/// channel's `SITE STATS` reply and the admin plane's `metrics`
/// command. One function means the two can never drift — the
/// regression test in `tests/obs_stats.rs` compares them byte-for-byte
/// (modulo counter values that move between the two reads).
pub fn stats_json(
    component: &str,
    core_label: &str,
    usage: &UsageReporter,
    metrics: &ig_obs::Registry,
) -> String {
    for name in ALWAYS_PRESENT_COUNTERS {
        metrics.counter(name);
    }
    format!(
        "{{\"component\":\"{}\",\"core\":\"{}\",\"usage\":{{\"transfers\":{},\"bytes\":{}}},\"metrics\":{}}}",
        component,
        core_label,
        usage.total_transfers(),
        usage.total_bytes(),
        metrics.snapshot_json()
    )
}

/// One completed transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferRecord {
    /// UNIX seconds at completion.
    pub timestamp: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Local account.
    pub user: String,
    /// `true` for STOR (inbound), `false` for RETR (outbound).
    pub inbound: bool,
    /// Number of parallel streams used.
    pub streams: u32,
}

/// Canonical sort key: timestamp first (the aggregation axis), then the
/// remaining fields so equal-timestamp records still order stably.
fn canonical_key(r: &TransferRecord) -> (u64, &str, u64, bool, u32) {
    (r.timestamp, r.user.as_str(), r.bytes, r.inbound, r.streams)
}

/// Sort records into the canonical order every reader exposes.
fn canonicalize(records: &mut [TransferRecord]) {
    records.sort_by(|a, b| canonical_key(a).cmp(&canonical_key(b)));
}

/// One bucket of the aggregated series (a Fig 1 data point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageBucket {
    /// Bucket start (UNIX seconds).
    pub start: u64,
    /// Transfers completed in the bucket.
    pub transfers: u64,
    /// Bytes moved in the bucket.
    pub bytes: u64,
}

/// A merged, canonical view of the whole ledger at one instant — what
/// the differential tests compare between implementations.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageSnapshot {
    /// Transfers recorded.
    pub transfers: u64,
    /// Bytes recorded.
    pub bytes: u64,
    /// All records in canonical (timestamp-major) order.
    pub records: Vec<TransferRecord>,
}

/// Aggregate a canonical record slice into `bucket_secs`-wide buckets —
/// shared by both ledger implementations so they cannot diverge in the
/// bucket math.
fn aggregate_records(records: &[TransferRecord], bucket_secs: u64) -> Vec<UsageBucket> {
    assert!(bucket_secs > 0, "bucket width must be positive");
    if records.is_empty() {
        return Vec::new();
    }
    let min = records.iter().map(|r| r.timestamp).min().expect("non-empty");
    let max = records.iter().map(|r| r.timestamp).max().expect("non-empty");
    let first = min / bucket_secs * bucket_secs;
    let buckets = (max - first) / bucket_secs + 1;
    let mut out: Vec<UsageBucket> = (0..buckets)
        .map(|i| UsageBucket { start: first + i * bucket_secs, transfers: 0, bytes: 0 })
        .collect();
    for r in records {
        let idx = ((r.timestamp - first) / bucket_secs) as usize;
        out[idx].transfers += 1;
        out[idx].bytes += r.bytes;
    }
    out
}

struct Shard {
    records: Mutex<Vec<TransferRecord>>,
    /// Running totals, bumped under the shard lock so `SITE STATS`
    /// totals never go backwards or tear against `records`.
    transfers: AtomicU64,
    bytes: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            records: Mutex::new(Vec::new()),
            transfers: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    fn push(&self, rec: TransferRecord) {
        let mut guard = self.records.lock();
        self.transfers.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(rec.bytes, Ordering::Relaxed);
        guard.push(rec);
    }
}

/// A sink for transfer records, striped across shards.
pub struct UsageReporter {
    shards: Vec<Shard>,
}

impl Default for UsageReporter {
    fn default() -> Self {
        UsageReporter::sharded(UsageReporter::DEFAULT_SHARDS)
    }
}

/// Sticky per-thread shard hint: each recording thread claims the next
/// slot once and keeps it, so a fleet of worker threads spreads across
/// the stripes without ever hashing or contending on the router.
fn thread_shard_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    HINT.with(|h| {
        let v = h.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        h.set(v);
        v
    })
}

impl UsageReporter {
    /// Stripe count used by [`UsageReporter::new`]; sized so a sharded
    /// worker pool rarely lands two hot threads on one stripe.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Shared reporter with the default stripe count.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A reporter with exactly `n` shards (>= 1). Small counts keep the
    /// exhaustive interleaving tests tractable; production uses
    /// [`UsageReporter::new`].
    pub fn sharded(n: usize) -> Self {
        let n = n.max(1);
        UsageReporter { shards: (0..n).map(|_| Shard::new()).collect() }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Record a completed transfer on the calling thread's stripe.
    pub fn record(&self, rec: TransferRecord) {
        self.record_on(thread_shard_hint(), rec);
    }

    /// Record on an explicit stripe (`shard` is taken modulo the stripe
    /// count). Deterministic routing for replays and the differential /
    /// interleaving tests; `record` routes here via the thread hint.
    pub fn record_on(&self, shard: usize, rec: TransferRecord) {
        self.shards[shard % self.shards.len()].push(rec);
    }

    /// Total transfers recorded.
    pub fn total_transfers(&self) -> u64 {
        self.shards.iter().map(|s| s.transfers.load(Ordering::Relaxed)).sum()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes.load(Ordering::Relaxed)).sum()
    }

    /// Merge-on-snapshot reader: all records in canonical order. Locks
    /// shards one at a time; writers on other stripes are never blocked.
    pub fn records(&self) -> Vec<TransferRecord> {
        let mut out = Vec::with_capacity(self.total_transfers() as usize);
        for s in &self.shards {
            out.extend(s.records.lock().iter().cloned());
        }
        canonicalize(&mut out);
        out
    }

    /// A consistent, canonical snapshot: totals computed from the merged
    /// records themselves, so the snapshot can never tear against its
    /// own record list.
    pub fn snapshot(&self) -> UsageSnapshot {
        let records = self.records();
        UsageSnapshot {
            transfers: records.len() as u64,
            bytes: records.iter().map(|r| r.bytes).sum(),
            records,
        }
    }

    /// Aggregate into `bucket_secs`-wide buckets between the earliest and
    /// latest record (inclusive); empty buckets are emitted so the series
    /// plots cleanly.
    pub fn aggregate(&self, bucket_secs: u64) -> Vec<UsageBucket> {
        aggregate_records(&self.records(), bucket_secs)
    }

    /// Merge another reporter's records into this one (fleet roll-up).
    /// Stripes map index-to-index so a roll-up of sharded reporters
    /// stays spread out.
    pub fn absorb(&self, other: &UsageReporter) {
        for (i, s) in other.shards.iter().enumerate() {
            let records = s.records.lock().clone();
            for rec in records {
                self.record_on(i, rec);
            }
        }
    }
}

pub mod oracle {
    //! The pre-sharding single-mutex ledger, kept verbatim as the test
    //! oracle: the differential property tests drive it and the sharded
    //! [`super::UsageReporter`] with the same record stream and assert
    //! identical [`super::UsageSnapshot`]s.

    use super::{
        aggregate_records, canonicalize, TransferRecord, UsageBucket, UsageSnapshot,
    };
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// The original ledger: one mutex around one `Vec`.
    #[derive(Default)]
    pub struct SingleMutexReporter {
        records: Mutex<Vec<TransferRecord>>,
    }

    impl SingleMutexReporter {
        /// Shared reporter.
        pub fn new() -> Arc<Self> {
            Arc::new(Self::default())
        }

        /// Record a completed transfer.
        pub fn record(&self, rec: TransferRecord) {
            self.records.lock().push(rec);
        }

        /// Total transfers recorded.
        pub fn total_transfers(&self) -> u64 {
            self.records.lock().len() as u64
        }

        /// Total bytes recorded.
        pub fn total_bytes(&self) -> u64 {
            self.records.lock().iter().map(|r| r.bytes).sum()
        }

        /// All records in the same canonical order the sharded reader
        /// exposes (the oracle's insertion order is an implementation
        /// detail the sharded ledger cannot reproduce).
        pub fn records(&self) -> Vec<TransferRecord> {
            let mut out = self.records.lock().clone();
            canonicalize(&mut out);
            out
        }

        /// Canonical snapshot (see [`super::UsageReporter::snapshot`]).
        pub fn snapshot(&self) -> UsageSnapshot {
            let records = self.records();
            UsageSnapshot {
                transfers: records.len() as u64,
                bytes: records.iter().map(|r| r.bytes).sum(),
                records,
            }
        }

        /// Aggregate — same bucket math as the sharded ledger.
        pub fn aggregate(&self, bucket_secs: u64) -> Vec<UsageBucket> {
            aggregate_records(&self.records(), bucket_secs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, bytes: u64) -> TransferRecord {
        TransferRecord { timestamp: t, bytes, user: "u".into(), inbound: true, streams: 4 }
    }

    #[test]
    fn totals() {
        let r = UsageReporter::new();
        assert_eq!(r.total_transfers(), 0);
        r.record(rec(10, 100));
        r.record(rec(20, 200));
        assert_eq!(r.total_transfers(), 2);
        assert_eq!(r.total_bytes(), 300);
    }

    #[test]
    fn aggregation_with_gaps() {
        let r = UsageReporter::new();
        r.record(rec(5, 10));
        r.record(rec(8, 10));
        r.record(rec(25, 40)); // bucket 2 (20..30); bucket 1 empty
        let buckets = r.aggregate(10);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], UsageBucket { start: 0, transfers: 2, bytes: 20 });
        assert_eq!(buckets[1], UsageBucket { start: 10, transfers: 0, bytes: 0 });
        assert_eq!(buckets[2], UsageBucket { start: 20, transfers: 1, bytes: 40 });
    }

    #[test]
    fn empty_aggregate() {
        let r = UsageReporter::new();
        assert!(r.aggregate(60).is_empty());
    }

    #[test]
    fn absorb_merges_fleet() {
        let hub = UsageReporter::new();
        let a = UsageReporter::new();
        let b = UsageReporter::new();
        a.record(rec(1, 1));
        b.record(rec(2, 2));
        hub.absorb(&a);
        hub.absorb(&b);
        assert_eq!(hub.total_transfers(), 2);
        assert_eq!(hub.total_bytes(), 3);
    }

    #[test]
    fn striped_writes_merge_into_canonical_order() {
        let r = UsageReporter::sharded(4);
        // Write timestamps out of order across explicit stripes.
        r.record_on(3, rec(30, 3));
        r.record_on(0, rec(10, 1));
        r.record_on(2, rec(20, 2));
        r.record_on(0, rec(10, 1));
        let records = r.records();
        let ts: Vec<u64> = records.iter().map(|x| x.timestamp).collect();
        assert_eq!(ts, vec![10, 10, 20, 30]);
        let snap = r.snapshot();
        assert_eq!(snap.transfers, 4);
        assert_eq!(snap.bytes, 7);
    }

    #[test]
    fn sharded_matches_oracle_on_a_fixed_stream() {
        let sharded = UsageReporter::sharded(3);
        let oracle = oracle::SingleMutexReporter::default();
        for i in 0..100u64 {
            let r = rec(i * 7 % 50, i);
            sharded.record_on(i as usize, r.clone());
            oracle.record(r);
        }
        assert_eq!(sharded.snapshot(), oracle.snapshot());
        assert_eq!(sharded.aggregate(10), oracle.aggregate(10));
        assert_eq!(sharded.total_transfers(), oracle.total_transfers());
        assert_eq!(sharded.total_bytes(), oracle.total_bytes());
    }

    #[test]
    fn concurrent_recording_keeps_every_record() {
        let r = UsageReporter::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        r.record(rec(t * 1000 + i, 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.total_transfers(), 2000);
        assert_eq!(r.total_bytes(), 2000);
        assert_eq!(r.snapshot().transfers, 2000);
    }
}
