//! Server front door: binds the control port and starts the selected
//! concurrency core — the portable thread-per-session accept loop, or
//! (on Linux) the epoll reactor ([`crate::reactor`]).

use crate::config::{ServerConfig, ServerCore};
use crate::error::{Result, ServerError};
use crate::session::run_session;
use ig_obs::json::kv;
use ig_protocol::HostPort;
use ig_xio::{Link, TcpLink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a graceful drain (the admin plane's `drain` command).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// A drain had already run (or was running) when this one started;
    /// the call observed its outcome instead of waiting again.
    pub already: bool,
    /// Every in-flight transfer finished inside the deadline.
    pub clean: bool,
    /// How long this call waited for transfers to quiesce.
    pub waited_ms: u64,
    /// Transfers still in flight when the deadline expired (0 on a
    /// clean drain). Interrupted transfers checkpointed restart markers
    /// on their control channels, so clients resume the remainder.
    pub transfers_interrupted: u64,
    /// Control sessions still registered at drain completion (idle
    /// sessions are not waited for — only transfers carry state that
    /// must not be lost).
    pub sessions_active: u64,
}

/// A running GridFTP server.
pub struct GridFtpServer {
    config: Arc<ServerConfig>,
    addr: HostPort,
    stop: Arc<AtomicBool>,
    /// Set by [`GridFtpServer::drain`]: accept loops on both cores shed
    /// new connections while transfers quiesce.
    draining: Arc<AtomicBool>,
    /// Serializes concurrent drain calls so the second observes the
    /// first's outcome instead of re-waiting (drain is idempotent).
    drain_lock: std::sync::Mutex<()>,
    /// Session-seed counter, bumped once per accepted connection in
    /// accept order — shared with the reactor so both cores seed
    /// identically.
    seed: Arc<AtomicU64>,
    /// Reactor wakeup handle (shutdown pokes the event loop out of
    /// `epoll_wait`). `None` under the threaded core.
    #[cfg(target_os = "linux")]
    wake: std::sync::Mutex<Option<Arc<ig_xio::WakeFd>>>,
}

impl GridFtpServer {
    /// Bind the control channel on `config.data_ip:0` and start serving.
    ///
    /// `seed` makes all session randomness deterministic (each session
    /// derives `seed + n` in accept order, on either core).
    pub fn start(config: ServerConfig, seed: u64) -> Result<Arc<Self>> {
        let listener = TcpListener::bind((config.data_ip, 0))?;
        let addr = HostPort::from_socket_addr(listener.local_addr()?)?;
        let server = Arc::new(GridFtpServer {
            config: Arc::new(config),
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            draining: Arc::new(AtomicBool::new(false)),
            drain_lock: std::sync::Mutex::new(()),
            seed: Arc::new(AtomicU64::new(seed)),
            #[cfg(target_os = "linux")]
            wake: std::sync::Mutex::new(None),
        });
        match server.config.core {
            ServerCore::Threaded => start_threaded(&server, listener)?,
            ServerCore::Reactor => {
                #[cfg(target_os = "linux")]
                {
                    let handle = crate::reactor::spawn(
                        listener,
                        Arc::clone(&server.config),
                        Arc::clone(&server.seed),
                        Arc::clone(&server.stop),
                        Arc::clone(&server.draining),
                    )?;
                    *server.wake.lock().unwrap() = Some(handle.wake);
                }
                #[cfg(not(target_os = "linux"))]
                {
                    drop(listener);
                    return Err(ServerError::Unsupported(
                        "the reactor core requires epoll (Linux); use ServerCore::Threaded"
                            .into(),
                    ));
                }
            }
        }
        if server.config.admin_socket.is_some() {
            // The admin plane needs SO_PEERCRED; the config documents it
            // as Linux-only and other platforms simply run without it.
            #[cfg(target_os = "linux")]
            crate::admin::spawn_admin(&server)?;
        }
        Ok(server)
    }

    /// Control-channel address clients connect to.
    pub fn addr(&self) -> HostPort {
        self.addr
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared config handle (admin plane, internal).
    pub(crate) fn config_arc(&self) -> &Arc<ServerConfig> {
        &self.config
    }

    /// The stop flag (admin plane, internal).
    pub(crate) fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Has [`GridFtpServer::shutdown`] (or a completed drain) run?
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Is a drain in progress or complete?
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Gracefully retire the server: stop accepting new connections
    /// immediately, wait up to `deadline` for in-flight transfers to
    /// finish, then shut down. Transfers still running at the deadline
    /// are interrupted — their clients hold `111` restart markers and
    /// resume the remainder elsewhere, so no acknowledged byte is lost
    /// either way.
    ///
    /// Idempotent: concurrent or repeated calls serialize, and any call
    /// after the first reports the existing outcome (`already`) instead
    /// of waiting again.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let _serialize = self.drain_lock.lock().unwrap();
        let already = self.draining.swap(true, Ordering::SeqCst);
        let metrics = self.config.obs.metrics();
        let active =
            || metrics.gauge_value("server.transfers_active").max(0.0).round() as u64;
        if already {
            let interrupted = active();
            return DrainReport {
                already: true,
                clean: interrupted == 0,
                waited_ms: 0,
                transfers_interrupted: interrupted,
                sessions_active: self.config.sessions.len() as u64,
            };
        }
        self.config
            .obs
            .event_unstable("admin.drain", vec![kv("deadline_ms", deadline.as_millis() as u64)]);
        let start = Instant::now();
        while active() > 0 && start.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shutdown();
        let interrupted = active();
        let report = DrainReport {
            already: false,
            clean: interrupted == 0,
            waited_ms: start.elapsed().as_millis() as u64,
            transfers_interrupted: interrupted,
            sessions_active: self.config.sessions.len() as u64,
        };
        self.config.obs.event_unstable(
            "admin.drained",
            vec![
                kv("clean", report.clean),
                kv("waited_ms", report.waited_ms),
                kv("interrupted", report.transfers_interrupted),
            ],
        );
        report
    }

    /// Stop accepting new sessions (existing sessions run to completion).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        if let Some(wake) = self.wake.lock().unwrap().as_ref() {
            wake.wake();
        }
        // Unblocks the threaded accept loop (harmless no-op connection
        // under the reactor, which checks the stop flag on wakeup).
        let _ = std::net::TcpStream::connect(self.addr.to_socket_addr());
    }
}

/// The portable core: one blocking accept loop, one thread per session.
fn start_threaded(server: &Arc<GridFtpServer>, listener: TcpListener) -> Result<()> {
    let server2 = Arc::clone(server);
    std::thread::Builder::new()
        .name("ig-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if server2.stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if server2.draining.load(Ordering::SeqCst) {
                            // Draining: shed new connections (the socket
                            // drop is the refusal) while in-flight
                            // transfers quiesce.
                            drop(s);
                            continue;
                        }
                        let cfg = Arc::clone(&server2.config);
                        let session_seed = server2.seed.fetch_add(1, Ordering::SeqCst);
                        let spawned = std::thread::Builder::new()
                            .name("ig-session".into())
                            .spawn(move || {
                                let rng = StdRng::seed_from_u64(session_seed);
                                let link: Box<dyn Link> = Box::new(TcpLink::new(s));
                                let _ = run_session(link, cfg, rng);
                            });
                        if spawned.is_err() {
                            // Out of threads: shed this connection (the
                            // socket drop is the refusal) and count it
                            // rather than tearing the server down.
                            server2
                                .config
                                .obs
                                .metrics()
                                .counter("server.spawn_failures")
                                .inc();
                        }
                    }
                    Err(_) => break,
                }
            }
        })
        .map_err(|e| ServerError::Spawn(format!("accept loop: {e}")))?;
    Ok(())
}

impl Drop for GridFtpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run a single session over an arbitrary [`Link`] (in-process pipes) —
/// used by tests and the simulator without touching real sockets.
pub fn serve_link<R: Rng + Send + 'static>(
    link: Box<dyn Link>,
    config: Arc<ServerConfig>,
    rng: R,
) -> std::thread::JoinHandle<Result<()>> {
    std::thread::spawn(move || run_session(link, config, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authz::GcmuAuthz;
    use crate::dsi::memory::MemDsi;
    use ig_gsi::context::test_support::ca_and_credential;
    use ig_pki::time::Clock;
    use ig_pki::TrustStore;
    use ig_protocol::Reply;

    fn test_config() -> ServerConfig {
        let mut rng = ig_crypto::rng::seeded(500);
        let (ca, cred) = ca_and_credential(&mut rng, "/O=Host CA", "/CN=ep.example.org");
        let mut trust = TrustStore::new();
        trust.add_root(ca.root_cert().clone());
        ServerConfig::new(
            "ep.example.org",
            cred,
            trust,
            Arc::new(GcmuAuthz::new("ep.example.org")),
            Arc::new(MemDsi::new()),
        )
        .with_clock(Clock::Fixed(1000))
    }

    fn roundtrip(link: &mut Box<dyn Link>, cmd: &str) -> Reply {
        link.send(cmd.as_bytes()).unwrap();
        Reply::parse(&String::from_utf8(link.recv().unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn banner_feat_noop_quit_over_pipe() {
        let (a, b) = ig_xio::pipe();
        let mut client: Box<dyn Link> = Box::new(a);
        let handle = serve_link(Box::new(b), Arc::new(test_config()), ig_crypto::rng::seeded(1));
        let banner = Reply::parse(&String::from_utf8(client.recv().unwrap()).unwrap()).unwrap();
        assert_eq!(banner.code, 220);
        let feat = roundtrip(&mut client, "FEAT");
        assert_eq!(feat.code, 211);
        assert!(feat.lines.iter().any(|l| l.contains("DCSC")));
        let noop = roundtrip(&mut client, "NOOP");
        assert_eq!(noop.code, 200);
        // Unauthenticated data command refused.
        let retr = roundtrip(&mut client, "RETR /x");
        assert_eq!(retr.code, 530);
        // Garbage command gets 500, not a hangup.
        let bad = roundtrip(&mut client, "TYPE Q");
        assert_eq!(bad.code, 500);
        let bye = roundtrip(&mut client, "QUIT");
        assert_eq!(bye.code, 221);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn legacy_server_rejects_dcsc_in_feat() {
        let (a, b) = ig_xio::pipe();
        let mut client: Box<dyn Link> = Box::new(a);
        let cfg = test_config().legacy();
        let handle = serve_link(Box::new(b), Arc::new(cfg), ig_crypto::rng::seeded(2));
        let _banner = client.recv().unwrap();
        let feat = roundtrip(&mut client, "FEAT");
        assert!(!feat.lines.iter().any(|l| l.contains("DCSC")));
        let bye = roundtrip(&mut client, "QUIT");
        assert_eq!(bye.code, 221);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn tcp_server_starts_and_stops() {
        let server = GridFtpServer::start(test_config(), 42).unwrap();
        let addr = server.addr();
        let mut link = TcpLink::connect(addr.to_socket_addr()).unwrap();
        let banner = Reply::parse(&String::from_utf8(link.recv().unwrap()).unwrap()).unwrap();
        assert_eq!(banner.code, 220);
        link.send(b"QUIT").unwrap();
        let bye = Reply::parse(&String::from_utf8(link.recv().unwrap()).unwrap()).unwrap();
        assert_eq!(bye.code, 221);
        server.shutdown();
    }

    #[test]
    fn adat_without_auth_rejected() {
        let (a, b) = ig_xio::pipe();
        let mut client: Box<dyn Link> = Box::new(a);
        let handle = serve_link(Box::new(b), Arc::new(test_config()), ig_crypto::rng::seeded(3));
        let _ = client.recv().unwrap();
        let r = roundtrip(&mut client, "ADAT aGVsbG8=");
        assert_eq!(r.code, 503);
        let r = roundtrip(&mut client, "AUTH KERBEROS");
        assert_eq!(r.code, 504);
        roundtrip(&mut client, "QUIT");
        handle.join().unwrap().unwrap();
    }
}
