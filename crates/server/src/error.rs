//! Server error taxonomy.

use std::fmt;

/// Errors raised inside the server stack. Most become FTP error replies
/// at the session boundary rather than tearing the session down.
#[derive(Debug)]
pub enum ServerError {
    /// Storage-layer failure (missing file, permissions...).
    Storage(String),
    /// Access denied by the user context or authorization callout.
    AccessDenied(String),
    /// Authentication failed.
    AuthFailed(String),
    /// Authorization (identity → local user) failed.
    AuthzFailed(String),
    /// Data-channel establishment or transfer failure.
    Data(String),
    /// An idle/read deadline expired (partitioned or stalled peer).
    Timeout(String),
    /// The transfer ended before all expected data arrived.
    Truncated(String),
    /// Data arrived but failed structural or integrity checks.
    Corrupt(String),
    /// Protocol violation by the peer.
    Protocol(ig_protocol::ProtocolError),
    /// Security-layer failure.
    Gsi(ig_gsi::GsiError),
    /// PKI failure.
    Pki(ig_pki::PkiError),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The OS refused to spawn a worker thread (resource exhaustion).
    /// Previously these sites panicked or silently discarded the
    /// failure; now they surface here and in the
    /// `server.spawn_failures` counter.
    Spawn(String),
    /// The requested feature is unavailable on this platform (e.g. the
    /// epoll reactor core off Linux).
    Unsupported(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Storage(m) => write!(f, "storage: {m}"),
            ServerError::AccessDenied(m) => write!(f, "access denied: {m}"),
            ServerError::AuthFailed(m) => write!(f, "authentication failed: {m}"),
            ServerError::AuthzFailed(m) => write!(f, "authorization failed: {m}"),
            ServerError::Data(m) => write!(f, "data channel: {m}"),
            ServerError::Timeout(m) => write!(f, "timeout: {m}"),
            ServerError::Truncated(m) => write!(f, "truncated: {m}"),
            ServerError::Corrupt(m) => write!(f, "corrupt: {m}"),
            ServerError::Protocol(e) => write!(f, "protocol: {e}"),
            ServerError::Gsi(e) => write!(f, "security: {e}"),
            ServerError::Pki(e) => write!(f, "pki: {e}"),
            ServerError::Io(e) => write!(f, "io: {e}"),
            ServerError::Spawn(m) => write!(f, "thread spawn: {m}"),
            ServerError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Protocol(e) => Some(e),
            ServerError::Gsi(e) => Some(e),
            ServerError::Pki(e) => Some(e),
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ig_protocol::ProtocolError> for ServerError {
    fn from(e: ig_protocol::ProtocolError) -> Self {
        ServerError::Protocol(e)
    }
}

impl From<ig_gsi::GsiError> for ServerError {
    fn from(e: ig_gsi::GsiError) -> Self {
        ServerError::Gsi(e)
    }
}

impl From<ig_pki::PkiError> for ServerError {
    fn from(e: ig_pki::PkiError) -> Self {
        ServerError::Pki(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        assert!(ServerError::Storage("no file".into()).to_string().contains("no file"));
        let e = ServerError::from(ig_pki::PkiError::UntrustedIssuer("x".into()));
        assert!(e.source().is_some());
        let e = ServerError::from(std::io::Error::new(std::io::ErrorKind::Other, "boom"));
        assert!(e.to_string().contains("boom"));
    }
}
