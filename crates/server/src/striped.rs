//! Striped-transfer planning.
//!
//! Fig 2's striped deployment puts "one server PI on the head node of a
//! cluster and a DTP on all other nodes". In this implementation the
//! stripes live in one process (threads with per-stripe throttles — see
//! [`crate::config::ServerConfig::with_stripes`]), but the *data-layout*
//! planning is identical to the real striped server: the file is carved
//! into per-stripe block ranges by round-robin over block index.

/// The block ranges stripe `stripe` of `stripes` handles for a file of
/// `size` bytes in `block_size` blocks: every block whose index is
/// congruent to `stripe` (mod `stripes`).
pub fn stripe_ranges(
    size: u64,
    block_size: u64,
    stripe: usize,
    stripes: usize,
) -> Vec<(u64, u64)> {
    assert!(stripes > 0 && stripe < stripes, "stripe index out of range");
    assert!(block_size > 0, "block size must be positive");
    let mut out = Vec::new();
    let mut block = stripe as u64;
    loop {
        let start = block * block_size;
        if start >= size {
            break;
        }
        let end = (start + block_size).min(size);
        out.push((start, end));
        block += stripes as u64;
    }
    out
}

/// Total bytes across a stripe plan (sanity metric).
pub fn plan_bytes(ranges: &[(u64, u64)]) -> u64 {
    ranges.iter().map(|(s, e)| e - s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stripe_gets_everything() {
        let r = stripe_ranges(1000, 100, 0, 1);
        assert_eq!(plan_bytes(&r), 1000);
        assert_eq!(r.first(), Some(&(0, 100)));
        assert_eq!(r.last(), Some(&(900, 1000)));
    }

    #[test]
    fn stripes_partition_exactly() {
        let size = 10_000u64;
        let block = 256u64;
        for stripes in [2usize, 3, 4, 8] {
            let mut covered = ig_protocol::ByteRanges::new();
            let mut total = 0;
            for s in 0..stripes {
                let plan = stripe_ranges(size, block, s, stripes);
                total += plan_bytes(&plan);
                for (a, b) in plan {
                    covered.add(a, b);
                }
            }
            assert_eq!(total, size, "stripes={stripes}");
            assert!(covered.is_complete(size), "stripes={stripes}");
        }
    }

    #[test]
    fn uneven_tail_block() {
        // 1050 bytes, 100-byte blocks, 4 stripes: stripe 2 gets block 2
        // (200..300) and block 6 (600..700) and block 10 (1000..1050).
        let r = stripe_ranges(1050, 100, 2, 4);
        assert_eq!(r, vec![(200, 300), (600, 700), (1000, 1050)]);
    }

    #[test]
    fn empty_file() {
        assert!(stripe_ranges(0, 100, 0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "stripe index")]
    fn bad_stripe_index() {
        stripe_ranges(100, 10, 4, 4);
    }
}
