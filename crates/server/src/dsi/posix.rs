//! POSIX DSI backend: virtual paths rooted at a real directory.
//!
//! "POSIX-compliant file systems" are the paper's primary storage target
//! (§II-A). The virtual path space (`/home/<user>/...`) maps onto
//! `<base>/home/<user>/...` on disk; [`UserContext::resolve`] has already
//! normalized away any `..`, so the mapping cannot escape the base.

use super::{DirEntry, Dsi};
use crate::error::{Result, ServerError};
use crate::users::UserContext;
use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A DSI over a real directory tree.
pub struct PosixDsi {
    base: PathBuf,
}

impl PosixDsi {
    /// Root the virtual filesystem at `base` (created if missing).
    pub fn new<P: AsRef<Path>>(base: P) -> Result<Self> {
        fs::create_dir_all(&base)?;
        Ok(PosixDsi { base: base.as_ref().to_path_buf() })
    }

    fn real(&self, user: &UserContext, path: &str) -> Result<PathBuf> {
        let virt = user.resolve(path)?; // normalized absolute path, no `..`
        debug_assert!(!virt.contains("/../"));
        Ok(self.base.join(virt.trim_start_matches('/')))
    }
}

impl Dsi for PosixDsi {
    fn read(&self, user: &UserContext, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let p = self.real(user, path)?;
        let mut f = fs::File::open(&p)
            .map_err(|e| ServerError::Storage(format!("open {}: {e}", p.display())))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut read = 0usize;
        while read < len {
            let n = f.read(&mut buf[read..])?;
            if n == 0 {
                break;
            }
            read += n;
        }
        buf.truncate(read);
        Ok(buf)
    }

    fn write(&self, user: &UserContext, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        let p = self.real(user, path)?;
        if let Some(parent) = p.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&p)
            .map_err(|e| ServerError::Storage(format!("open {}: {e}", p.display())))?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)?;
        Ok(())
    }

    fn size(&self, user: &UserContext, path: &str) -> Result<u64> {
        let p = self.real(user, path)?;
        let meta = fs::metadata(&p)
            .map_err(|e| ServerError::Storage(format!("stat {}: {e}", p.display())))?;
        Ok(meta.len())
    }

    fn truncate(&self, user: &UserContext, path: &str, len: u64) -> Result<()> {
        let p = self.real(user, path)?;
        if let Some(parent) = p.parent() {
            fs::create_dir_all(parent)?;
        }
        let f = OpenOptions::new().create(true).write(true).truncate(false).open(&p)?;
        f.set_len(len)?;
        Ok(())
    }

    fn delete(&self, user: &UserContext, path: &str) -> Result<()> {
        let p = self.real(user, path)?;
        fs::remove_file(&p).map_err(|e| ServerError::Storage(format!("rm {}: {e}", p.display())))
    }

    fn list(&self, user: &UserContext, path: &str) -> Result<Vec<DirEntry>> {
        let p = self.real(user, path)?;
        let mut out = Vec::new();
        for entry in
            fs::read_dir(&p).map_err(|e| ServerError::Storage(format!("ls {}: {e}", p.display())))?
        {
            let entry = entry?;
            let meta = entry.metadata()?;
            out.push(DirEntry {
                name: entry.file_name().to_string_lossy().into_owned(),
                size: if meta.is_dir() { 0 } else { meta.len() },
                is_dir: meta.is_dir(),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn mkdir(&self, user: &UserContext, path: &str) -> Result<()> {
        let p = self.real(user, path)?;
        fs::create_dir_all(&p)?;
        Ok(())
    }

    fn rmdir(&self, user: &UserContext, path: &str) -> Result<()> {
        let p = self.real(user, path)?;
        fs::remove_dir(&p)
            .map_err(|e| ServerError::Storage(format!("rmdir {}: {e}", p.display())))
    }

    fn exists(&self, user: &UserContext, path: &str) -> bool {
        match self.real(user, path) {
            Ok(p) => p.exists(),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> (PosixDsi, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ig-posix-dsi-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        (PosixDsi::new(&dir).unwrap(), dir)
    }

    #[test]
    fn write_read_roundtrip() {
        let (dsi, dir) = tmp();
        let u = UserContext::superuser();
        dsi.write(&u, "/data/f.bin", 0, b"posix bytes").unwrap();
        assert_eq!(dsi.read(&u, "/data/f.bin", 0, 64).unwrap(), b"posix bytes");
        assert_eq!(dsi.read(&u, "/data/f.bin", 6, 5).unwrap(), b"bytes");
        assert_eq!(dsi.size(&u, "/data/f.bin").unwrap(), 11);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn sparse_offset_writes() {
        let (dsi, dir) = tmp();
        let u = UserContext::superuser();
        dsi.write(&u, "/f", 4, b"5678").unwrap();
        dsi.write(&u, "/f", 0, b"1234").unwrap();
        assert_eq!(dsi.read(&u, "/f", 0, 8).unwrap(), b"12345678");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn listing_and_dirs() {
        let (dsi, dir) = tmp();
        let u = UserContext::superuser();
        dsi.write(&u, "/d/a.txt", 0, b"a").unwrap();
        dsi.mkdir(&u, "/d/sub").unwrap();
        let names: Vec<String> =
            dsi.list(&u, "/d").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a.txt", "sub"]);
        assert!(dsi.exists(&u, "/d/sub"));
        dsi.rmdir(&u, "/d/sub").unwrap();
        assert!(!dsi.exists(&u, "/d/sub"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn delete_and_errors() {
        let (dsi, dir) = tmp();
        let u = UserContext::superuser();
        assert!(dsi.read(&u, "/missing", 0, 1).is_err());
        dsi.write(&u, "/gone.txt", 0, b"x").unwrap();
        dsi.delete(&u, "/gone.txt").unwrap();
        assert!(dsi.delete(&u, "/gone.txt").is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn user_confinement_on_disk() {
        let (dsi, dir) = tmp();
        let root = UserContext::superuser();
        dsi.write(&root, "/home/bob/secret", 0, b"s").unwrap();
        let alice = UserContext::user("alice");
        assert!(dsi.read(&alice, "/home/bob/secret", 0, 1).is_err());
        assert!(dsi.write(&alice, "../bob/x", 0, b"no").is_err());
        dsi.write(&alice, "ok.txt", 0, b"fine").unwrap();
        assert!(dir.join("home/alice/ok.txt").exists());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn truncate_grows_and_shrinks() {
        let (dsi, dir) = tmp();
        let u = UserContext::superuser();
        dsi.write(&u, "/t", 0, b"abcdef").unwrap();
        dsi.truncate(&u, "/t", 3).unwrap();
        assert_eq!(dsi.size(&u, "/t").unwrap(), 3);
        dsi.truncate(&u, "/t", 10).unwrap();
        assert_eq!(dsi.size(&u, "/t").unwrap(), 10);
        assert_eq!(dsi.read(&u, "/t", 0, 10).unwrap(), b"abc\0\0\0\0\0\0\0");
        let _ = fs::remove_dir_all(dir);
    }
}
