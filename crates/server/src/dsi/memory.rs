//! In-memory DSI backend: the default for tests, benchmarks and the
//! in-process simulator (it stands in for HPSS-style non-POSIX stores —
//! anything addressable by (path, offset) works behind the DSI).

use super::{DirEntry, Dsi};
use crate::error::{Result, ServerError};
use crate::users::UserContext;
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet};

/// An in-memory filesystem.
#[derive(Default)]
pub struct MemDsi {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
    dirs: RwLock<BTreeSet<String>>,
}

impl MemDsi {
    /// Empty store with just the root directory.
    pub fn new() -> Self {
        let dsi = MemDsi::default();
        dsi.dirs.write().insert("/".to_string());
        dsi
    }

    /// Convenience: create a file with content, creating parent dirs
    /// (superuser; used to stage test fixtures).
    pub fn put(&self, path: &str, data: &[u8]) {
        let root = UserContext::superuser();
        let p = root.normalize(path).expect("valid path");
        self.ensure_parents(&p);
        self.files.write().insert(p, data.to_vec());
    }

    fn ensure_parents(&self, path: &str) {
        // Fast path: the immediate parent already exists, and every dir
        // is only ever inserted together with its ancestors, so the whole
        // chain does. Block-at-offset writes hit this on every block.
        let parent = match path.rfind('/') {
            Some(0) | None => "/",
            Some(i) => &path[..i],
        };
        if self.dirs.read().contains(parent) {
            return;
        }
        let mut dirs = self.dirs.write();
        let mut cur = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let next = format!("{cur}/{comp}");
            // Don't add the leaf itself; only parents.
            if next != path {
                dirs.insert(next.clone());
            }
            cur = next;
        }
        dirs.insert("/".to_string());
    }

}

impl Dsi for MemDsi {
    fn read(&self, user: &UserContext, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let p = user.resolve_ref(path)?;
        let files = self.files.read();
        let data = files
            .get(p.as_ref())
            .ok_or_else(|| ServerError::Storage(format!("no such file: {p}")))?;
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn write(&self, user: &UserContext, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        fn splice(file: &mut Vec<u8>, offset: usize, data: &[u8]) {
            let end = offset + data.len();
            if file.len() < end {
                file.resize(end, 0);
            }
            file[offset..end].copy_from_slice(data);
        }
        let p = user.resolve_ref(path)?;
        if self.dirs.read().contains(p.as_ref()) {
            return Err(ServerError::Storage(format!("{p} is a directory")));
        }
        self.ensure_parents(&p);
        let mut files = self.files.write();
        // Steady-state block writes extend an existing file: no key
        // allocation, just the (amortized) file growth.
        if let Some(file) = files.get_mut(p.as_ref()) {
            splice(file, offset as usize, data);
        } else {
            splice(files.entry(p.into_owned()).or_default(), offset as usize, data);
        }
        Ok(())
    }

    fn size(&self, user: &UserContext, path: &str) -> Result<u64> {
        let p = user.resolve_ref(path)?;
        self.files
            .read()
            .get(p.as_ref())
            .map(|d| d.len() as u64)
            .ok_or_else(|| ServerError::Storage(format!("no such file: {p}")))
    }

    fn truncate(&self, user: &UserContext, path: &str, len: u64) -> Result<()> {
        let p = user.resolve(path)?;
        self.ensure_parents(&p);
        let mut files = self.files.write();
        files.entry(p).or_default().resize(len as usize, 0);
        Ok(())
    }

    fn delete(&self, user: &UserContext, path: &str) -> Result<()> {
        let p = user.resolve(path)?;
        self.files
            .write()
            .remove(&p)
            .map(|_| ())
            .ok_or_else(|| ServerError::Storage(format!("no such file: {p}")))
    }

    fn list(&self, user: &UserContext, path: &str) -> Result<Vec<DirEntry>> {
        let p = user.resolve(path)?;
        let dirs = self.dirs.read();
        let files = self.files.read();
        if !dirs.contains(&p) {
            return Err(ServerError::Storage(format!("no such directory: {p}")));
        }
        let prefix = if p == "/" { "/".to_string() } else { format!("{p}/") };
        let mut out = Vec::new();
        for (fp, data) in files.iter() {
            if let Some(rest) = fp.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    out.push(DirEntry { name: rest.to_string(), size: data.len() as u64, is_dir: false });
                }
            }
        }
        for dp in dirs.iter() {
            if let Some(rest) = dp.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    out.push(DirEntry { name: rest.to_string(), size: 0, is_dir: true });
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn mkdir(&self, user: &UserContext, path: &str) -> Result<()> {
        let p = user.resolve(path)?;
        self.ensure_parents(&p);
        self.dirs.write().insert(p);
        Ok(())
    }

    fn rmdir(&self, user: &UserContext, path: &str) -> Result<()> {
        let p = user.resolve(path)?;
        if p == "/" {
            return Err(ServerError::Storage("cannot remove root".into()));
        }
        // Must be empty.
        let prefix = format!("{p}/");
        if self.files.read().keys().any(|f| f.starts_with(&prefix))
            || self.dirs.read().iter().any(|d| d.starts_with(&prefix))
        {
            return Err(ServerError::Storage(format!("directory not empty: {p}")));
        }
        self.dirs
            .write()
            .remove(&p)
            .then_some(())
            .ok_or_else(|| ServerError::Storage(format!("no such directory: {p}")))
    }

    fn exists(&self, user: &UserContext, path: &str) -> bool {
        match user.resolve_ref(path) {
            Ok(p) => {
                self.files.read().contains_key(p.as_ref()) || self.dirs.read().contains(p.as_ref())
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> UserContext {
        UserContext::superuser()
    }

    #[test]
    fn write_read_roundtrip() {
        let dsi = MemDsi::new();
        let u = root();
        dsi.write(&u, "/data/file.bin", 0, b"hello world").unwrap();
        assert_eq!(dsi.size(&u, "/data/file.bin").unwrap(), 11);
        assert_eq!(dsi.read(&u, "/data/file.bin", 0, 100).unwrap(), b"hello world");
        assert_eq!(dsi.read(&u, "/data/file.bin", 6, 5).unwrap(), b"world");
        assert_eq!(dsi.read(&u, "/data/file.bin", 100, 5).unwrap(), b"");
    }

    #[test]
    fn offset_writes_zero_fill() {
        let dsi = MemDsi::new();
        let u = root();
        dsi.write(&u, "/f", 5, b"xyz").unwrap();
        assert_eq!(dsi.size(&u, "/f").unwrap(), 8);
        assert_eq!(dsi.read(&u, "/f", 0, 8).unwrap(), b"\0\0\0\0\0xyz");
        // Out-of-order block writes (MODE E reassembly pattern).
        dsi.write(&u, "/g", 4, b"5678").unwrap();
        dsi.write(&u, "/g", 0, b"1234").unwrap();
        assert_eq!(dsi.read(&u, "/g", 0, 8).unwrap(), b"12345678");
    }

    #[test]
    fn missing_file_errors() {
        let dsi = MemDsi::new();
        let u = root();
        assert!(dsi.read(&u, "/nope", 0, 1).is_err());
        assert!(dsi.size(&u, "/nope").is_err());
        assert!(dsi.delete(&u, "/nope").is_err());
    }

    #[test]
    fn delete_and_truncate() {
        let dsi = MemDsi::new();
        let u = root();
        dsi.put("/a/b.txt", b"abc");
        dsi.truncate(&u, "/a/b.txt", 1).unwrap();
        assert_eq!(dsi.read(&u, "/a/b.txt", 0, 10).unwrap(), b"a");
        dsi.truncate(&u, "/a/b.txt", 4).unwrap();
        assert_eq!(dsi.size(&u, "/a/b.txt").unwrap(), 4);
        dsi.delete(&u, "/a/b.txt").unwrap();
        assert!(!dsi.exists(&u, "/a/b.txt"));
    }

    #[test]
    fn listings() {
        let dsi = MemDsi::new();
        let u = root();
        dsi.put("/d/one.txt", b"1");
        dsi.put("/d/two.txt", b"22");
        dsi.mkdir(&u, "/d/sub").unwrap();
        let entries = dsi.list(&u, "/d").unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["one.txt", "sub", "two.txt"]);
        assert!(entries.iter().find(|e| e.name == "sub").unwrap().is_dir);
        assert_eq!(entries.iter().find(|e| e.name == "two.txt").unwrap().size, 2);
        // Root listing sees /d.
        let rootl = dsi.list(&u, "/").unwrap();
        assert!(rootl.iter().any(|e| e.name == "d" && e.is_dir));
        assert!(dsi.list(&u, "/nodir").is_err());
    }

    #[test]
    fn rmdir_semantics() {
        let dsi = MemDsi::new();
        let u = root();
        dsi.mkdir(&u, "/x/y").unwrap();
        assert!(dsi.rmdir(&u, "/x").is_err()); // not empty
        dsi.rmdir(&u, "/x/y").unwrap();
        dsi.rmdir(&u, "/x").unwrap();
        assert!(dsi.rmdir(&u, "/x").is_err()); // gone
        assert!(dsi.rmdir(&u, "/").is_err());
    }

    #[test]
    fn user_confinement_enforced() {
        let dsi = MemDsi::new();
        dsi.put("/home/alice/mine.txt", b"a");
        dsi.put("/home/bob/theirs.txt", b"b");
        let alice = UserContext::user("alice");
        assert_eq!(dsi.read(&alice, "mine.txt", 0, 10).unwrap(), b"a");
        assert!(dsi.read(&alice, "/home/bob/theirs.txt", 0, 10).is_err());
        assert!(dsi.write(&alice, "/home/bob/evil.txt", 0, b"x").is_err());
        assert!(!dsi.exists(&alice, "/home/bob/theirs.txt"));
    }

    #[test]
    fn write_to_directory_rejected() {
        let dsi = MemDsi::new();
        let u = root();
        dsi.mkdir(&u, "/d").unwrap();
        assert!(dsi.write(&u, "/d", 0, b"x").is_err());
    }
}
