//! The Data Storage Interface.
//!
//! "Its modular architecture enables a standard GridFTP-compliant client
//! access to any storage system that can implement its data storage
//! interface" (§II-A). Backends implement [`Dsi`]; the DTP never touches
//! storage directly.

pub mod memory;
pub mod posix;

use crate::error::Result;
use crate::users::UserContext;

/// A directory entry for listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (not full path).
    pub name: String,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Is this a directory?
    pub is_dir: bool,
}

impl DirEntry {
    /// MLSD fact line for this entry.
    pub fn to_mlsd(&self) -> String {
        format!(
            "type={};size={}; {}",
            if self.is_dir { "dir" } else { "file" },
            self.size,
            self.name
        )
    }
}

/// The storage backend interface. All paths are user-relative or
/// absolute; implementations must route every access through
/// [`UserContext::resolve`] so confinement is uniform.
pub trait Dsi: Send + Sync {
    /// Read up to `len` bytes at `offset`. Short reads only at EOF.
    fn read(&self, user: &UserContext, path: &str, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Write `data` at `offset`, extending (zero-filling) as needed.
    fn write(&self, user: &UserContext, path: &str, offset: u64, data: &[u8]) -> Result<()>;

    /// File size.
    fn size(&self, user: &UserContext, path: &str) -> Result<u64>;

    /// Truncate/create a file to exactly `len` bytes.
    fn truncate(&self, user: &UserContext, path: &str, len: u64) -> Result<()>;

    /// Delete a file.
    fn delete(&self, user: &UserContext, path: &str) -> Result<()>;

    /// List a directory.
    fn list(&self, user: &UserContext, path: &str) -> Result<Vec<DirEntry>>;

    /// Create a directory (parents created as needed).
    fn mkdir(&self, user: &UserContext, path: &str) -> Result<()>;

    /// Remove an empty directory.
    fn rmdir(&self, user: &UserContext, path: &str) -> Result<()>;

    /// Does the path exist (as file or directory)?
    fn exists(&self, user: &UserContext, path: &str) -> bool;
}

/// One entry of a recursive walk; `rel_path` is `/`-separated and
/// relative to the walk root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkEntry {
    /// Path relative to the walk root.
    pub rel_path: String,
    /// Directory (true) or regular file (false).
    pub is_dir: bool,
    /// File size in bytes (0 for directories).
    pub size: u64,
}

/// Join a DSI path and a child name without doubling separators.
fn join(base: &str, name: &str) -> String {
    if base.ends_with('/') {
        format!("{base}{name}")
    } else {
        format!("{base}/{name}")
    }
}

/// Recursively walk `root` in sorted depth-first pre-order: children
/// sorted by name, each directory emitted before its contents, the root
/// itself excluded. The order is deterministic for a given tree, which
/// is what lets a directory-stream receiver resume at entry N — sender
/// and receiver agree on which entry N is.
pub fn walk(dsi: &dyn Dsi, user: &UserContext, root: &str) -> Result<Vec<WalkEntry>> {
    fn walk_into(
        dsi: &dyn Dsi,
        user: &UserContext,
        abs: &str,
        rel: &str,
        out: &mut Vec<WalkEntry>,
    ) -> Result<()> {
        let mut entries = dsi.list(user, abs)?;
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for e in entries {
            let child_abs = join(abs, &e.name);
            let child_rel =
                if rel.is_empty() { e.name.clone() } else { format!("{rel}/{}", e.name) };
            if e.is_dir {
                out.push(WalkEntry { rel_path: child_rel.clone(), is_dir: true, size: 0 });
                walk_into(dsi, user, &child_abs, &child_rel, out)?;
            } else {
                out.push(WalkEntry { rel_path: child_rel, is_dir: false, size: e.size });
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk_into(dsi, user, root, "", &mut out)?;
    Ok(out)
}

/// Result of expanding a received directory stream into storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandOutcome {
    /// Complete entries expanded (the file-granular resume point).
    pub entries: u64,
    /// True if the stream's end marker arrived with a matching count.
    pub finished: bool,
    /// Framing violation that stopped decoding, if any.
    pub error: Option<String>,
}

/// Decode a directory-stream byte prefix and expand every *complete*
/// entry under `root` (created first). Expansion is idempotent —
/// directories are re-`mkdir`ed and files truncated-then-written — so
/// replaying entries after a lost reply is safe. Storage failures
/// propagate as `Err`; framing violations land in
/// [`ExpandOutcome::error`] with the good prefix already expanded.
pub fn expand_stream(
    dsi: &dyn Dsi,
    user: &UserContext,
    root: &str,
    data: &[u8],
) -> Result<ExpandOutcome> {
    use ig_protocol::stream_dir::{DirEvent, DirStreamDecoder};
    dsi.mkdir(user, root)?;
    let mut dec = DirStreamDecoder::new();
    for event in dec.push(data) {
        match event {
            DirEvent::Dir(entry) => dsi.mkdir(user, &join(root, &entry.path))?,
            DirEvent::File(entry, payload) => {
                let path = join(root, &entry.path);
                dsi.truncate(user, &path, 0)?;
                if !payload.is_empty() {
                    dsi.write(user, &path, 0, &payload)?;
                }
            }
            DirEvent::End { .. } => {}
        }
    }
    Ok(ExpandOutcome {
        entries: dec.entries_done(),
        finished: dec.finished(),
        error: dec.error().map(|e| e.to_string()),
    })
}

/// Read a whole file through a DSI in `chunk`-sized reads.
pub fn read_all(dsi: &dyn Dsi, user: &UserContext, path: &str, chunk: usize) -> Result<Vec<u8>> {
    let size = dsi.size(user, path)?;
    let mut out = Vec::with_capacity(size as usize);
    let mut offset = 0u64;
    while offset < size {
        let want = chunk.min((size - offset) as usize);
        let part = dsi.read(user, path, offset, want)?;
        if part.is_empty() {
            break;
        }
        offset += part.len() as u64;
        out.extend_from_slice(&part);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::memory::MemDsi;
    use super::*;
    use ig_protocol::stream_dir::{encode_tree, StreamEntry};

    #[test]
    fn mlsd_format() {
        let f = DirEntry { name: "data.bin".into(), size: 1024, is_dir: false };
        assert_eq!(f.to_mlsd(), "type=file;size=1024; data.bin");
        let d = DirEntry { name: "sub".into(), size: 0, is_dir: true };
        assert_eq!(d.to_mlsd(), "type=dir;size=0; sub");
    }

    fn sample() -> MemDsi {
        let dsi = MemDsi::new();
        dsi.put("/tree/b.bin", b"bbbb");
        dsi.put("/tree/a/one", b"1");
        dsi.put("/tree/a/two", b"22");
        dsi.put("/tree/c/deep/leaf", b"leafleaf");
        let root = UserContext::superuser();
        dsi.mkdir(&root, "/tree/empty").unwrap();
        dsi
    }

    #[test]
    fn walk_is_sorted_preorder_with_dirs_first() {
        let dsi = sample();
        let root = UserContext::superuser();
        let got: Vec<(String, bool, u64)> = walk(&dsi, &root, "/tree")
            .unwrap()
            .into_iter()
            .map(|e| (e.rel_path, e.is_dir, e.size))
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), true, 0),
                ("a/one".into(), false, 1),
                ("a/two".into(), false, 2),
                ("b.bin".into(), false, 4),
                ("c".into(), true, 0),
                ("c/deep".into(), true, 0),
                ("c/deep/leaf".into(), false, 8),
                ("empty".into(), true, 0),
            ]
        );
    }

    #[test]
    fn walk_missing_root_errors() {
        let dsi = MemDsi::new();
        let root = UserContext::superuser();
        assert!(walk(&dsi, &root, "/nope").is_err());
    }

    #[test]
    fn expand_stream_roundtrips_a_walked_tree() {
        let src = sample();
        let root = UserContext::superuser();
        let entries = walk(&src, &root, "/tree").unwrap();
        let items: Vec<(StreamEntry, Vec<u8>)> = entries
            .iter()
            .map(|e| {
                if e.is_dir {
                    (StreamEntry::dir(e.rel_path.clone()), Vec::new())
                } else {
                    let data = read_all(&src, &root, &join("/tree", &e.rel_path), 4096).unwrap();
                    (StreamEntry::file(e.rel_path.clone(), e.size), data)
                }
            })
            .collect();
        let wire = encode_tree(&items).unwrap();

        let dst = MemDsi::new();
        let out = expand_stream(&dst, &root, "/copy", &wire).unwrap();
        assert_eq!(out, ExpandOutcome { entries: 8, finished: true, error: None });
        // Same walk, same bytes on the other side.
        assert_eq!(walk(&dst, &root, "/copy").unwrap(), entries);
        assert_eq!(read_all(&dst, &root, "/copy/c/deep/leaf", 16).unwrap(), b"leafleaf");
        assert_eq!(read_all(&dst, &root, "/copy/a/two", 16).unwrap(), b"22");
        // Idempotent: expanding the same stream again changes nothing.
        let again = expand_stream(&dst, &root, "/copy", &wire).unwrap();
        assert_eq!(again.entries, 8);
        assert_eq!(walk(&dst, &root, "/copy").unwrap(), entries);
    }

    #[test]
    fn expand_stream_truncated_prefix_is_partial_not_error() {
        let src = sample();
        let root = UserContext::superuser();
        let entries = walk(&src, &root, "/tree").unwrap();
        let items: Vec<(StreamEntry, Vec<u8>)> = entries
            .iter()
            .map(|e| {
                if e.is_dir {
                    (StreamEntry::dir(e.rel_path.clone()), Vec::new())
                } else {
                    let data = read_all(&src, &root, &join("/tree", &e.rel_path), 4096).unwrap();
                    (StreamEntry::file(e.rel_path.clone(), e.size), data)
                }
            })
            .collect();
        let wire = encode_tree(&items).unwrap();
        let dst = MemDsi::new();
        let out = expand_stream(&dst, &root, "/part", &wire[..wire.len() / 2]).unwrap();
        assert!(!out.finished);
        assert!(out.error.is_none());
        assert!(out.entries > 0 && out.entries < 8);
        // Every expanded file is complete — that is the resume guarantee.
        for e in entries.iter().take(out.entries as usize) {
            if !e.is_dir {
                assert_eq!(
                    dst.size(&root, &join("/part", &e.rel_path)).unwrap(),
                    e.size,
                    "partial file {} leaked into the tree",
                    e.rel_path
                );
            }
        }
    }
}
