//! The Data Storage Interface.
//!
//! "Its modular architecture enables a standard GridFTP-compliant client
//! access to any storage system that can implement its data storage
//! interface" (§II-A). Backends implement [`Dsi`]; the DTP never touches
//! storage directly.

pub mod memory;
pub mod posix;

use crate::error::Result;
use crate::users::UserContext;

/// A directory entry for listings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (not full path).
    pub name: String,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Is this a directory?
    pub is_dir: bool,
}

impl DirEntry {
    /// MLSD fact line for this entry.
    pub fn to_mlsd(&self) -> String {
        format!(
            "type={};size={}; {}",
            if self.is_dir { "dir" } else { "file" },
            self.size,
            self.name
        )
    }
}

/// The storage backend interface. All paths are user-relative or
/// absolute; implementations must route every access through
/// [`UserContext::resolve`] so confinement is uniform.
pub trait Dsi: Send + Sync {
    /// Read up to `len` bytes at `offset`. Short reads only at EOF.
    fn read(&self, user: &UserContext, path: &str, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Write `data` at `offset`, extending (zero-filling) as needed.
    fn write(&self, user: &UserContext, path: &str, offset: u64, data: &[u8]) -> Result<()>;

    /// File size.
    fn size(&self, user: &UserContext, path: &str) -> Result<u64>;

    /// Truncate/create a file to exactly `len` bytes.
    fn truncate(&self, user: &UserContext, path: &str, len: u64) -> Result<()>;

    /// Delete a file.
    fn delete(&self, user: &UserContext, path: &str) -> Result<()>;

    /// List a directory.
    fn list(&self, user: &UserContext, path: &str) -> Result<Vec<DirEntry>>;

    /// Create a directory (parents created as needed).
    fn mkdir(&self, user: &UserContext, path: &str) -> Result<()>;

    /// Remove an empty directory.
    fn rmdir(&self, user: &UserContext, path: &str) -> Result<()>;

    /// Does the path exist (as file or directory)?
    fn exists(&self, user: &UserContext, path: &str) -> bool;
}

/// Read a whole file through a DSI in `chunk`-sized reads.
pub fn read_all(dsi: &dyn Dsi, user: &UserContext, path: &str, chunk: usize) -> Result<Vec<u8>> {
    let size = dsi.size(user, path)?;
    let mut out = Vec::with_capacity(size as usize);
    let mut offset = 0u64;
    while offset < size {
        let want = chunk.min((size - offset) as usize);
        let part = dsi.read(user, path, offset, want)?;
        if part.is_empty() {
            break;
        }
        offset += part.len() as u64;
        out.extend_from_slice(&part);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlsd_format() {
        let f = DirEntry { name: "data.bin".into(), size: 1024, is_dir: false };
        assert_eq!(f.to_mlsd(), "type=file;size=1024; data.bin");
        let d = DirEntry { name: "sub".into(), size: 0, is_dir: true };
        assert_eq!(d.to_mlsd(), "type=dir;size=0; sub");
    }
}
