//! The event-driven server core: one epoll reactor thread multiplexing
//! every control session, plus a bounded sharded worker pool
//! ([`crate::pool`]) executing commands off the event loop.
//!
//! ## Why
//!
//! The threaded core parks one OS thread (stack, kernel bookkeeping,
//! scheduler load) per control session even when the session is idle —
//! and GridFTP control sessions are *mostly* idle: a client holds the
//! channel open across transfers, and hosted frontends hold thousands
//! of them. The reactor holds an idle session as one registered fd plus
//! a few hundred bytes of state, so a single thread carries a C10K+
//! population.
//!
//! ## Ownership discipline (the part that keeps this safe)
//!
//! A session's socket is owned by the reactor (inside [`NbFramed`]).
//! Exactly one of two parties may *write* to it at any moment:
//!
//! * **idle** — the reactor: greeting at accept, staged bytes in the
//!   `NbFramed` out-buffer (the idle-timeout 421), flushed on
//!   writability;
//! * **busy** — the pool worker running the session's
//!   [`Session::process_message`], through a send-only [`WriterLink`]
//!   that blocks (via `poll(2)`) on a full socket buffer.
//!
//! The reactor never dispatches while staged bytes remain, never stages
//! bytes while a worker is busy, and never closes the fd while a worker
//! holds it (`closing` defers the close to job completion). Reads stay
//! with the reactor throughout — reads and writes on one socket are
//! independent directions, so buffering inbound frames while a worker
//! writes a reply is sound.
//!
//! Commands of one session run strictly in arrival order: the reactor
//! dispatches at most one frame per session at a time and parks the
//! rest in a per-session queue, so pipelined clients see the same reply
//! order as on the threaded core (the differential tests hold both
//! cores to byte-equal transcripts).
//!
//! ## Determinism
//!
//! Session RNG seeds are assigned in *accept order* from the same
//! counter the threaded core uses, and the reactor emits no stable
//! trace events of its own (metrics and unstable events only), so a
//! seeded chaos run replays byte-identically on either core.

#![cfg(target_os = "linux")]

use crate::config::ServerConfig;
use crate::error::{Result, ServerError};
use crate::pool::ShardedPool;
use crate::session::{LoopControl, Session};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ig_protocol::Reply;
use ig_xio::link::MAX_FRAME;
use ig_xio::{wait_writable, DeadlineWheel, Epoll, Interest, Link, NbFramed, WakeFd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Write};
use std::mem::ManuallyDrop;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_SESSION_TOKEN: u64 = 2;

/// Idle-timeout wheel granularity. Control idle policies are
/// second-scale; 100ms ticks keep the sweep cheap at 10k+ sessions.
const WHEEL_TICK: Duration = Duration::from_millis(100);
const WHEEL_SLOTS: usize = 1024;

/// How long the reactor waits for in-flight jobs at shutdown.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------------
// WriterLink: the send-only Link a pool worker drives
// ---------------------------------------------------------------------------

/// A send-only [`Link`] over a *borrowed* socket fd.
///
/// `Session::process_message` only ever sends on the control link (all
/// receiving happens in the reactor), so workers get a writer that
/// speaks the same length-framed wire format as [`ig_xio::TcpLink`].
/// The fd is nonblocking (that flag lives on the file description the
/// reactor configured), so a full socket buffer surfaces as
/// `WouldBlock`; the worker then parks in `poll(2)` up to the stall
/// deadline rather than spinning.
struct WriterLink {
    /// Non-owning: `ManuallyDrop` suppresses the close-on-drop; the
    /// reactor's `NbFramed` owns the fd and outlives this link (the
    /// entry is never removed while its worker is busy).
    stream: ManuallyDrop<TcpStream>,
    stall: Duration,
}

impl WriterLink {
    /// Safety: `fd` must remain open for the lifetime of the link —
    /// guaranteed by the reactor's never-close-while-busy rule.
    unsafe fn from_raw(fd: RawFd, stall: Duration) -> WriterLink {
        WriterLink { stream: ManuallyDrop::new(TcpStream::from_raw_fd(fd)), stall }
    }

    fn write_all_waiting(&mut self, mut buf: &[u8]) -> io::Result<()> {
        while !buf.is_empty() {
            match (&*self.stream).write(buf) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "socket wrote 0"))
                }
                Ok(n) => buf = &buf[n..],
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !wait_writable(self.stream.as_raw_fd(), self.stall)? {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "control send stalled",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl Link for WriterLink {
    fn send(&mut self, data: &[u8]) -> io::Result<()> {
        if data.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame of {} bytes exceeds maximum", data.len()),
            ));
        }
        self.write_all_waiting(&(data.len() as u32).to_be_bytes())?;
        self.write_all_waiting(data)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "reactor control links are send-only; receives happen on the event loop",
        ))
    }

    fn close(&mut self) -> io::Result<()> {
        Ok(()) // the reactor owns the fd; closing is its decision
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// One command frame travelling to a pool worker; the session machine
/// and its writer travel along and come back in the [`Done`].
struct Job {
    token: u64,
    machine: Session<StdRng>,
    link: Box<dyn Link>,
    frame: Vec<u8>,
}

struct Done {
    token: u64,
    machine: Session<StdRng>,
    link: Box<dyn Link>,
    result: Result<LoopControl>,
}

// ---------------------------------------------------------------------------
// Per-session reactor state
// ---------------------------------------------------------------------------

struct Entry {
    conn: NbFramed,
    /// `None` while a worker holds the machine.
    machine: Option<Session<StdRng>>,
    /// `None` while a worker holds the writer.
    wlink: Option<Box<dyn Link>>,
    /// Complete frames awaiting dispatch (pipelined commands).
    pending: VecDeque<Vec<u8>>,
    busy: bool,
    /// Tear down as soon as the worker returns / staged bytes flush.
    closing: bool,
    /// Last interest registered with epoll (avoids redundant `ctl`s).
    interest: Interest,
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

/// Handle the listener thread hands back to [`crate::GridFtpServer`].
pub(crate) struct ReactorHandle {
    pub(crate) wake: Arc<WakeFd>,
}

/// Spawn the reactor thread. Returns typed spawn errors (satellite of
/// the same failure-handling pass as `dtp.rs`).
pub(crate) fn spawn(
    listener: TcpListener,
    config: Arc<ServerConfig>,
    seed: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
) -> Result<ReactorHandle> {
    let epoll = Epoll::new()?;
    let wake = Arc::new(WakeFd::new()?);
    listener.set_nonblocking(true)?;
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    epoll.add(wake.raw_fd(), TOKEN_WAKE, Interest::READ)?;

    let (done_tx, done_rx) = unbounded::<Done>();
    let pool = {
        let wake = Arc::clone(&wake);
        let done_tx: Sender<Done> = done_tx;
        ShardedPool::new(
            config.worker_shards,
            config.workers_per_shard,
            config.dispatch_queue,
            move |mut job: Job| {
                let result = job.machine.process_message(&mut job.link, job.frame);
                let _ = done_tx.send(Done {
                    token: job.token,
                    machine: job.machine,
                    link: job.link,
                    result,
                });
                wake.wake();
            },
        )
        .map_err(|e| ServerError::Spawn(format!("reactor pool: {e}")))?
    };

    let sessions_held = config.obs.metrics().gauge("server.sessions_held");
    let queue_depth = config.obs.metrics().gauge("server.dispatch_queue_depth");
    let wakeups = config.obs.metrics().counter("server.reactor_wakeups");
    let pool_rejects = config.obs.metrics().counter("server.pool_rejects");
    let spawn_failures = config.obs.metrics().counter("server.spawn_failures");
    let reactor = Reactor {
        pool,
        entries: HashMap::new(),
        epoll,
        wake: Arc::clone(&wake),
        listener,
        seed,
        stop,
        draining,
        wheel: DeadlineWheel::new(WHEEL_TICK, WHEEL_SLOTS),
        done_rx,
        deferred: HashSet::new(),
        next_token: FIRST_SESSION_TOKEN,
        sessions_held,
        queue_depth,
        wakeups,
        pool_rejects,
        spawn_failures,
        config,
    };
    std::thread::Builder::new()
        .name("ig-reactor".into())
        .spawn(move || reactor.run())
        .map_err(|e| ServerError::Spawn(format!("reactor thread: {e}")))?;
    Ok(ReactorHandle { wake })
}

struct Reactor {
    // Field order is load-bearing: `pool` drops (and joins its workers,
    // which hold raw fds into `entries`' sockets) before `entries`.
    pool: ShardedPool<Job>,
    entries: HashMap<u64, Entry>,
    epoll: Epoll,
    wake: Arc<WakeFd>,
    listener: TcpListener,
    seed: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    /// Drain in progress: shed new connections, keep serving old ones.
    draining: Arc<AtomicBool>,
    wheel: DeadlineWheel,
    done_rx: Receiver<Done>,
    /// Sessions with parked frames that bounced off a full shard.
    deferred: HashSet<u64>,
    next_token: u64,
    sessions_held: Arc<ig_obs::Gauge>,
    queue_depth: Arc<ig_obs::Gauge>,
    wakeups: Arc<ig_obs::Counter>,
    pool_rejects: Arc<ig_obs::Counter>,
    spawn_failures: Arc<ig_obs::Counter>,
    config: Arc<ServerConfig>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Vec::with_capacity(256);
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            events.clear();
            if self.epoll.wait(&mut events, self.wheel.next_timeout()).is_err() {
                break; // epoll itself failing is unrecoverable
            }
            self.wakeups.inc();
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake.drain(),
                    token => self.session_ready(token, ev.readable, ev.writable, ev.error),
                }
            }
            self.drain_done();
            self.retry_deferred();
            let mut expired = Vec::new();
            self.wheel.expire(Instant::now(), &mut expired);
            for token in expired {
                self.idle_expired(token);
            }
            self.sessions_held.set(self.entries.len() as f64);
            self.queue_depth.set(self.pool.depth() as f64);
        }
        self.shutdown_drain();
        // Move-destructure to force drop order explicitly even if the
        // struct layout changes: workers join before sockets close.
        let Reactor { pool, entries, sessions_held, .. } = self;
        drop(pool);
        drop(entries);
        sessions_held.set(0.0);
    }

    // -- accept ------------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        // Draining: the socket drop is the refusal, the
                        // same shedding the threaded core does.
                        drop(stream);
                        continue;
                    }
                    if self.register(stream).is_err() {
                        // Registration failure drops the connection; the
                        // reactor itself stays healthy.
                        self.spawn_failures.inc();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) -> Result<()> {
        let token = self.next_token;
        self.next_token += 1;
        let conn = NbFramed::new(stream)?;
        // Accept-order seeding — the exact counter discipline of the
        // threaded core, so seeded runs replay identically.
        let session_seed = self.seed.fetch_add(1, Ordering::SeqCst);
        let mut machine =
            Session::new(Arc::clone(&self.config), StdRng::seed_from_u64(session_seed));
        let mut wlink: Box<dyn Link> = Box::new(unsafe {
            WriterLink::from_raw(conn.stream().as_raw_fd(), self.config.live().stall_timeout)
        });
        // The banner goes out through the worker-side writer: the socket
        // is fresh so this cannot meaningfully block the loop.
        machine.greet(&mut wlink)?;
        self.epoll.add(conn.stream().as_raw_fd(), token, Interest::READ)?;
        if let Some(idle) = self.config.live().control_idle_timeout {
            self.wheel.schedule(token, Instant::now() + idle);
        }
        self.entries.insert(
            token,
            Entry {
                conn,
                machine: Some(machine),
                wlink: Some(wlink),
                pending: VecDeque::new(),
                busy: false,
                closing: false,
                interest: Interest::READ,
            },
        );
        Ok(())
    }

    // -- per-session readiness ---------------------------------------------

    fn session_ready(&mut self, token: u64, readable: bool, writable: bool, error: bool) {
        let Some(entry) = self.entries.get_mut(&token) else { return };
        if error {
            self.close_session(token);
            return;
        }
        if readable {
            if entry.conn.fill().is_err() {
                self.close_session(token);
                return;
            }
            loop {
                match entry.conn.next_frame() {
                    Ok(Some(frame)) => entry.pending.push_back(frame),
                    Ok(None) => break,
                    Err(_) => {
                        // Oversized frame announcement: protocol
                        // violation, drop the connection.
                        self.close_session(token);
                        return;
                    }
                }
            }
        }
        if writable {
            match entry.conn.flush() {
                Ok(true) if entry.closing && !entry.busy => {
                    self.close_session(token);
                    return;
                }
                Ok(_) => {}
                Err(_) => {
                    self.close_session(token);
                    return;
                }
            }
        }
        self.try_dispatch(token);
        self.sync_interest(token);
    }

    /// Hand the next pending frame to the pool if the session is idle
    /// and nothing is staged for write. Also the EOF close point: a
    /// drained, idle session whose peer half-closed goes away here.
    fn try_dispatch(&mut self, token: u64) {
        let Some(entry) = self.entries.get_mut(&token) else { return };
        if entry.busy || entry.closing || entry.conn.wants_write() {
            return;
        }
        let Some(frame) = entry.pending.pop_front() else {
            if entry.conn.saw_eof() {
                self.close_session(token);
            }
            return;
        };
        let machine = entry.machine.take().expect("idle entry holds machine");
        let link = entry.wlink.take().expect("idle entry holds link");
        match self.pool.try_submit(token, Job { token, machine, link, frame }) {
            Ok(()) => {
                entry.busy = true;
                self.wheel.cancel(token);
                self.deferred.remove(&token);
            }
            Err(job) => {
                // Backpressure: park the frame back at the front so
                // arrival order survives, retry after the next drain.
                entry.machine = Some(job.machine);
                entry.wlink = Some(job.link);
                entry.pending.push_front(job.frame);
                self.pool_rejects.inc();
                self.deferred.insert(token);
            }
        }
    }

    fn retry_deferred(&mut self) {
        if self.deferred.is_empty() {
            return;
        }
        for token in std::mem::take(&mut self.deferred) {
            self.try_dispatch(token);
        }
    }

    fn drain_done(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.job_finished(done);
        }
    }

    fn job_finished(&mut self, done: Done) {
        let Some(entry) = self.entries.get_mut(&done.token) else { return };
        entry.busy = false;
        entry.machine = Some(done.machine);
        entry.wlink = Some(done.link);
        match done.result {
            Ok(LoopControl::Continue) if !entry.closing => {
                if let Some(idle) = self.config.live().control_idle_timeout {
                    self.wheel.schedule(done.token, Instant::now() + idle);
                }
                self.try_dispatch(done.token);
                self.sync_interest(done.token);
            }
            // QUIT (221 already sent), a session-fatal error (421
            // already sent, best effort), or a close that was deferred
            // while the worker was busy.
            _ => self.close_session(done.token),
        }
    }

    // -- timers ------------------------------------------------------------

    fn idle_expired(&mut self, token: u64) {
        let Some(entry) = self.entries.get_mut(&token) else { return };
        if entry.busy {
            return; // raced with a dispatch; the rearm happens on done
        }
        // Same reply text as the threaded core's idle path.
        let reply = Reply::new(421, "Control connection idle too long; closing.").to_wire();
        entry.conn.queue_frame(reply.as_bytes());
        entry.closing = true;
        match entry.conn.flush() {
            Ok(true) => self.close_session(token),
            Ok(false) => self.sync_interest(token),
            Err(_) => self.close_session(token),
        }
    }

    // -- bookkeeping -------------------------------------------------------

    fn sync_interest(&mut self, token: u64) {
        let Some(entry) = self.entries.get_mut(&token) else { return };
        let want = Interest {
            readable: !entry.closing,
            writable: entry.conn.wants_write() && !entry.busy,
        };
        if want != entry.interest
            && self.epoll.modify(entry.conn.stream().as_raw_fd(), token, want).is_ok()
        {
            entry.interest = want;
        }
    }

    fn close_session(&mut self, token: u64) {
        let busy = self.entries.get(&token).map(|e| e.busy);
        match busy {
            Some(false) => {
                if let Some(entry) = self.entries.remove(&token) {
                    let _ = self.epoll.delete(entry.conn.stream().as_raw_fd());
                    // Entry drop closes the socket; Session drop (if the
                    // machine is home) decrements `sessions_active`.
                }
                self.wheel.cancel(token);
                self.deferred.remove(&token);
            }
            Some(true) => {
                // A worker holds the fd: defer to job completion.
                if let Some(entry) = self.entries.get_mut(&token) {
                    entry.closing = true;
                }
            }
            None => {}
        }
    }

    /// Give in-flight jobs a bounded window to finish so their replies
    /// (e.g. a final 221) reach the wire before sockets close.
    fn shutdown_drain(&mut self) {
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        while self.entries.values().any(|e| e.busy) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.done_rx.recv_timeout(left) {
                Ok(done) => self.job_finished(done),
                Err(_) => break,
            }
        }
    }
}
