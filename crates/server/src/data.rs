//! Data-channel establishment: listeners, connectors, and DCAU wrapping.
//!
//! The GridFTP rule (§IIC): "the receiver [is] the listener and the
//! sender issue[s] the TCP connect". The connector therefore plays GSI
//! initiator and the listener GSI acceptor when DCAU is on.

use crate::error::{Result, ServerError};
use ig_gsi::context::GsiConfig;
use ig_gsi::ProtectionLevel;
use ig_pki::time::Clock;
use ig_pki::{Credential, DistinguishedName, TrustStore};
use ig_protocol::command::DcauMode;
use ig_protocol::HostPort;
use ig_xio::{
    secure_accept, secure_connect, DataTransport, Link, TcpLink, Throttle, UdpConfig, UdpLink,
    UdpListener,
};
use rand::Rng;
use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Security posture of a data channel, assembled per transfer from the
/// session state (DCAU mode, PROT level, DCSC override).
#[derive(Clone)]
pub struct DataSecurity {
    /// DCAU mode.
    pub dcau: DcauMode,
    /// `PROT` level for payload records.
    pub prot: ProtectionLevel,
    /// Credential to present (delegated proxy, DCSC credential, or the
    /// client's own credential).
    pub credential: Option<Credential>,
    /// Trust roots to validate the peer against (DCSC-augmented when a
    /// DCSC context is installed).
    pub trust: TrustStore,
    /// Clock for validity checks.
    pub clock: Clock,
}

impl DataSecurity {
    /// No authentication, no protection — `DCAU N` + `PROT C`.
    pub fn open() -> Self {
        DataSecurity {
            dcau: DcauMode::None,
            prot: ProtectionLevel::Clear,
            credential: None,
            trust: TrustStore::new(),
            clock: Clock::System,
        }
    }

    /// The identity the peer is expected to present: the base identity of
    /// the configured credential. With DCSC, both endpoints hold the same
    /// user credential, so this matches on both sides (§V).
    pub fn expected_identity(&self) -> Option<DistinguishedName> {
        match &self.dcau {
            DcauMode::None => None,
            DcauMode::Subject(s) => DistinguishedName::parse(s).ok(),
            DcauMode::Self_ => self.credential.as_ref().map(|c| c.identity().clone()),
        }
    }

    fn gsi_config(&self) -> Result<GsiConfig> {
        let credential = self.credential.clone().ok_or_else(|| {
            ServerError::Data("DCAU requested but no data-channel credential available".into())
        })?;
        Ok(GsiConfig {
            credential: Some(credential),
            trust: self.trust.clone(),
            require_peer_auth: true,
            clock: self.clock,
            insecure_skip_peer_validation: false,
        })
    }
}

fn check_peer<L: Link>(link: &ig_xio::SecureLink<L>, expected: &Option<DistinguishedName>) -> Result<()> {
    if let Some(expect) = expected {
        let peer = link
            .peer()
            .ok_or_else(|| ServerError::Data("peer did not authenticate".into()))?;
        if &peer.identity != expect {
            return Err(ServerError::Data(format!(
                "data channel peer {} does not match expected {}",
                peer.identity, expect
            )));
        }
    }
    Ok(())
}

/// Wrap an *outgoing* (connector/sender) data connection per `sec`.
pub fn wrap_connect<L: Link + 'static, R: Rng + ?Sized>(
    link: L,
    sec: &DataSecurity,
    rng: &mut R,
) -> Result<Box<dyn Link>> {
    match sec.dcau {
        DcauMode::None => Ok(Box::new(link)),
        _ => {
            let cfg = sec.gsi_config()?;
            let mut secured = secure_connect(link, cfg, sec.prot, rng)
                .map_err(|e| ServerError::Data(format!("data-channel handshake: {e}")))?;
            check_peer(&secured, &sec.expected_identity())?;
            secured.require_recv_level(sec.prot);
            Ok(Box::new(secured))
        }
    }
}

/// Wrap an *incoming* (listener/receiver) data connection per `sec`.
pub fn wrap_accept<L: Link + 'static, R: Rng + ?Sized>(
    link: L,
    sec: &DataSecurity,
    rng: &mut R,
) -> Result<Box<dyn Link>> {
    match sec.dcau {
        DcauMode::None => Ok(Box::new(link)),
        _ => {
            let cfg = sec.gsi_config()?;
            let mut secured = secure_accept(link, cfg, sec.prot, rng)
                .map_err(|e| ServerError::Data(format!("data-channel handshake: {e}")))?;
            check_peer(&secured, &sec.expected_identity())?;
            secured.require_recv_level(sec.prot);
            Ok(Box::new(secured))
        }
    }
}

/// Optionally throttle a link (per-stripe NIC model).
pub fn maybe_throttle(link: Box<dyn Link>, rate: Option<f64>) -> Box<dyn Link> {
    match rate {
        Some(bps) => Box::new(Throttle::new(link, bps, (bps / 20.0).max(16.0 * 1024.0))),
        None => link,
    }
}

/// A passive-mode data listener: accepts raw TCP data connections on a
/// background thread. One listener per stripe.
pub struct DataListener {
    addr: HostPort,
    rx: crossbeam::channel::Receiver<TcpLink>,
    stop: Arc<AtomicBool>,
}

impl DataListener {
    /// Bind on `ip` with an OS-assigned port and start accepting.
    pub fn bind(ip: Ipv4Addr) -> Result<Self> {
        let listener = TcpListener::bind((ip, 0))?;
        let addr = HostPort::from_socket_addr(listener.local_addr()?)?;
        let (tx, rx) = crossbeam::channel::unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(TcpLink::new(s)).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(DataListener { addr, rx, stop })
    }

    /// The advertised address (what `227`/`229` replies carry).
    pub fn addr(&self) -> HostPort {
        self.addr
    }

    /// Wait up to `timeout` for the next data connection.
    pub fn accept(&self, timeout: Duration) -> Result<TcpLink> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|_| ServerError::Data("timed out waiting for data connection".into()))
    }

    /// Try to get a connection without blocking.
    pub fn try_accept(&self) -> Option<TcpLink> {
        self.rx.try_recv().ok()
    }

    /// Stop accepting (the accept thread exits on its next wakeup).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so the blocking accept returns.
        let _ = std::net::TcpStream::connect(self.addr.to_socket_addr());
    }
}

impl Drop for DataListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A data listener for either transport. TCP keeps the historical
/// accept-thread [`DataListener`]; UDP listens on one well-known socket
/// and hands each accepted connection its own socket (see
/// [`ig_xio::udp`]). Both advertise a [`HostPort`] for `227`/`229`.
pub enum AnyDataListener {
    /// Stream-mode TCP.
    Tcp(DataListener),
    /// Reliable-UDP MODE E.
    Udp(UdpListener),
}

impl AnyDataListener {
    /// Bind on `ip` with an OS-assigned port for `transport`.
    pub fn bind(ip: Ipv4Addr, transport: DataTransport, udp: &UdpConfig) -> Result<Self> {
        match transport {
            DataTransport::Tcp => Ok(AnyDataListener::Tcp(DataListener::bind(ip)?)),
            DataTransport::Udp => {
                let l = UdpListener::bind(SocketAddr::from((ip, 0)), udp.clone())
                    .map_err(|e| ServerError::Data(format!("udp bind: {e}")))?;
                Ok(AnyDataListener::Udp(l))
            }
        }
    }

    /// The advertised address (what `227`/`229` replies carry).
    pub fn addr(&self) -> Result<HostPort> {
        match self {
            AnyDataListener::Tcp(l) => Ok(l.addr()),
            AnyDataListener::Udp(l) => {
                let sa = l
                    .local_addr()
                    .map_err(|e| ServerError::Data(format!("udp local_addr: {e}")))?;
                HostPort::from_socket_addr(sa).map_err(|e| ServerError::Data(e.to_string()))
            }
        }
    }

    /// Wait up to `timeout` for the next data connection.
    pub fn accept_link(&self, timeout: Duration) -> Result<Box<dyn Link>> {
        match self {
            AnyDataListener::Tcp(l) => Ok(Box::new(l.accept(timeout)?)),
            AnyDataListener::Udp(l) => l
                .accept(timeout)
                .map(|link| Box::new(link) as Box<dyn Link>)
                .map_err(|e| ServerError::Data(format!("udp accept: {e}"))),
        }
    }

    /// Try to get a connection without blocking (UDP polls the socket
    /// for ~1 ms — the pump loop's cadence, not a busy spin).
    pub fn try_accept_link(&self) -> Option<Box<dyn Link>> {
        match self {
            AnyDataListener::Tcp(l) => l.try_accept().map(|t| Box::new(t) as Box<dyn Link>),
            AnyDataListener::Udp(l) => l
                .accept(Duration::from_millis(1))
                .ok()
                .map(|link| Box::new(link) as Box<dyn Link>),
        }
    }
}

/// Dial a data connection to `target` over `transport`.
pub fn connect_transport(
    target: HostPort,
    transport: DataTransport,
    udp: &UdpConfig,
) -> Result<Box<dyn Link>> {
    match transport {
        DataTransport::Tcp => {
            let tcp = TcpLink::connect(target.to_socket_addr())
                .map_err(|e| ServerError::Data(format!("connect {target}: {e}")))?;
            Ok(Box::new(tcp))
        }
        DataTransport::Udp => {
            let link = UdpLink::connect(target.to_socket_addr(), udp.clone())
                .map_err(|e| ServerError::Data(format!("udp connect {target}: {e}")))?;
            Ok(Box::new(link))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_gsi::context::test_support::ca_and_credential;

    #[test]
    fn listener_accepts_connections() {
        let l = DataListener::bind(Ipv4Addr::LOCALHOST).unwrap();
        let addr = l.addr();
        let t = std::thread::spawn(move || {
            let mut c = TcpLink::connect(addr.to_socket_addr()).unwrap();
            c.send(b"data hello").unwrap();
        });
        let mut conn = l.accept(Duration::from_secs(5)).unwrap();
        assert_eq!(conn.recv().unwrap(), b"data hello");
        t.join().unwrap();
        assert!(l.try_accept().is_none());
        l.shutdown();
    }

    #[test]
    fn accept_times_out() {
        let l = DataListener::bind(Ipv4Addr::LOCALHOST).unwrap();
        assert!(l.accept(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn dcau_none_passthrough() {
        let (a, mut b) = ig_xio::pipe();
        let mut rng = seeded(1);
        let mut wrapped = wrap_connect(a, &DataSecurity::open(), &mut rng).unwrap();
        wrapped.send(b"raw").unwrap();
        assert_eq!(b.recv().unwrap(), b"raw");
    }

    #[test]
    fn dcau_self_mutual_handshake() {
        let mut rng = seeded(2);
        let (ca, user_cred) = ca_and_credential(&mut rng, "/O=CA", "/O=Grid/CN=alice");
        let mut trust = TrustStore::new();
        trust.add_root(ca.root_cert().clone());
        let sec = DataSecurity {
            dcau: DcauMode::Self_,
            prot: ProtectionLevel::Private,
            credential: Some(user_cred),
            trust,
            clock: Clock::Fixed(1000),
        };
        let (a, b) = ig_xio::pipe();
        let sec2 = sec.clone();
        let acceptor = std::thread::spawn(move || {
            let mut rng = seeded(3);
            let mut l = wrap_accept(b, &sec2, &mut rng).unwrap();
            assert_eq!(l.recv().unwrap(), b"sealed payload");
            l.send(b"ack").unwrap();
        });
        let mut c = wrap_connect(a, &sec, &mut rng).unwrap();
        c.send(b"sealed payload").unwrap();
        assert_eq!(c.recv().unwrap(), b"ack");
        acceptor.join().unwrap();
    }

    #[test]
    fn dcau_detects_identity_mismatch() {
        // Connector expects alice but acceptor presents mallory.
        let mut rng = seeded(4);
        let (ca, alice) = ca_and_credential(&mut rng, "/O=CA", "/O=Grid/CN=alice");
        let mut rng_m = seeded(5);
        let (_ca2, mallory) = {
            // mallory's cert signed by the SAME CA so the chain validates;
            // only the identity check should fire.
            let keys = ig_crypto::RsaKeyPair::generate(&mut rng_m, 512).unwrap();
            let mut ca_mut = ca;
            let cert = ca_mut
                .issue(
                    DistinguishedName::parse("/O=Grid/CN=mallory").unwrap(),
                    &keys.public,
                    ig_pki::cert::Validity::starting_at(0, u64::MAX / 4),
                    vec![],
                )
                .unwrap();
            (ca_mut, Credential::new(vec![cert], keys.private).unwrap())
        };
        let mut trust = TrustStore::new();
        trust.add_root(_ca2.root_cert().clone());
        let sec_client = DataSecurity {
            dcau: DcauMode::Self_,
            prot: ProtectionLevel::Clear,
            credential: Some(alice),
            trust: trust.clone(),
            clock: Clock::Fixed(1000),
        };
        let sec_server = DataSecurity {
            dcau: DcauMode::Self_,
            prot: ProtectionLevel::Clear,
            credential: Some(mallory),
            trust,
            clock: Clock::Fixed(1000),
        };
        let (a, b) = ig_xio::pipe();
        let t = std::thread::spawn(move || {
            let mut rng = seeded(6);
            wrap_accept(b, &sec_server, &mut rng)
        });
        let mut rng2 = seeded(7);
        let client_res = wrap_connect(a, &sec_client, &mut rng2);
        // Client expects alice on the far end but gets mallory.
        assert!(client_res.is_err());
        let _ = t.join().unwrap();
    }

    #[test]
    fn dcau_without_credential_errors() {
        let sec = DataSecurity { dcau: DcauMode::Self_, ..DataSecurity::open() };
        let (a, _b) = ig_xio::pipe();
        let mut rng = seeded(8);
        assert!(wrap_connect(a, &sec, &mut rng).is_err());
    }
}
