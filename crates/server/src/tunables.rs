//! Live-reloadable server tunables — the hot-swap half of the admin
//! plane's `reload` command.
//!
//! A running fleet endpoint cannot restart to pick up an operator tweak
//! (restarting aborts every in-flight transfer), so the knobs that are
//! safe to change mid-run live in a [`TunableSlot`]: an atomic-swap
//! `Arc<Tunables>` snapshot that sessions re-read at each use site. A
//! reload builds a candidate from the current snapshot, validates every
//! field, and only then publishes — an invalid batch leaves the old
//! configuration live, byte-for-byte ([`ReloadError`] says exactly why).
//!
//! What is *not* here is as deliberate as what is: structural fields
//! (`core`, `stripes`, worker-pool shape, bind addresses, credentials)
//! are wired into threads and sockets at start and cannot be swapped
//! under a live server. Asking for them yields a typed
//! [`ReloadError::NotReloadable`], not a silent ignore — the reloadable
//! set is the API contract documented in DESIGN.md §15.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Largest reloadable MODE E block size: one block must fit a data
/// frame with room for the 17-byte MODE E header.
pub const MAX_BLOCK_SIZE: usize = 8 * 1024 * 1024;

/// The hot-swappable subset of [`crate::ServerConfig`]. Sessions read a
/// snapshot per use site, so a transfer started before a reload keeps
/// seeing a coherent set of values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tunables {
    /// Data-transfer no-progress deadline.
    pub stall_timeout: Duration,
    /// Control-channel idle deadline (`None` = wait forever).
    pub control_idle_timeout: Option<Duration>,
    /// MODE E block size in bytes.
    pub block_size: usize,
    /// Blocks between restart/perf markers.
    pub marker_interval: usize,
    /// Per-stripe bandwidth cap in bytes/second (`None` = unthrottled).
    pub stripe_rate: Option<f64>,
}

/// A value carried in a reload request. The admin wire protocol is
/// JSON; this is the typed subset a tunable can take.
#[derive(Debug, Clone, PartialEq)]
pub enum TunableValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean (chaos arm/disarm).
    Bool(bool),
    /// Explicit null — clears an optional tunable.
    Null,
}

impl TunableValue {
    fn as_u64(&self) -> Option<u64> {
        match self {
            TunableValue::U64(n) => Some(*n),
            TunableValue::F64(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            TunableValue::U64(n) => Some(*n as f64),
            TunableValue::F64(f) => Some(*f),
            _ => None,
        }
    }
}

/// Why a reload batch was refused. The batch is all-or-nothing: any
/// error means *no* field changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadError {
    /// The field name matches nothing in the config at all.
    UnknownField {
        /// The offending name.
        field: String,
    },
    /// The field exists but is structural — fixed at server start.
    NotReloadable {
        /// The structural field.
        field: String,
    },
    /// The field is reloadable but the value is out of range or of the
    /// wrong type.
    InvalidValue {
        /// The field being set.
        field: String,
        /// Human-readable constraint that failed.
        reason: String,
    },
}

impl ReloadError {
    /// Stable machine-readable error code for the admin wire protocol.
    pub fn code(&self) -> &'static str {
        match self {
            ReloadError::UnknownField { .. } => "unknown-field",
            ReloadError::NotReloadable { .. } => "not-reloadable",
            ReloadError::InvalidValue { .. } => "invalid-value",
        }
    }

    /// The field the error is about.
    pub fn field(&self) -> &str {
        match self {
            ReloadError::UnknownField { field }
            | ReloadError::NotReloadable { field }
            | ReloadError::InvalidValue { field, .. } => field,
        }
    }
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::UnknownField { field } => write!(f, "unknown field {field:?}"),
            ReloadError::NotReloadable { field } => {
                write!(f, "field {field:?} is structural and cannot be reloaded")
            }
            ReloadError::InvalidValue { field, reason } => {
                write!(f, "invalid value for {field:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReloadError {}

/// Config fields an operator might plausibly name that are fixed at
/// start. Named explicitly so the rejection is `NotReloadable` (you
/// found the right knob, it just doesn't turn) rather than the
/// `UnknownField` a typo gets.
pub const NOT_RELOADABLE: &[&str] = &[
    "name",
    "core",
    "stripes",
    "worker_shards",
    "workers_per_shard",
    "dispatch_queue",
    "data_ip",
    "key_bits",
    "banner",
    "dcsc_enabled",
    "udp_enabled",
    "udp_cc",
    "credential",
    "trust",
    "authz",
    "dsi",
    "clock",
    "admin_socket",
    "admin_uid",
];

/// The swap point: `None` until first read, then always the live
/// snapshot. Shared (`Arc`) between the config clones handed to
/// sessions and the admin plane doing the swapping.
#[derive(Debug, Default)]
pub struct TunableSlot {
    current: Mutex<Option<Arc<Tunables>>>,
}

impl TunableSlot {
    /// A fresh, unseeded slot.
    pub fn new() -> Arc<TunableSlot> {
        Arc::new(TunableSlot::default())
    }

    /// The live snapshot, seeding from `seed` on first read. Seeding is
    /// lazy because builder methods keep mutating the config's plain
    /// fields until the server starts; the first session (or reload)
    /// freezes them into the slot.
    pub fn get_or_seed(&self, seed: impl FnOnce() -> Tunables) -> Arc<Tunables> {
        let mut cur = self.current.lock();
        match &*cur {
            Some(t) => Arc::clone(t),
            None => {
                let t = Arc::new(seed());
                *cur = Some(Arc::clone(&t));
                t
            }
        }
    }

    /// Validate and apply a reload batch. All-or-nothing: the swap only
    /// happens after every field validated against the candidate, so a
    /// rejected batch leaves the previous snapshot untouched.
    pub fn reload(
        &self,
        seed: impl FnOnce() -> Tunables,
        updates: &[(String, TunableValue)],
    ) -> Result<Arc<Tunables>, ReloadError> {
        let mut cur = self.current.lock();
        let mut cand = match &*cur {
            Some(t) => (**t).clone(),
            None => seed(),
        };
        for (field, value) in updates {
            apply_one(&mut cand, field, value)?;
        }
        let next = Arc::new(cand);
        *cur = Some(Arc::clone(&next));
        Ok(next)
    }
}

fn apply_one(t: &mut Tunables, field: &str, v: &TunableValue) -> Result<(), ReloadError> {
    let invalid = |reason: &str| ReloadError::InvalidValue {
        field: field.to_string(),
        reason: reason.to_string(),
    };
    match field {
        "stall_timeout_ms" => match v.as_u64() {
            Some(ms) if ms >= 1 => t.stall_timeout = Duration::from_millis(ms),
            _ => return Err(invalid("expected integer milliseconds >= 1")),
        },
        "control_idle_timeout_ms" => match v {
            TunableValue::Null => t.control_idle_timeout = None,
            _ => match v.as_u64() {
                Some(ms) if ms >= 1 => {
                    t.control_idle_timeout = Some(Duration::from_millis(ms))
                }
                _ => return Err(invalid("expected integer milliseconds >= 1, or null")),
            },
        },
        "block_size" => match v.as_u64() {
            Some(b) if b >= 1 && b as usize <= MAX_BLOCK_SIZE => t.block_size = b as usize,
            _ => return Err(invalid("expected 1 <= bytes <= 8388608")),
        },
        "marker_interval" => match v.as_u64() {
            Some(n) if n >= 1 => t.marker_interval = n as usize,
            _ => return Err(invalid("expected integer blocks >= 1")),
        },
        "stripe_rate" => match v {
            TunableValue::Null => t.stripe_rate = None,
            _ => match v.as_f64() {
                Some(r) if r.is_finite() && r > 0.0 => t.stripe_rate = Some(r),
                _ => return Err(invalid("expected bytes/second > 0, or null")),
            },
        },
        f if NOT_RELOADABLE.contains(&f) => {
            return Err(ReloadError::NotReloadable { field: f.to_string() })
        }
        _ => return Err(ReloadError::UnknownField { field: field.to_string() }),
    }
    Ok(())
}

/// Serialize a snapshot as one JSON object (the admin `reload` reply
/// echoes the now-active values so the operator sees what took effect).
pub fn tunables_json(t: &Tunables) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"stall_timeout_ms\":");
    out.push_str(&(t.stall_timeout.as_millis() as u64).to_string());
    out.push_str(",\"control_idle_timeout_ms\":");
    match t.control_idle_timeout {
        Some(d) => out.push_str(&(d.as_millis() as u64).to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"block_size\":");
    out.push_str(&t.block_size.to_string());
    out.push_str(",\"marker_interval\":");
    out.push_str(&t.marker_interval.to_string());
    out.push_str(",\"stripe_rate\":");
    match t.stripe_rate {
        Some(r) => out.push_str(&format!("{r}")),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Tunables {
        Tunables {
            stall_timeout: Duration::from_secs(30),
            control_idle_timeout: None,
            block_size: 64 * 1024,
            marker_interval: 16,
            stripe_rate: None,
        }
    }

    #[test]
    fn reload_swaps_valid_batches() {
        let slot = TunableSlot::new();
        let next = slot
            .reload(
                base,
                &[
                    ("block_size".into(), TunableValue::U64(4096)),
                    ("stripe_rate".into(), TunableValue::F64(1e6)),
                ],
            )
            .unwrap();
        assert_eq!(next.block_size, 4096);
        assert_eq!(next.stripe_rate, Some(1e6));
        // Untouched fields carry over from the previous snapshot.
        assert_eq!(next.stall_timeout, Duration::from_secs(30));
        assert_eq!(*slot.get_or_seed(base), *next);
    }

    #[test]
    fn invalid_batch_is_all_or_nothing() {
        let slot = TunableSlot::new();
        let before = slot.get_or_seed(base);
        let err = slot
            .reload(
                base,
                &[
                    ("block_size".into(), TunableValue::U64(4096)), // valid...
                    ("marker_interval".into(), TunableValue::U64(0)), // ...then invalid
                ],
            )
            .unwrap_err();
        assert_eq!(err.code(), "invalid-value");
        assert_eq!(err.field(), "marker_interval");
        assert_eq!(*slot.get_or_seed(base), *before, "old config must stay live");
    }

    #[test]
    fn rejections_are_typed() {
        let slot = TunableSlot::new();
        let err =
            slot.reload(base, &[("core".into(), TunableValue::U64(1))]).unwrap_err();
        assert_eq!(err, ReloadError::NotReloadable { field: "core".into() });
        let err =
            slot.reload(base, &[("blocksize".into(), TunableValue::U64(1))]).unwrap_err();
        assert_eq!(err, ReloadError::UnknownField { field: "blocksize".into() });
        let err = slot
            .reload(base, &[("stall_timeout_ms".into(), TunableValue::Bool(true))])
            .unwrap_err();
        assert_eq!(err.code(), "invalid-value");
    }

    #[test]
    fn nullable_fields_clear_on_null() {
        let slot = TunableSlot::new();
        slot.reload(
            base,
            &[
                ("stripe_rate".into(), TunableValue::F64(5e5)),
                ("control_idle_timeout_ms".into(), TunableValue::U64(2000)),
            ],
        )
        .unwrap();
        let next = slot
            .reload(
                base,
                &[
                    ("stripe_rate".into(), TunableValue::Null),
                    ("control_idle_timeout_ms".into(), TunableValue::Null),
                ],
            )
            .unwrap();
        assert_eq!(next.stripe_rate, None);
        assert_eq!(next.control_idle_timeout, None);
    }

    #[test]
    fn json_echo_is_stable() {
        let t = base();
        assert_eq!(
            tunables_json(&t),
            "{\"stall_timeout_ms\":30000,\"control_idle_timeout_ms\":null,\
             \"block_size\":65536,\"marker_interval\":16,\"stripe_rate\":null}"
        );
    }
}
