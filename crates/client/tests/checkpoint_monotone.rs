//! Property tests for the recovery substrate: checkpoint `ByteRanges`
//! must stay monotone under arbitrary interleavings of faults and
//! retries, and `RetryPolicy` backoff must be bounded and replayable.
//!
//! The model mirrors the real restart loop: each attempt resends only
//! `missing()` ranges (REST semantics), block by block, while a fault
//! schedule drops, duplicates, or reorders deliveries. Whatever happens,
//! a byte once durable must never leave the checkpoint, the checkpoint
//! must never claim bytes past the file, and the `111`-marker round-trip
//! must preserve it exactly — otherwise a retry could resend forever or,
//! worse, skip a hole.

use ig_client::RetryPolicy;
use ig_protocol::ByteRanges;
use proptest::prelude::*;
use std::time::Duration;

/// Every range durable in `sub` is contained in a single `sup` range
/// (both are normalized, sorted, and coalesced).
fn covers(sup: &ByteRanges, sub: &ByteRanges) -> bool {
    sub.ranges()
        .iter()
        .all(|&(s, e)| sup.ranges().iter().any(|&(ss, se)| ss <= s && e <= se))
}

proptest! {
    #[test]
    fn checkpoints_stay_monotone_under_interleaved_faults(
        len in 0u64..150_000,
        block in 1u64..20_000,
        // Per-attempt, per-block fault actions:
        // 0 = deliver, 1 = drop, 2 = duplicate, 3 = reorder (hold).
        schedule in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 0..64),
            1..6,
        ),
    ) {
        let mut ckpt = ByteRanges::new();
        for attempt in &schedule {
            // REST semantics: an attempt resends only what's missing.
            let mut blocks = Vec::new();
            for (s, e) in ckpt.missing(len) {
                let mut at = s;
                while at < e {
                    let end = (at + block).min(e);
                    blocks.push((at, end));
                    at = end;
                }
            }
            let mut held: Option<(u64, u64)> = None;
            for (i, b) in blocks.iter().enumerate() {
                let action = attempt.get(i).copied().unwrap_or(0);
                let before = ckpt.clone();
                match action {
                    1 => continue, // dropped on the wire
                    2 => {
                        // Duplicate delivery lands twice at one offset.
                        ckpt.add(b.0, b.1);
                        ckpt.add(b.0, b.1);
                    }
                    3 => {
                        // Reorder: hold this block; a previously held one
                        // goes out in its place.
                        if let Some(h) = held.replace(*b) {
                            ckpt.add(h.0, h.1);
                        }
                    }
                    _ => {
                        ckpt.add(b.0, b.1);
                        if let Some(h) = held.take() {
                            ckpt.add(h.0, h.1);
                        }
                    }
                }
                prop_assert!(
                    covers(&ckpt, &before),
                    "durable bytes vanished: had {:?}, now {:?}",
                    before.ranges(),
                    ckpt.ranges()
                );
                prop_assert!(ckpt.total() >= before.total());
                prop_assert!(ckpt.total() <= len, "checkpoint past EOF");
            }
            // Late flush at close: whatever was still held arrives last.
            if let Some(h) = held.take() {
                ckpt.add(h.0, h.1);
            }
            // The attempt boundary is where the checkpoint crosses the
            // control channel as a 111 marker — round-trip exactly.
            if !ckpt.ranges().is_empty() {
                let rt = ByteRanges::parse_marker(&ckpt.to_marker()).unwrap();
                prop_assert_eq!(rt.ranges(), ckpt.ranges());
            }
        }
        // One clean attempt retires everything still missing: the loop
        // converges instead of resending covered bytes forever.
        let missing = ckpt.missing(len);
        for &(s, e) in &missing {
            ckpt.add(s, e);
        }
        prop_assert!(ckpt.is_complete(len));
        prop_assert_eq!(ckpt.total(), len);
        // And missing() of a complete file is empty (no phantom holes).
        prop_assert!(ckpt.missing(len).is_empty());
    }

    #[test]
    fn backoff_is_bounded_and_replays_from_the_seed(
        seed in any::<u64>(),
        attempts in 1u32..12,
        base_ms in 1u64..500,
        max_ms in 1u64..5_000,
    ) {
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_backoff: Duration::from_millis(base_ms),
            max_backoff: Duration::from_millis(max_ms),
            multiplier: 2.0,
            jitter: 0.5,
            ..RetryPolicy::once()
        }
        .with_seed(seed);
        // Jitter scales the capped value by [1 - jitter, 1 + jitter], so
        // that factor is the true ceiling.
        let ceiling = policy.max_backoff.as_secs_f64() * (1.0 + policy.jitter) + 1e-9;
        for attempt in 1..=attempts {
            let b = policy.backoff(attempt);
            prop_assert!(b.as_secs_f64() <= ceiling, "backoff {b:?} exceeds jittered cap");
            // Deterministic in (seed, attempt): the chaos matrix depends
            // on schedules replaying exactly.
            prop_assert_eq!(b, policy.backoff(attempt));
        }
        // A different seed draws a different jitter schedule.
        let other = policy.clone().with_seed(seed.wrapping_add(1));
        let differs = (1..=attempts).any(|a| policy.backoff(a) != other.backoff(a));
        prop_assert!(differs, "jitter schedule must depend on the seed");
    }
}
