//! End-to-end MODE E transfers over the reliable-UDP data driver:
//! `OPTS DATA` negotiation, both transfer directions, every congestion
//! controller, security layering (DCAU/PROT over UDP), mid-session
//! transport switching, datagram-level chaos recovery, and the typed
//! rejection on a UDP-disabled server.

use ig_client::{transfer, ClientConfig, ClientError, ClientSession, TransferOpts};
use ig_gsi::ProtectionLevel;
use ig_netsim::CcAlgo;
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::DcauMode;
use ig_server::dsi::read_all;
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, UserContext};
use ig_xio::DatagramChaos;
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 1_000_000;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

fn payload(len: usize) -> Vec<u8> {
    (0..len as u32).map(|i| (i.wrapping_mul(131) % 251) as u8).collect()
}

struct World {
    server: Arc<GridFtpServer>,
    client_cfg: ClientConfig,
    dsi: Arc<MemDsi>,
    obs: Arc<ig_obs::Obs>,
}

/// One CA, host + user credentials, a server over MemDsi, with a hook to
/// adjust the [`ServerConfig`] (UDP knobs) before start.
fn world_with(seed: u64, tweak: impl FnOnce(ServerConfig) -> ServerConfig) -> World {
    let mut rng = ig_crypto::rng::seeded(seed);
    let mut ca = CertificateAuthority::create(&mut rng, dn("/O=UDP CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(dn("/CN=udp.example.org"), &host_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(dn("/O=Grid/CN=Alice Smith"), &user_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());
    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");

    let dsi = Arc::new(MemDsi::new());
    dsi.put("/home/alice/src.bin", &payload(200_000));
    let obs = ig_obs::Obs::new("udp-e2e");
    let cfg = ServerConfig::new(
        "udp.example.org",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::clone(&dsi) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_stall_timeout(Duration::from_secs(5))
    .with_obs(Arc::clone(&obs));
    let server = GridFtpServer::start(tweak(cfg), seed * 100).unwrap();
    let client_cfg = ClientConfig::new(
        Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    )
    .with_clock(Clock::Fixed(NOW))
    .with_seed(seed * 7 + 1);
    World { server, client_cfg, dsi, obs }
}

fn world(seed: u64) -> World {
    world_with(seed, |c| c)
}

fn login(w: &World) -> ClientSession {
    let mut s = ClientSession::connect(w.server.addr(), w.client_cfg.clone()).unwrap();
    s.login().unwrap();
    s
}

fn udp_opts() -> TransferOpts {
    TransferOpts::default().udp().timeout(Some(Duration::from_secs(5)))
}

#[test]
fn udp_put_then_get_roundtrip() {
    let w = world(71);
    let mut s = login(&w);
    let data = payload(150_000);
    let sent = transfer::put_bytes(&mut s, "/home/alice/up.bin", &data, &udp_opts()).unwrap();
    assert_eq!(sent, data.len() as u64);
    let stored = read_all(w.dsi.as_ref(), &UserContext::superuser(), "/home/alice/up.bin", 1 << 20)
        .unwrap();
    assert_eq!(stored, data);
    let got = transfer::get_bytes(&mut s, "/home/alice/up.bin", &udp_opts()).unwrap();
    assert_eq!(got, data);
    s.quit().unwrap();
}

#[test]
fn udp_feat_advertised_and_disabled_server_rejects() {
    let w = world(72);
    let mut s = login(&w);
    let feats = s.feat().unwrap();
    assert!(
        feats.iter().any(|f| f.contains("DATA TCP,UDP")),
        "FEAT must advertise the UDP transport: {feats:?}"
    );
    s.quit().unwrap();

    let w = world_with(73, |c| c.without_udp());
    let mut s = login(&w);
    let feats = s.feat().unwrap();
    assert!(!feats.iter().any(|f| f.contains("DATA TCP,UDP")));
    let err = transfer::get_bytes(&mut s, "/home/alice/src.bin", &udp_opts()).unwrap_err();
    match err {
        ClientError::ServerError(r) => assert_eq!(r.code, 504, "expected 504, got {r}"),
        other => panic!("expected a 504 server error, got {other:?}"),
    }
    // The session is still usable over TCP after the rejection.
    let got =
        transfer::get_bytes(&mut s, "/home/alice/src.bin", &TransferOpts::default()).unwrap();
    assert_eq!(got, payload(200_000));
    s.quit().unwrap();
}

#[test]
fn udp_carries_traffic_under_every_controller() {
    let w = world(74);
    for cc in [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Bbr] {
        let mut s = login(&w);
        let opts = udp_opts().with_udp_cc(cc);
        let got = transfer::get_bytes(&mut s, "/home/alice/src.bin", &opts).unwrap();
        assert_eq!(got, payload(200_000), "{} download corrupt", cc.label());
        s.quit().unwrap();
    }
}

#[test]
fn udp_parallel_streams_reassemble() {
    let w = world(75);
    let mut s = login(&w);
    let got =
        transfer::get_bytes(&mut s, "/home/alice/src.bin", &udp_opts().parallel(4)).unwrap();
    assert_eq!(got, payload(200_000));
    s.quit().unwrap();
}

#[test]
fn udp_with_dcau_and_prot_private() {
    // The GSI data-channel handshake and sealed records ride the UDP
    // link exactly as they ride TCP: the driver is a reliable Link.
    let w = world(76);
    let mut s = login(&w);
    s.set_prot(ProtectionLevel::Private).unwrap();
    let data = payload(60_000);
    transfer::put_bytes(&mut s, "/home/alice/sealed.bin", &data, &udp_opts()).unwrap();
    let got = transfer::get_bytes(&mut s, "/home/alice/sealed.bin", &udp_opts()).unwrap();
    assert_eq!(got, data);
    s.quit().unwrap();
}

#[test]
fn transport_switches_mid_session() {
    let w = world(77);
    let mut s = login(&w);
    let tcp = TransferOpts::default().timeout(Some(Duration::from_secs(5)));
    let a = transfer::get_bytes(&mut s, "/home/alice/src.bin", &tcp).unwrap();
    let b = transfer::get_bytes(&mut s, "/home/alice/src.bin", &udp_opts()).unwrap();
    let c = transfer::get_bytes(&mut s, "/home/alice/src.bin", &tcp).unwrap();
    assert_eq!(a, b);
    assert_eq!(b, c);
    s.quit().unwrap();
}

/// Chaos-matrix cells for the UDP driver's server-side data plane: the
/// full first-transmission fault mix (drop + duplicate + reorder +
/// bit-flip) on every DATA datagram stream, both directions. Transfers
/// must complete byte-identical, the retransmit/NAK machinery must
/// actually engage, and a re-run under the same seed must reproduce the
/// same bytes (the chaos schedule is a pure function of seed × index).
#[test]
fn udp_transfers_recover_from_seeded_datagram_chaos() {
    let chaos = DatagramChaos {
        seed: 0xC4A05,
        drop: 0.05,
        duplicate: 0.03,
        reorder: 0.05,
        bitflip: 0.02,
    };
    let mut runs = Vec::new();
    for attempt in 0..2 {
        let w = world_with(78, |c| c.with_udp_chaos(chaos));
        let mut s = login(&w);
        s.set_dcau(DcauMode::None).unwrap();
        let data = payload(120_000);
        transfer::put_bytes(&mut s, "/home/alice/chaotic.bin", &data, &udp_opts()).unwrap();
        let got = transfer::get_bytes(&mut s, "/home/alice/chaotic.bin", &udp_opts()).unwrap();
        assert_eq!(got, data, "attempt {attempt}: content diverged under chaos");
        let faults = w.obs.metrics().counter_value("udp.chaos_faults");
        let retx = w.obs.metrics().counter_value("udp.retransmits");
        assert!(faults > 0, "attempt {attempt}: chaos never fired");
        assert!(retx > 0, "attempt {attempt}: faults fired but nothing was retransmitted");
        runs.push((got, faults));
        s.quit().unwrap();
    }
    assert_eq!(runs[0].0, runs[1].0, "seeded chaos replay must be byte-identical");
}
