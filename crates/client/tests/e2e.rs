//! End-to-end client ↔ server tests over real TCP loopback.

use ig_client::{transfer, ClientConfig, ClientSession, TransferOpts};
use ig_gsi::ProtectionLevel;
use ig_pki::cert::Validity;
use ig_pki::time::Clock;
use ig_pki::{CertificateAuthority, Credential, DistinguishedName, Gridmap, TrustStore};
use ig_protocol::command::{Command, DcauMode};
use ig_server::dsi::{read_all, walk};
use ig_server::{Dsi, GridFtpServer, GridmapAuthz, MemDsi, ServerConfig, UserContext};
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 1_000_000;

fn dn(s: &str) -> DistinguishedName {
    DistinguishedName::parse(s).unwrap()
}

/// One CA, one host credential, one user credential, a gridmap mapping
/// the user to `alice`, and a server over a MemDsi.
struct World {
    server: Arc<GridFtpServer>,
    client_cfg: ClientConfig,
    dsi: Arc<MemDsi>,
}

fn world(seed: u64) -> World {
    let mut rng = ig_crypto::rng::seeded(seed);
    let mut ca = CertificateAuthority::create(&mut rng, dn("/O=Test CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(dn("/CN=server.example.org"), &host_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let host_cred = Credential::new(vec![host_cert], host_keys.private).unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(dn("/O=Grid/CN=Alice Smith"), &user_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let user_cred = Credential::new(vec![user_cert], user_keys.private).unwrap();

    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());
    let mut gridmap = Gridmap::new();
    gridmap.add(&dn("/O=Grid/CN=Alice Smith"), "alice");

    let dsi = Arc::new(MemDsi::new());
    dsi.put("/home/alice/data/hello.txt", b"hello gridftp world");

    let cfg = ServerConfig::new(
        "server.example.org",
        host_cred,
        trust.clone(),
        Arc::new(GridmapAuthz::new(gridmap)),
        Arc::clone(&dsi) as Arc<dyn Dsi>,
    )
    .with_clock(Clock::Fixed(NOW));
    let server = GridFtpServer::start(cfg, seed * 100).unwrap();
    let client_cfg =
        ClientConfig::new(user_cred, trust).with_clock(Clock::Fixed(NOW)).with_seed(seed * 7 + 1);
    World { server, client_cfg, dsi }
}

fn login(w: &World) -> ClientSession {
    let mut s = ClientSession::connect(w.server.addr(), w.client_cfg.clone()).unwrap();
    s.login().unwrap();
    s
}

#[test]
fn login_and_quit() {
    let w = world(1);
    let s = login(&w);
    s.quit().unwrap();
}

#[test]
fn login_fails_with_untrusted_user() {
    let w = world(2);
    // A user from an unknown CA.
    let mut rng = ig_crypto::rng::seeded(999);
    let (_other_ca, other_cred) =
        ig_gsi::context::test_support::ca_and_credential(&mut rng, "/O=Other CA", "/CN=eve");
    let cfg = ClientConfig::new(other_cred, w.client_cfg.trust.clone())
        .with_clock(Clock::Fixed(NOW));
    let mut s = ClientSession::connect(w.server.addr(), cfg).unwrap();
    let err = s.login().unwrap_err();
    assert!(err.to_string().contains("535") || err.to_string().contains("Authentication"));
}

#[test]
fn login_fails_without_gridmap_entry() {
    // The paper's stale-gridmap failure: valid certificate, no mapping.
    let mut rng = ig_crypto::rng::seeded(31);
    let mut ca = CertificateAuthority::create(&mut rng, dn("/O=CA"), 512, 0, NOW * 10).unwrap();
    let host_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let host_cert = ca
        .issue(dn("/CN=host"), &host_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let user_keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
    let user_cert = ca
        .issue(dn("/O=Grid/CN=Unmapped"), &user_keys.public, Validity::starting_at(0, NOW * 10), vec![])
        .unwrap();
    let mut trust = TrustStore::new();
    trust.add_root(ca.root_cert().clone());
    let cfg = ServerConfig::new(
        "host",
        Credential::new(vec![host_cert], host_keys.private).unwrap(),
        trust.clone(),
        Arc::new(GridmapAuthz::new(Gridmap::new())), // empty gridmap
        Arc::new(MemDsi::new()),
    )
    .with_clock(Clock::Fixed(NOW));
    let server = GridFtpServer::start(cfg, 44).unwrap();
    let ccfg = ClientConfig::new(
        Credential::new(vec![user_cert], user_keys.private).unwrap(),
        trust,
    )
    .with_clock(Clock::Fixed(NOW));
    let mut s = ClientSession::connect(server.addr(), ccfg).unwrap();
    let err = s.login().unwrap_err();
    assert!(err.to_string().contains("Authorization failed"), "got: {err}");
}

#[test]
fn size_and_mlst() {
    let w = world(3);
    let mut s = login(&w);
    assert_eq!(s.size("/home/alice/data/hello.txt").unwrap(), 19);
    assert!(s.size("/home/alice/missing").is_err());
    // Confinement: bob's home is invisible.
    assert!(s.size("/home/bob/x").is_err());
    s.quit().unwrap();
}

#[test]
fn get_single_stream() {
    let w = world(4);
    let mut s = login(&w);
    let data = transfer::get_bytes(&mut s, "/home/alice/data/hello.txt", &TransferOpts::default())
        .unwrap();
    assert_eq!(data, b"hello gridftp world");
    s.quit().unwrap();
}

#[test]
fn get_parallel_streams() {
    let w = world(5);
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    w.dsi.put("/home/alice/big.bin", &payload);
    let mut s = login(&w);
    for streams in [2usize, 4, 8] {
        let data = transfer::get_bytes(
            &mut s,
            "/home/alice/big.bin",
            &TransferOpts::default().parallel(streams).block(8 * 1024),
        )
        .unwrap();
        assert_eq!(data, payload, "streams={streams}");
    }
    s.quit().unwrap();
}

#[test]
fn put_then_get_roundtrip() {
    let w = world(6);
    let mut s = login(&w);
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i * 13 % 256) as u8).collect();
    let sent = transfer::put_bytes(
        &mut s,
        "/home/alice/upload.bin",
        &payload,
        &TransferOpts::default().parallel(4),
    )
    .unwrap();
    assert_eq!(sent, payload.len() as u64);
    let back =
        transfer::get_bytes(&mut s, "/home/alice/upload.bin", &TransferOpts::default()).unwrap();
    assert_eq!(back, payload);
    // Also verify server-side storage directly.
    let user = UserContext::user("alice");
    assert_eq!(w.dsi.size(&user, "/home/alice/upload.bin").unwrap(), payload.len() as u64);
    s.quit().unwrap();
}

#[test]
fn put_resume_sends_only_missing() {
    let w = world(7);
    let mut s = login(&w);
    let payload: Vec<u8> = (0..64_000u32).map(|i| (i % 251) as u8).collect();
    // Pretend a previous attempt delivered the first half.
    let mut have = ig_protocol::ByteRanges::new();
    have.add(0, 32_000);
    // Pre-stage the first half server-side (as the failed attempt would).
    let user = UserContext::user("alice");
    w.dsi.write(&user, "/home/alice/resume.bin", 0, &payload[..32_000]).unwrap();
    let sent = transfer::put_bytes_resume(
        &mut s,
        "/home/alice/resume.bin",
        &payload,
        Some(&have),
        &TransferOpts::default().parallel(2),
    )
    .unwrap();
    assert_eq!(sent, 32_000, "only the missing half goes over the wire");
    let back =
        transfer::get_bytes(&mut s, "/home/alice/resume.bin", &TransferOpts::default()).unwrap();
    assert_eq!(back, payload);
    s.quit().unwrap();
}

#[test]
fn get_with_prot_private() {
    let w = world(8);
    let payload: Vec<u8> = (0..30_000u32).map(|i| (i % 250) as u8).collect();
    w.dsi.put("/home/alice/secret.bin", &payload);
    let mut s = login(&w);
    s.set_prot(ProtectionLevel::Private).unwrap();
    let data =
        transfer::get_bytes(&mut s, "/home/alice/secret.bin", &TransferOpts::default().parallel(2))
            .unwrap();
    assert_eq!(data, payload);
    s.quit().unwrap();
}

#[test]
fn get_with_dcau_none() {
    let w = world(9);
    let mut s = login(&w);
    s.set_dcau(DcauMode::None).unwrap();
    let data = transfer::get_bytes(&mut s, "/home/alice/data/hello.txt", &TransferOpts::default())
        .unwrap();
    assert_eq!(data, b"hello gridftp world");
    s.quit().unwrap();
}

#[test]
fn listing_via_mlsd() {
    let w = world(10);
    w.dsi.put("/home/alice/data/two.txt", b"22");
    let mut s = login(&w);
    let lines = transfer::list(&mut s, "/home/alice/data").unwrap();
    assert!(lines.iter().any(|l| l.contains("hello.txt")));
    assert!(lines.iter().any(|l| l.contains("two.txt")));
    s.quit().unwrap();
}

#[test]
fn file_management_commands() {
    let w = world(11);
    let mut s = login(&w);
    s.command(&Command::Mkd("/home/alice/newdir".into())).unwrap();
    transfer::put_bytes(&mut s, "/home/alice/newdir/f.bin", b"abc", &TransferOpts::default())
        .unwrap();
    assert_eq!(s.size("/home/alice/newdir/f.bin").unwrap(), 3);
    s.command(&Command::Dele("/home/alice/newdir/f.bin".into())).unwrap();
    assert!(s.size("/home/alice/newdir/f.bin").is_err());
    s.command(&Command::Rmd("/home/alice/newdir".into())).unwrap();
    // CWD/PWD.
    s.command(&Command::Cwd("/home/alice/data".into())).unwrap();
    let pwd = s.command(&Command::Pwd).unwrap();
    assert!(pwd.text().contains("/home/alice/data"));
    // Relative path resolution.
    assert_eq!(s.size("hello.txt").unwrap(), 19);
    s.quit().unwrap();
}

#[test]
fn usage_is_recorded() {
    let w = world(12);
    let mut s = login(&w);
    let _ = transfer::get_bytes(&mut s, "/home/alice/data/hello.txt", &TransferOpts::default())
        .unwrap();
    transfer::put_bytes(&mut s, "/home/alice/u.bin", b"xyzzy", &TransferOpts::default()).unwrap();
    s.quit().unwrap();
    let usage = &w.server.config().usage;
    assert_eq!(usage.total_transfers(), 2);
    assert_eq!(usage.total_bytes(), 19 + 5);
    let recs = usage.records();
    assert!(recs.iter().any(|r| !r.inbound && r.bytes == 19));
    assert!(recs.iter().any(|r| r.inbound && r.bytes == 5 && r.user == "alice"));
}

#[test]
fn concurrent_sessions() {
    // GridFTP's "concurrency" optimization: multiple control sessions
    // each moving files at once.
    let w = world(13);
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 247) as u8).collect();
    for i in 0..4 {
        w.dsi.put(&format!("/home/alice/c{i}.bin"), &payload);
    }
    let mut handles = Vec::new();
    for i in 0..4 {
        let cfg = w.client_cfg.clone().with_seed(1000 + i as u64);
        let addr = w.server.addr();
        let payload = payload.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = ClientSession::connect(addr, cfg).unwrap();
            s.login().unwrap();
            let data =
                transfer::get_bytes(&mut s, &format!("/home/alice/c{i}.bin"), &TransferOpts::default())
                    .unwrap();
            assert_eq!(data, payload);
            s.quit().unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn cksm_checksums_and_verified_put() {
    let w = world(14);
    let mut s = login(&w);
    let payload: Vec<u8> = (0..40_000u32).map(|i| (i * 3 % 251) as u8).collect();
    let sent = transfer::put_bytes_verified(
        &mut s,
        "/home/alice/ck.bin",
        &payload,
        &TransferOpts::default().parallel(2),
    )
    .unwrap();
    assert_eq!(sent, payload.len() as u64);
    // Range checksum matches a local slice hash.
    let remote = s.cksm("/home/alice/ck.bin", 100, Some(1000)).unwrap();
    let local =
        ig_crypto::encode::hex_encode(&ig_crypto::Sha256::digest(&payload[100..1100]));
    assert_eq!(remote, local);
    // Whole-file via length -1.
    let whole = s.cksm("/home/alice/ck.bin", 0, None).unwrap();
    assert_eq!(
        whole,
        ig_crypto::encode::hex_encode(&ig_crypto::Sha256::digest(&payload))
    );
    // Unknown algorithm refused.
    let err = s
        .command(&Command::Cksm {
            algorithm: "MD5".into(),
            offset: 0,
            length: None,
            path: "/home/alice/ck.bin".into(),
        })
        .unwrap_err();
    assert!(err.to_string().contains("504"), "got {err}");
    // Missing file refused.
    assert!(s.cksm("/home/alice/none.bin", 0, None).is_err());
    s.quit().unwrap();
}

#[test]
fn verified_put_detects_server_side_corruption() {
    let w = world(15);
    let mut s = login(&w);
    let payload = vec![7u8; 10_000];
    transfer::put_bytes(&mut s, "/home/alice/c2.bin", &payload, &TransferOpts::default())
        .unwrap();
    // Corrupt the stored file behind the server's back.
    let user = UserContext::user("alice");
    w.dsi.write(&user, "/home/alice/c2.bin", 500, b"CORRUPTION").unwrap();
    let remote = s.cksm("/home/alice/c2.bin", 0, None).unwrap();
    let local = ig_crypto::encode::hex_encode(&ig_crypto::Sha256::digest(&payload));
    assert_ne!(remote, local, "checksum must expose the corruption");
    s.quit().unwrap();
}

#[test]
fn eret_partial_retrieval() {
    let w = world(16);
    let payload: Vec<u8> = (0..80_000u32).map(|i| (i * 7 % 251) as u8).collect();
    w.dsi.put("/home/alice/part.bin", &payload);
    let mut s = login(&w);
    // Interior range.
    let mid = transfer::get_partial(&mut s, "/home/alice/part.bin", 10_000, 5_000, &TransferOpts::default())
        .unwrap();
    assert_eq!(mid, &payload[10_000..15_000]);
    // Range clipped at EOF.
    let tail = transfer::get_partial(&mut s, "/home/alice/part.bin", 79_000, 50_000, &TransferOpts::default())
        .unwrap();
    assert_eq!(tail, &payload[79_000..]);
    // Offset past EOF: empty.
    let none = transfer::get_partial(&mut s, "/home/alice/part.bin", 1_000_000, 10, &TransferOpts::default())
        .unwrap();
    assert!(none.is_empty());
    // Parallel streams work for partial too.
    let par = transfer::get_partial(
        &mut s,
        "/home/alice/part.bin",
        5_000,
        40_000,
        &TransferOpts::default().parallel(4).block(4 * 1024),
    )
    .unwrap();
    assert_eq!(par, &payload[5_000..45_000]);
    // Unknown module refused.
    let err = s
        .command(&Command::Eret { module: "X".into(), args: "0,1 /home/alice/part.bin".into() })
        .unwrap_err();
    assert!(err.to_string().contains("504"), "got {err}");
    // Missing file refused.
    assert!(transfer::get_partial(&mut s, "/home/alice/none", 0, 10, &TransferOpts::default()).is_err());
    s.quit().unwrap();
}

#[test]
fn dir_stream_roundtrip_with_dcau() {
    // put_dir/get_dir over the default DCAU Self data channels (the
    // differential suite runs them with DCAU off) — one MODE E setup
    // moves the whole tree, files spanning multiple blocks.
    let w = world(17);
    let mut s = login(&w);
    let local = Arc::new(MemDsi::new());
    local.put("/up/a/one.bin", b"first");
    local.put("/up/a/two.bin", &[9u8; 5000]);
    local.put("/up/top.txt", b"top-level");
    local.mkdir(&UserContext::superuser(), "/up/z").unwrap();
    let local_dyn: Arc<dyn Dsi> = Arc::clone(&local) as Arc<dyn Dsi>;
    let opts = TransferOpts::default().block(2048);

    let out = transfer::put_dir(&mut s, &local_dyn, "/up", "/home/alice/up", &opts).unwrap();
    assert!(out.complete, "put_dir must complete: {out:?}");
    assert_eq!(out.entries_done, 5, "dirs a,z + files one,two,top");
    assert_eq!(out.entries_done, out.entries_total);
    let alice = UserContext::user("alice");
    assert_eq!(w.dsi.size(&alice, "/home/alice/up/a/two.bin").unwrap(), 5000);

    let back = Arc::new(MemDsi::new());
    let back_dyn: Arc<dyn Dsi> = Arc::clone(&back) as Arc<dyn Dsi>;
    let out2 = transfer::get_dir(&mut s, &back_dyn, "/dl", "/home/alice/up", &opts).unwrap();
    assert!(out2.complete, "get_dir must complete: {out2:?}");
    assert_eq!(out2.entries_done, 5);
    let su = UserContext::superuser();
    let want = walk(local.as_ref(), &su, "/up").unwrap();
    assert_eq!(walk(back.as_ref(), &su, "/dl").unwrap(), want);
    for e in want.iter().filter(|e| !e.is_dir) {
        let a = read_all(local.as_ref(), &su, &format!("/up/{}", e.rel_path), 1 << 16).unwrap();
        let b = read_all(back.as_ref(), &su, &format!("/dl/{}", e.rel_path), 1 << 16).unwrap();
        assert_eq!(a, b, "payload diverged for {}", e.rel_path);
    }

    // Resume skip beyond the local tree is refused before anything moves.
    let err =
        transfer::put_dir_resume(&mut s, &local_dyn, "/up", "/home/alice/up2", 99, &opts)
            .unwrap_err();
    assert!(err.to_string().contains("resume skip"), "got {err}");
    // Missing remote root surfaces as the server's refusal, not a hang.
    let fast = TransferOpts::default().timeout(Some(Duration::from_millis(500)));
    let err = transfer::get_dir(&mut s, &back_dyn, "/x", "/home/alice/nope", &fast).unwrap_err();
    assert!(err.to_string().contains("550"), "got {err}");
    s.quit().unwrap();
}

#[test]
fn pipelined_small_file_fetch() {
    // get_files_pipelined: windows of PORT+RETR pairs go out before any
    // reply is read; files come back in request order over one session.
    let w = world(18);
    let payloads: Vec<Vec<u8>> =
        (0..10).map(|i| (0..600).map(|j| ((j * 11 + i * 29) % 251) as u8).collect()).collect();
    for (i, p) in payloads.iter().enumerate() {
        w.dsi.put(&format!("/home/alice/small/f{i}.bin"), p);
    }
    let mut s = login(&w);
    let paths: Vec<String> = (0..10).map(|i| format!("/home/alice/small/f{i}.bin")).collect();
    let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    // Window smaller than the batch: chunked; larger: single window.
    for window in [4usize, 16] {
        let got = transfer::get_files_pipelined(&mut s, &refs, window, &TransferOpts::default())
            .unwrap();
        assert_eq!(got.len(), 10, "window={window}");
        for (i, (g, p)) in got.iter().zip(&payloads).enumerate() {
            assert_eq!(g, p, "file {i} diverged at window={window}");
        }
    }
    s.quit().unwrap();
}

#[test]
fn pipelined_fetch_surfaces_missing_file() {
    let w = world(19);
    w.dsi.put("/home/alice/ok.bin", b"fine");
    let mut s = login(&w);
    let paths = ["/home/alice/ok.bin", "/home/alice/gone.bin"];
    let fast = TransferOpts::default().timeout(Some(Duration::from_millis(500)));
    let err = transfer::get_files_pipelined(&mut s, &paths, 8, &fast).unwrap_err();
    // The good file transferred, then the missing one's 550 surfaced —
    // the session is declared dead (queued replies), so just drop it.
    assert!(err.to_string().contains("550"), "got {err}");
}

#[test]
fn pipe_window_validation() {
    let w = world(20);
    let mut s = login(&w);
    s.command(&Command::Pipe(8)).unwrap();
    s.command(&Command::Pipe(1)).unwrap();
    for bad in [0u32, 65, 1000] {
        let err = s.command(&Command::Pipe(bad)).unwrap_err();
        assert!(err.to_string().contains("501"), "PIPE {bad}: got {err}");
    }
    s.quit().unwrap();
}
