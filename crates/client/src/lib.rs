//! # ig-client — the GridFTP client
//!
//! The client protocol interpreter of Fig 2 plus a `globus-url-copy`-like
//! transfer API:
//!
//! * [`session::ClientSession`] — control-channel session: `AUTH
//!   GSSAPI`/`ADAT` login, `ENC`-protected commands, delegation to the
//!   server (so the server can DCAU on the user's behalf), `DCSC`
//!   installation, and raw command plumbing.
//! * [`transfer`] — two-party GET/PUT with MODE E parallel streams and
//!   restart support, and **third-party transfers** (client mediates a
//!   server-to-server transfer, "the data flows directly between two
//!   remote sites", §VII), including the §V DCSC orchestration for
//!   cross-CA endpoints.

pub mod error;
pub mod session;
pub mod transfer;

pub use error::ClientError;
pub use ig_xio::{RetryError, RetryPolicy};
pub use session::{ClientConfig, ClientSession};
pub use transfer::{
    get_dir, get_dir_resume, get_dir_with_retry, get_files_pipelined, put_dir, put_dir_resume,
    put_dir_with_retry, third_party, third_party_with_retry, DirTransferOutcome,
    ThirdPartyOutcome, TransferOpts,
};
