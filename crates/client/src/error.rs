//! Client error taxonomy.

use ig_protocol::Reply;
use std::fmt;

/// Errors from client operations.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with an error reply.
    ServerError(Reply),
    /// The server answered something structurally unexpected.
    UnexpectedReply { expected: &'static str, got: Reply },
    /// Security failure (handshake, protection, delegation).
    Gsi(ig_gsi::GsiError),
    /// Protocol parse failure.
    Protocol(ig_protocol::ProtocolError),
    /// PKI failure.
    Pki(ig_pki::PkiError),
    /// Data-plane failure.
    Data(String),
    /// An idle/read deadline expired (partitioned or stalled peer).
    Timeout(String),
    /// Fewer bytes arrived than the transfer promised.
    Truncated(String),
    /// Data arrived but failed structural checks (bad framing, bad
    /// block).
    Corrupt(String),
    /// End-to-end verification (checksum) rejected the received bytes.
    Integrity(String),
    /// Transport failure.
    Io(std::io::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::ServerError(r) => write!(f, "server error: {r}"),
            ClientError::UnexpectedReply { expected, got } => {
                write!(f, "expected {expected}, got: {got}")
            }
            ClientError::Gsi(e) => write!(f, "security: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Pki(e) => write!(f, "pki: {e}"),
            ClientError::Data(m) => write!(f, "data channel: {m}"),
            ClientError::Timeout(m) => write!(f, "timeout: {m}"),
            ClientError::Truncated(m) => write!(f, "truncated: {m}"),
            ClientError::Corrupt(m) => write!(f, "corrupt: {m}"),
            ClientError::Integrity(m) => write!(f, "integrity: {m}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Gsi(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Pki(e) => Some(e),
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl ClientError {
    /// The server reply that caused this error, if any.
    pub fn reply(&self) -> Option<&Reply> {
        match self {
            ClientError::ServerError(r) => Some(r),
            ClientError::UnexpectedReply { got, .. } => Some(got),
            _ => None,
        }
    }
}

impl From<ig_gsi::GsiError> for ClientError {
    fn from(e: ig_gsi::GsiError) -> Self {
        ClientError::Gsi(e)
    }
}

impl From<ig_protocol::ProtocolError> for ClientError {
    fn from(e: ig_protocol::ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<ig_pki::PkiError> for ClientError {
    fn from(e: ig_pki::PkiError) -> Self {
        ClientError::Pki(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ig_server::ServerError> for ClientError {
    fn from(e: ig_server::ServerError) -> Self {
        // Preserve the failure kind across the crate boundary so callers
        // (and the chaos matrix) can assert *which* failure happened.
        match e {
            ig_server::ServerError::Timeout(m) => ClientError::Timeout(m),
            ig_server::ServerError::Truncated(m) => ClientError::Truncated(m),
            ig_server::ServerError::Corrupt(m) => ClientError::Corrupt(m),
            other => ClientError::Data(other.to_string()),
        }
    }
}

/// Classify a transport error: read deadlines become [`ClientError::Timeout`],
/// everything else stays an I/O error.
pub(crate) fn io_to_client(e: std::io::Error, what: &str) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            ClientError::Timeout(format!("{what}: {e}"))
        }
        _ => ClientError::Io(e),
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_reply_accessor() {
        let e = ClientError::ServerError(Reply::new(550, "No such file."));
        assert!(e.to_string().contains("550"));
        assert_eq!(e.reply().unwrap().code, 550);
        let e = ClientError::Data("boom".into());
        assert!(e.reply().is_none());
    }
}
