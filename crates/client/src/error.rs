//! Client error taxonomy.

use ig_protocol::Reply;
use std::fmt;

/// Errors from client operations.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with an error reply.
    ServerError(Reply),
    /// The server answered something structurally unexpected.
    UnexpectedReply { expected: &'static str, got: Reply },
    /// Security failure (handshake, protection, delegation).
    Gsi(ig_gsi::GsiError),
    /// Protocol parse failure.
    Protocol(ig_protocol::ProtocolError),
    /// PKI failure.
    Pki(ig_pki::PkiError),
    /// Data-plane failure.
    Data(String),
    /// Transport failure.
    Io(std::io::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::ServerError(r) => write!(f, "server error: {r}"),
            ClientError::UnexpectedReply { expected, got } => {
                write!(f, "expected {expected}, got: {got}")
            }
            ClientError::Gsi(e) => write!(f, "security: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Pki(e) => write!(f, "pki: {e}"),
            ClientError::Data(m) => write!(f, "data channel: {m}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Gsi(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Pki(e) => Some(e),
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl ClientError {
    /// The server reply that caused this error, if any.
    pub fn reply(&self) -> Option<&Reply> {
        match self {
            ClientError::ServerError(r) => Some(r),
            ClientError::UnexpectedReply { got, .. } => Some(got),
            _ => None,
        }
    }
}

impl From<ig_gsi::GsiError> for ClientError {
    fn from(e: ig_gsi::GsiError) -> Self {
        ClientError::Gsi(e)
    }
}

impl From<ig_protocol::ProtocolError> for ClientError {
    fn from(e: ig_protocol::ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<ig_pki::PkiError> for ClientError {
    fn from(e: ig_pki::PkiError) -> Self {
        ClientError::Pki(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ig_server::ServerError> for ClientError {
    fn from(e: ig_server::ServerError) -> Self {
        ClientError::Data(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_reply_accessor() {
        let e = ClientError::ServerError(Reply::new(550, "No such file."));
        assert!(e.to_string().contains("550"));
        assert_eq!(e.reply().unwrap().code, 550);
        let e = ClientError::Data("boom".into());
        assert!(e.reply().is_none());
    }
}
