//! Transfers: two-party GET/PUT and third-party server-to-server.
//!
//! The data plane rides on [`ig_server::dtp`]'s zero-copy loops: senders
//! frame blocks as vectored header + payload-slice writes out of shared
//! read chunks, receivers parse borrowed block views out of per-connection
//! reused buffers, and any sealed (`PROT S`/`P`) channel encrypts and
//! decrypts in place inside those same buffers — so steady-state transfer
//! throughput is bounded by crypto and I/O, not allocator traffic.

use crate::error::{ClientError, Result};
use crate::session::ClientSession;
use ig_protocol::command::Command;
use ig_protocol::markers::{PerfMarker, RestartMarker};
use ig_netsim::CcAlgo;
use ig_protocol::{ByteRanges, HostPort, Reply};
use ig_server::data::{wrap_accept, wrap_connect, AnyDataListener, DataSecurity};
use ig_server::dtp::{send_dir, send_ranges, Progress, Receiver};
use ig_server::{Dsi, MemDsi, UserContext};
use ig_xio::{ChaosHook, DataTransport, Link, RetryPolicy, TcpLink, UdpConfig, UdpLink};
use std::sync::Arc;
use std::time::Duration;

/// Live-progress callback: invoked for every parsed `112 Perf Marker`.
pub type ProgressFn = dyn Fn(&PerfMarker) + Send + Sync;

/// Per-transfer options.
#[derive(Clone)]
pub struct TransferOpts {
    /// Parallel TCP streams.
    pub parallelism: usize,
    /// MODE E block size.
    pub block_size: usize,
    /// Use striped data channels (`SPAS`/`SPOR`) on the servers.
    pub striped: bool,
    /// Read/accept deadline on the client's own data channels: a silent
    /// peer yields [`ClientError::Timeout`] instead of a hang. `None` =
    /// wait forever (legacy behaviour).
    pub io_timeout: Option<Duration>,
    /// Optional chaos hook wrapped around the client's own data streams
    /// (the chaos matrix's client-side fault site).
    pub chaos: Option<Arc<ChaosHook>>,
    /// Optional live-progress observer fed each parsed 112 marker as it
    /// arrives on the control channel (globus-url-copy's `-vb` display).
    pub on_progress: Option<Arc<ProgressFn>>,
    /// Data-channel transport. Non-TCP transports are negotiated with
    /// the server via `OPTS DATA` before the transfer.
    pub transport: DataTransport,
    /// Congestion controller for UDP data channels (both directions —
    /// the server is told via `OPTS DATA CC=`).
    pub udp_cc: CcAlgo,
}

impl std::fmt::Debug for TransferOpts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferOpts")
            .field("parallelism", &self.parallelism)
            .field("block_size", &self.block_size)
            .field("striped", &self.striped)
            .field("io_timeout", &self.io_timeout)
            .field("chaos", &self.chaos.is_some())
            .field("on_progress", &self.on_progress.is_some())
            .field("transport", &self.transport)
            .field("udp_cc", &self.udp_cc.label())
            .finish()
    }
}

impl Default for TransferOpts {
    fn default() -> Self {
        TransferOpts {
            parallelism: 1,
            block_size: 64 * 1024,
            striped: false,
            io_timeout: Some(Duration::from_secs(30)),
            chaos: None,
            on_progress: None,
            transport: DataTransport::Tcp,
            udp_cc: CcAlgo::Bbr,
        }
    }
}

impl TransferOpts {
    /// Builder: streams.
    pub fn parallel(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.parallelism = n;
        self
    }

    /// Builder: block size.
    pub fn block(mut self, bytes: usize) -> Self {
        assert!(bytes > 0);
        self.block_size = bytes;
        self
    }

    /// Builder: striped transfer (SPAS/SPOR).
    pub fn striped_mode(mut self) -> Self {
        self.striped = true;
        self
    }

    /// Builder: data-channel read/accept deadline.
    pub fn timeout(mut self, t: Option<Duration>) -> Self {
        self.io_timeout = t;
        self
    }

    /// Builder: wrap this transfer's data streams in a chaos hook.
    pub fn chaos(mut self, hook: Arc<ChaosHook>) -> Self {
        self.chaos = Some(hook);
        self
    }

    /// Builder: reliable-UDP MODE E data channels (default BBR).
    pub fn udp(mut self) -> Self {
        self.transport = DataTransport::Udp;
        self
    }

    /// Builder: congestion controller for UDP data channels.
    pub fn with_udp_cc(mut self, cc: CcAlgo) -> Self {
        self.udp_cc = cc;
        self
    }

    /// Builder: live-progress observer for 112 markers.
    pub fn on_progress(mut self, f: impl Fn(&PerfMarker) + Send + Sync + 'static) -> Self {
        self.on_progress = Some(Arc::new(f));
        self
    }

    /// Feed one preliminary reply through the marker pipeline: parsed 112
    /// markers update the client registry (counter + live progress gauge)
    /// and reach the `on_progress` observer.
    fn observe_marker(&self, obs: &ig_obs::Obs, reply: &Reply) -> Option<PerfMarker> {
        if reply.code != 112 {
            return None;
        }
        let marker = PerfMarker::from_reply(reply).ok()?;
        obs.metrics().add("client.perf_markers", 1);
        obs.metrics().set_gauge("client.transfer_progress_bytes", marker.stripe_bytes as f64);
        if let Some(cb) = &self.on_progress {
            cb(&marker);
        }
        Some(marker)
    }

    /// The accept deadline: the configured `io_timeout`, with a generous
    /// default so a dead server can never park the client forever.
    fn accept_deadline(&self) -> Duration {
        self.io_timeout.unwrap_or(Duration::from_secs(30))
    }

    /// Finish a data stream: apply the read deadline, then the chaos
    /// hook (outermost, so faults hit post-handshake wire traffic).
    fn finish_stream(&self, mut stream: Box<dyn Link>) -> Box<dyn Link> {
        let _ = stream.set_recv_timeout(self.io_timeout);
        match &self.chaos {
            Some(hook) => hook.wrap(stream),
            None => stream,
        }
    }
}

/// Data-channel security for the *client's own* data endpoint: with a
/// DCSC context installed, present/accept that credential (§V); otherwise
/// the user's own credential.
fn client_data_security(session: &ClientSession) -> DataSecurity {
    let (credential, trust) = match &session.dcsc {
        Some(cred) => (
            cred.clone(),
            session.config.trust.with_extra_roots(cred.chain().iter()),
        ),
        None => (session.config.credential.clone(), session.config.trust.clone()),
    };
    DataSecurity {
        dcau: session.dcau.clone(),
        prot: session.prot,
        credential: Some(credential),
        trust,
        clock: session.config.clock,
    }
}

/// The client-side UDP driver config: requested controller, transfer
/// deadline as the stall detector, metrics into the session's hub.
fn udp_config(session: &ClientSession, cc: CcAlgo, stall: Option<Duration>) -> UdpConfig {
    let mut cfg = UdpConfig::default()
        .with_cc(cc)
        .with_obs(Arc::clone(&session.config.obs));
    if let Some(t) = stall {
        cfg = cfg.with_stall_timeout(t);
    }
    cfg
}

/// Make sure the server's data plane matches `opts` — sends `OPTS DATA`
/// only when the session's negotiated transport or controller differs
/// (a no-op for the TCP default).
fn ensure_transport(session: &mut ClientSession, opts: &TransferOpts) -> Result<()> {
    let cc_differs = opts.transport == DataTransport::Udp && session.udp_cc != opts.udp_cc;
    if session.data_transport != opts.transport || cc_differs {
        session.set_data_transport(opts.transport, opts.udp_cc)?;
    }
    Ok(())
}

/// Dial one data channel to `addr` over the selected transport.
fn data_connect(
    addr: HostPort,
    session: &ClientSession,
    opts: &TransferOpts,
) -> Result<Box<dyn Link>> {
    match opts.transport {
        DataTransport::Tcp => {
            let tcp = TcpLink::connect(addr.to_socket_addr())
                .map_err(|e| ClientError::Data(format!("connect {addr}: {e}")))?;
            Ok(Box::new(tcp))
        }
        DataTransport::Udp => {
            let cfg = udp_config(session, opts.udp_cc, opts.io_timeout);
            let link = UdpLink::connect(addr.to_socket_addr(), cfg)
                .map_err(|e| ClientError::Data(format!("udp connect {addr}: {e}")))?;
            Ok(Box::new(link))
        }
    }
}

/// Bind the client's own data listener for the selected transport.
fn data_listener(session: &ClientSession, opts: &TransferOpts) -> Result<AnyDataListener> {
    let cfg = udp_config(session, opts.udp_cc, opts.io_timeout);
    AnyDataListener::bind(std::net::Ipv4Addr::LOCALHOST, opts.transport, &cfg)
        .map_err(ClientError::from)
}

fn read_until_final(
    session: &mut ClientSession,
    mut on_marker: impl FnMut(&Reply),
) -> Result<Reply> {
    loop {
        let reply = session.read_reply()?;
        if reply.is_preliminary() {
            on_marker(&reply);
            continue;
        }
        return Ok(reply);
    }
}

/// Upload `data` to `remote_path` (client is the sender; server listens
/// per the GridFTP receiver-listens rule).
pub fn put_bytes(
    session: &mut ClientSession,
    remote_path: &str,
    data: &[u8],
    opts: &TransferOpts,
) -> Result<u64> {
    put_bytes_resume(session, remote_path, data, None, opts)
}

/// Upload with restart: `have` is what the receiver already holds (from
/// 111 markers of a failed attempt); only the complement is sent.
pub fn put_bytes_resume(
    session: &mut ClientSession,
    remote_path: &str,
    data: &[u8],
    have: Option<&ByteRanges>,
    opts: &TransferOpts,
) -> Result<u64> {
    session.set_mode_extended()?;
    ensure_transport(session, opts)?;
    let addr = session.pasv()?;
    if let Some(have) = have {
        session.command(&Command::Rest(have.to_marker()))?;
    }
    session.send_cmd(&Command::Stor(remote_path.into()))?;
    let opening = session.read_reply()?;
    if !opening.is_preliminary() {
        return Err(ClientError::ServerError(opening));
    }
    // Stage the buffer in a local DSI so ranged sends reuse the DTP.
    let staging = MemDsi::new();
    staging.put("/buf", data);
    let staging: Arc<dyn Dsi> = Arc::new(staging);
    let user = UserContext::superuser();
    let sec = client_data_security(session);
    let mut streams: Vec<Box<dyn Link>> = Vec::with_capacity(opts.parallelism);
    for _ in 0..opts.parallelism {
        let conn = data_connect(addr, session, opts)?;
        streams.push(opts.finish_stream(wrap_connect(conn, &sec, &mut session.rng)?));
    }
    let ranges = match have {
        Some(have) => have.missing(data.len() as u64),
        None => vec![(0, data.len() as u64)],
    };
    let progress = Progress::new();
    let send_result =
        send_ranges(streams, &staging, &user, "/buf", &ranges, opts.block_size, &progress);
    // Always drain the final reply, even when our own send failed —
    // otherwise the 426 stays queued and poisons the next command.
    let final_reply = read_until_final(session, |_| {})?;
    if final_reply.is_error() {
        return Err(ClientError::ServerError(final_reply));
    }
    let sent = send_result?;
    Ok(sent)
}

/// Download `remote_path` into memory (client is the receiver and
/// therefore the listener; the server connects in).
pub fn get_bytes(
    session: &mut ClientSession,
    remote_path: &str,
    opts: &TransferOpts,
) -> Result<Vec<u8>> {
    session.set_mode_extended()?;
    ensure_transport(session, opts)?;
    if session.parallelism != opts.parallelism {
        session.set_parallelism(opts.parallelism)?;
    }
    let size = session.size(remote_path)?;
    let listener = data_listener(session, opts)?;
    session.command(&Command::Port(listener.addr()?))?;
    session.send_cmd(&Command::Retr(remote_path.into()))?;
    // Accept the server's connections (it connects before replying 150).
    let sec = client_data_security(session);
    let staging: Arc<dyn Dsi> = Arc::new(MemDsi::new());
    let user = UserContext::superuser();
    let receiver = Receiver::new(Arc::clone(&staging), user.clone(), "/buf", Progress::new());
    for _ in 0..opts.parallelism {
        // A refused transfer never dials in — drain the queued error
        // reply instead of hanging on accept.
        let conn = match listener.accept_link(opts.accept_deadline()) {
            Ok(c) => c,
            Err(_) => {
                let reply = read_until_final(session, |_| {})?;
                if reply.is_error() {
                    return Err(ClientError::ServerError(reply));
                }
                return Err(ClientError::Timeout("data connection never arrived".into()));
            }
        };
        receiver.add_stream(opts.finish_stream(wrap_accept(conn, &sec, &mut session.rng)?))?;
    }
    let obs = Arc::clone(&session.config.obs);
    let final_reply = read_until_final(session, |r| {
        let _ = opts.observe_marker(&obs, r);
    })?;
    let received = receiver.finish();
    if final_reply.is_error() {
        return Err(ClientError::ServerError(final_reply));
    }
    received.map_err(ClientError::from)?;
    let out = ig_server::dsi::read_all(staging.as_ref(), &user, "/buf", 1 << 20)?;
    if out.len() as u64 != size {
        return Err(ClientError::Truncated(format!(
            "expected {size} bytes, received {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Partial retrieval via `ERET P <offset>,<length> <path>` — fetch just
/// a byte range of a remote file. Blocks arrive at their *file* offsets,
/// so the staging buffer is read back from `offset`.
pub fn get_partial(
    session: &mut ClientSession,
    remote_path: &str,
    offset: u64,
    length: u64,
    opts: &TransferOpts,
) -> Result<Vec<u8>> {
    session.set_mode_extended()?;
    ensure_transport(session, opts)?;
    if session.parallelism != opts.parallelism {
        session.set_parallelism(opts.parallelism)?;
    }
    // Fail fast on missing/forbidden paths before opening data channels.
    let _ = session.size(remote_path)?;
    let listener = data_listener(session, opts)?;
    session.command(&Command::Port(listener.addr()?))?;
    session.send_cmd(&Command::Eret {
        module: "P".into(),
        args: format!("{offset},{length} {remote_path}"),
    })?;
    let sec = client_data_security(session);
    let staging: Arc<dyn Dsi> = Arc::new(MemDsi::new());
    let user = UserContext::superuser();
    let progress = Progress::new();
    let receiver = Receiver::new(Arc::clone(&staging), user.clone(), "/buf", Arc::clone(&progress));
    for _ in 0..opts.parallelism {
        // If the server refused before dialing (550 and friends), no
        // connection ever comes — drain the queued reply instead of
        // hanging on accept.
        let conn = match listener.accept_link(opts.accept_deadline()) {
            Ok(c) => c,
            Err(_) => {
                let reply = read_until_final(session, |_| {})?;
                return Err(ClientError::ServerError(reply));
            }
        };
        receiver.add_stream(opts.finish_stream(wrap_accept(conn, &sec, &mut session.rng)?))?;
    }
    let obs = Arc::clone(&session.config.obs);
    let final_reply = read_until_final(session, |r| {
        let _ = opts.observe_marker(&obs, r);
    })?;
    let received = receiver.finish();
    if final_reply.is_error() {
        return Err(ClientError::ServerError(final_reply));
    }
    let got = received.map_err(ClientError::from)?;
    let data = staging.read(&user, "/buf", offset, got as usize)?;
    Ok(data)
}

/// Listing via MLSD over the data channel.
pub fn list(session: &mut ClientSession, path: &str) -> Result<Vec<String>> {
    session.set_mode_extended()?;
    // Listings ride whatever transport the session has negotiated.
    let cfg = udp_config(session, session.udp_cc, Some(Duration::from_secs(30)));
    let listener =
        AnyDataListener::bind(std::net::Ipv4Addr::LOCALHOST, session.data_transport, &cfg)
            .map_err(ClientError::from)?;
    session.command(&Command::Port(listener.addr()?))?;
    session.send_cmd(&Command::Mlsd(Some(path.into())))?;
    let sec = client_data_security(session);
    let staging: Arc<dyn Dsi> = Arc::new(MemDsi::new());
    let user = UserContext::superuser();
    let receiver = Receiver::new(Arc::clone(&staging), user.clone(), "/buf", Progress::new());
    for _ in 0..session.parallelism {
        let conn = listener.accept_link(Duration::from_secs(30))?;
        receiver.add_stream(wrap_accept(conn, &sec, &mut session.rng)?)?;
    }
    let final_reply = read_until_final(session, |_| {})?;
    let _ = receiver.finish();
    if final_reply.is_error() {
        return Err(ClientError::ServerError(final_reply));
    }
    let out = ig_server::dsi::read_all(staging.as_ref(), &user, "/buf", 1 << 20)?;
    let text = String::from_utf8_lossy(&out);
    Ok(text.lines().map(str::to_string).collect())
}

/// Upload and then verify end-to-end integrity with a server-side
/// `CKSM SHA256` (the belt-and-braces mode hosted services run).
pub fn put_bytes_verified(
    session: &mut ClientSession,
    remote_path: &str,
    data: &[u8],
    opts: &TransferOpts,
) -> Result<u64> {
    let sent = put_bytes(session, remote_path, data, opts)?;
    let remote = session.cksm(remote_path, 0, None)?;
    let local = ig_crypto::encode::hex_encode(&ig_crypto::Sha256::digest(data));
    if remote != local {
        return Err(ClientError::Integrity(format!(
            "checksum mismatch after upload: server {remote}, local {local}"
        )));
    }
    Ok(sent)
}

/// Outcome of a third-party transfer attempt.
#[derive(Debug)]
pub struct ThirdPartyOutcome {
    /// Final reply from the receiving (STOR) endpoint.
    pub dst_reply: Reply,
    /// Final reply from the sending (RETR) endpoint.
    pub src_reply: Reply,
    /// Byte ranges the receiver confirmed durable (from 111 markers) —
    /// the checkpoint Globus Online restarts from (§VI-B).
    pub checkpoint: ByteRanges,
    /// Count of 112 performance markers observed from the sender.
    pub perf_markers: usize,
    /// The parsed 112-marker series in arrival order: each entry carries
    /// the sender's cumulative stripe byte count, so the series is the
    /// transfer's live progress curve.
    pub progress: Vec<PerfMarker>,
}

impl ThirdPartyOutcome {
    /// Did both ends complete?
    pub fn is_success(&self) -> bool {
        self.dst_reply.is_success() && self.src_reply.is_success()
    }
}

/// Mediate a third-party transfer: `src_path` on the `src` session's
/// server flows *directly* to `dst_path` on the `dst` session's server
/// (§VII: "the data flows directly between two remote sites").
///
/// `resume_from` seeds both ends with a restart marker so only missing
/// ranges move. Transport-level failures return `Err`; protocol-level
/// failures (DCAU rejection, mid-transfer crash) return `Ok` with error
/// replies inside so callers can inspect the checkpoint and retry.
pub fn third_party(
    src: &mut ClientSession,
    src_path: &str,
    dst: &mut ClientSession,
    dst_path: &str,
    opts: &TransferOpts,
    resume_from: Option<&ByteRanges>,
) -> Result<ThirdPartyOutcome> {
    src.set_mode_extended()?;
    dst.set_mode_extended()?;
    if src.parallelism != opts.parallelism {
        src.set_parallelism(opts.parallelism)?;
    }
    if let Some(have) = resume_from {
        src.command(&Command::Rest(have.to_marker()))?;
        dst.command(&Command::Rest(have.to_marker()))?;
    }
    // Receiver listens; sender connects (§IIC). Striped receivers return
    // one listener per stripe via SPAS; the sender gets them all in SPOR.
    if opts.striped {
        let addrs = dst.spas()?;
        src.command(&Command::Spor(addrs))?;
    } else {
        let addr = dst.pasv()?;
        src.command(&Command::Port(addr))?;
    }
    dst.send_cmd(&Command::Stor(dst_path.into()))?;
    let dst_opening = dst.read_reply()?;
    if !dst_opening.is_preliminary() {
        // Receiver refused outright (e.g. access denied).
        return Ok(ThirdPartyOutcome {
            dst_reply: dst_opening,
            src_reply: Reply::new(226, "not started"),
            checkpoint: resume_from.cloned().unwrap_or_default(),
            perf_markers: 0,
            progress: Vec::new(),
        });
    }
    src.send_cmd(&Command::Retr(src_path.into()))?;
    let mut perf_markers = 0usize;
    let mut progress = Vec::new();
    let src_obs = Arc::clone(&src.config.obs);
    let src_reply = read_until_final(src, |r| {
        if r.code == 112 {
            perf_markers += 1;
            if let Some(m) = opts.observe_marker(&src_obs, r) {
                progress.push(m);
            }
        }
    })?;
    let mut checkpoint = resume_from.cloned().unwrap_or_default();
    let dst_reply = read_until_final(dst, |r| {
        if r.code == 111 {
            if let Ok(m) = RestartMarker::from_reply(r) {
                checkpoint = m.ranges;
            }
        }
    })?;
    Ok(ThirdPartyOutcome { dst_reply, src_reply, checkpoint, perf_markers, progress })
}

/// Outcome of a directory-stream transfer attempt (PUT or GET side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirTransferOutcome {
    /// Walk entries confirmed complete at the destination, cumulative
    /// across resumed attempts — the next attempt's skip count.
    pub entries_done: u64,
    /// Total walk entries in the tree when known: PUT walks the local
    /// tree up front; GET learns the total once the stream completes
    /// (0 while unknown).
    pub entries_total: u64,
    /// The whole tree arrived and every per-file checksum verified.
    pub complete: bool,
    /// Attempts spent (1 unless a retry wrapper resumed).
    pub attempts: u32,
}

/// First integer in a reply's text — the entry count the server's
/// `226 Directory stream complete (<n> entries).` and
/// `426 Directory stream failed after <n> entries: …` replies carry.
fn parse_entry_count(reply: &Reply) -> Option<u64> {
    let digits: String = reply
        .text()
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Upload the whole tree under `local_root` (from `local` storage) to
/// `remote_root` as one streamed `ESTO DIR` transfer: every file and
/// directory flows over a single MODE E data-channel setup instead of
/// paying per-file control round-trips and DCAU handshakes.
pub fn put_dir(
    session: &mut ClientSession,
    local: &Arc<dyn Dsi>,
    local_root: &str,
    remote_root: &str,
    opts: &TransferOpts,
) -> Result<DirTransferOutcome> {
    put_dir_resume(session, local, local_root, remote_root, 0, opts)
}

/// [`put_dir`] resuming at walk entry `skip` — the `entries_done` a
/// previous failed attempt reported. Protocol-level failures (the
/// server's 426 after a mid-stream fault) return `Ok` with
/// `complete: false` and the new cumulative `entries_done`; only
/// control-channel/transport failures are `Err`.
pub fn put_dir_resume(
    session: &mut ClientSession,
    local: &Arc<dyn Dsi>,
    local_root: &str,
    remote_root: &str,
    skip: u64,
    opts: &TransferOpts,
) -> Result<DirTransferOutcome> {
    let user = UserContext::superuser();
    let total =
        ig_server::dsi::walk(local.as_ref(), &user, local_root).map_err(ClientError::from)?.len()
            as u64;
    if skip > total {
        return Err(ClientError::Data(format!(
            "resume skip {skip} beyond the local tree's {total} entries"
        )));
    }
    session.set_mode_extended()?;
    ensure_transport(session, opts)?;
    let addr = session.pasv()?;
    session.send_cmd(&Command::Esto { module: "DIR".into(), args: remote_root.into() })?;
    let opening = session.read_reply()?;
    if !opening.is_preliminary() {
        return Err(ClientError::ServerError(opening));
    }
    let sec = client_data_security(session);
    let mut streams: Vec<Box<dyn Link>> = Vec::with_capacity(opts.parallelism);
    for _ in 0..opts.parallelism {
        let conn = data_connect(addr, session, opts)?;
        streams.push(opts.finish_stream(wrap_connect(conn, &sec, &mut session.rng)?));
    }
    let progress = Progress::new();
    let send_result =
        send_dir(streams, local, &user, local_root, skip, opts.block_size, &progress);
    // Always drain the final reply, even when our own send failed — it
    // carries the server's entry count, i.e. the resume point.
    let final_reply = read_until_final(session, |_| {})?;
    if final_reply.is_success() {
        // The server decoded the whole stream and verified every
        // checksum; its verdict outranks any local send hiccup.
        return Ok(DirTransferOutcome {
            entries_done: total,
            entries_total: total,
            complete: true,
            attempts: 1,
        });
    }
    let _ = send_result; // the 426's entry count is the ground truth
    let done_now = parse_entry_count(&final_reply).unwrap_or(0);
    Ok(DirTransferOutcome {
        entries_done: skip + done_now,
        entries_total: total,
        complete: false,
        attempts: 1,
    })
}

/// Download the whole tree under `remote_root` into `local` storage at
/// `local_root` as one streamed `ERET DIR` transfer.
pub fn get_dir(
    session: &mut ClientSession,
    local: &Arc<dyn Dsi>,
    local_root: &str,
    remote_root: &str,
    opts: &TransferOpts,
) -> Result<DirTransferOutcome> {
    get_dir_resume(session, local, local_root, remote_root, 0, opts)
}

/// [`get_dir`] resuming at walk entry `skip`: the server streams the
/// tree starting at that entry, and every *complete* entry that arrives
/// is expanded — a fault mid-file never leaves a partial file, so
/// `entries_done` is always a safe next skip.
pub fn get_dir_resume(
    session: &mut ClientSession,
    local: &Arc<dyn Dsi>,
    local_root: &str,
    remote_root: &str,
    skip: u64,
    opts: &TransferOpts,
) -> Result<DirTransferOutcome> {
    session.set_mode_extended()?;
    ensure_transport(session, opts)?;
    if session.parallelism != opts.parallelism {
        session.set_parallelism(opts.parallelism)?;
    }
    let listener = data_listener(session, opts)?;
    session.command(&Command::Port(listener.addr()?))?;
    session.send_cmd(&Command::Eret {
        module: "DIR".into(),
        args: format!("{skip} {remote_root}"),
    })?;
    let sec = client_data_security(session);
    let staging: Arc<dyn Dsi> = Arc::new(MemDsi::new());
    let user = UserContext::superuser();
    let progress = Progress::new();
    let receiver =
        Receiver::new(Arc::clone(&staging), user.clone(), "/stream", Arc::clone(&progress));
    let mut connected = 0usize;
    for _ in 0..opts.parallelism {
        match listener.accept_link(opts.accept_deadline()) {
            Ok(conn) => {
                receiver
                    .add_stream(opts.finish_stream(wrap_accept(conn, &sec, &mut session.rng)?))?;
                connected += 1;
            }
            Err(_) if connected == 0 => {
                // Refused before dialing (bad root, skip past the end):
                // the queued error reply explains it.
                let reply = read_until_final(session, |_| {})?;
                return Err(ClientError::ServerError(reply));
            }
            // A partially-connected transfer still moves data; let the
            // stream deadlines surface whatever is wrong.
            Err(_) => break,
        }
    }
    let obs = Arc::clone(&session.config.obs);
    let final_reply = read_until_final(session, |r| {
        let _ = opts.observe_marker(&obs, r);
    })?;
    let fin = receiver.finish();
    // Expand the complete-entry prefix no matter how the stream ended:
    // holes left by lost blocks fail a header magic or trailer checksum
    // and stop the decoder at the last complete entry, never mid-file.
    let staged = ig_server::dsi::read_all(staging.as_ref(), &user, "/stream", 1 << 20)
        .unwrap_or_default();
    let out = ig_server::dsi::expand_stream(local.as_ref(), &user, local_root, &staged)
        .map_err(ClientError::from)?;
    let complete = out.finished && out.error.is_none();
    let done = skip + out.entries;
    let _ = (fin, final_reply); // decoder verdict outranks transport noise
    Ok(DirTransferOutcome {
        entries_done: done,
        entries_total: if complete { done } else { 0 },
        complete,
        attempts: 1,
    })
}

/// Drive [`put_dir_resume`] under a [`RetryPolicy`], making a fresh
/// session per attempt (mid-transfer faults can take the control channel
/// with them) and resuming from the last confirmed entry count. The
/// skip is monotone: a failed attempt can only move it forward.
pub fn put_dir_with_retry(
    mut make_session: impl FnMut() -> Result<ClientSession>,
    local: &Arc<dyn Dsi>,
    local_root: &str,
    remote_root: &str,
    opts: &TransferOpts,
    policy: &RetryPolicy,
) -> Result<DirTransferOutcome> {
    retry_dir(policy, |skip| {
        let mut session = make_session()?;
        let out = put_dir_resume(&mut session, local, local_root, remote_root, skip, opts);
        let _ = session.quit();
        out
    })
}

/// Drive [`get_dir_resume`] under a [`RetryPolicy`] with a fresh session
/// per attempt; see [`put_dir_with_retry`].
pub fn get_dir_with_retry(
    mut make_session: impl FnMut() -> Result<ClientSession>,
    local: &Arc<dyn Dsi>,
    local_root: &str,
    remote_root: &str,
    opts: &TransferOpts,
    policy: &RetryPolicy,
) -> Result<DirTransferOutcome> {
    retry_dir(policy, |skip| {
        let mut session = make_session()?;
        let out = get_dir_resume(&mut session, local, local_root, remote_root, skip, opts);
        let _ = session.quit();
        out
    })
}

/// The shared file-granular retry loop: run one attempt at the current
/// skip, advance the skip monotonically from the outcome, stop on
/// completion or an exhausted budget.
fn retry_dir(
    policy: &RetryPolicy,
    mut attempt_at: impl FnMut(u64) -> Result<DirTransferOutcome>,
) -> Result<DirTransferOutcome> {
    let start = std::time::Instant::now();
    let mut skip = 0u64;
    let mut attempt = 0u32;
    let mut last_err: Option<ClientError> = None;
    loop {
        attempt += 1;
        match attempt_at(skip) {
            Ok(out) if out.complete => {
                return Ok(DirTransferOutcome { attempts: attempt, ..out });
            }
            Ok(out) => {
                skip = skip.max(out.entries_done);
                last_err = None;
            }
            Err(e) => last_err = Some(e),
        }
        if attempt >= policy.max_attempts {
            return match last_err {
                Some(e) => Err(e),
                None => Ok(DirTransferOutcome {
                    entries_done: skip,
                    entries_total: 0,
                    complete: false,
                    attempts: attempt,
                }),
            };
        }
        let backoff = policy.backoff(attempt);
        if let Some(deadline) = policy.overall_deadline {
            if start.elapsed() + backoff >= deadline {
                return Err(ClientError::Timeout(format!(
                    "directory transfer: overall deadline exceeded after {attempt} attempt(s)"
                )));
            }
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
    }
}

/// Fetch many small files over one session with control-channel
/// pipelining: each window of `PORT`+`RETR` pairs is sent before any
/// reply is read, so command latency overlaps instead of serialising
/// (the `PIPE` declaration tells the server the window in play). Files
/// are returned in request order; one data connection per file.
///
/// On a per-file server error the session is left with queued replies
/// from the rest of the window — treat the session as dead.
pub fn get_files_pipelined(
    session: &mut ClientSession,
    remote_paths: &[&str],
    window: usize,
    opts: &TransferOpts,
) -> Result<Vec<Vec<u8>>> {
    let window = window.clamp(1, 64);
    session.set_mode_extended()?;
    if session.parallelism != 1 {
        // One connection per file: the server dials per its OPTS RETR
        // parallelism, and we accept exactly one stream each.
        session.set_parallelism(1)?;
    }
    session.command(&Command::Pipe(window as u32))?;
    let sec = client_data_security(session);
    let user = UserContext::superuser();
    let mut out = Vec::with_capacity(remote_paths.len());
    for chunk in remote_paths.chunks(window) {
        let mut listeners = Vec::with_capacity(chunk.len());
        for _ in chunk {
            let cfg = udp_config(session, session.udp_cc, opts.io_timeout);
            listeners.push(AnyDataListener::bind(
                std::net::Ipv4Addr::LOCALHOST,
                session.data_transport,
                &cfg,
            )?);
        }
        // The whole window goes out before any reply is read.
        for (listener, path) in listeners.iter().zip(chunk) {
            session.send_cmd(&Command::Port(listener.addr()?))?;
            session.send_cmd(&Command::Retr((*path).into()))?;
        }
        for listener in &listeners {
            // The server answers strictly in order, transferring as it
            // goes; accept (and DCAU-handshake) this file's connection
            // first — the server sends its 150 only after the
            // handshake, so reading replies first would deadlock.
            let conn = match listener.accept_link(opts.accept_deadline()) {
                Ok(c) => c,
                Err(_) => {
                    let _port_ack = read_until_final(session, |_| {})?;
                    let fin = read_until_final(session, |_| {})?;
                    return Err(ClientError::ServerError(fin));
                }
            };
            let staging: Arc<dyn Dsi> = Arc::new(MemDsi::new());
            let receiver =
                Receiver::new(Arc::clone(&staging), user.clone(), "/buf", Progress::new());
            receiver.add_stream(opts.finish_stream(wrap_accept(conn, &sec, &mut session.rng)?))?;
            let port_ack = read_until_final(session, |_| {})?;
            if port_ack.is_error() {
                return Err(ClientError::ServerError(port_ack));
            }
            let final_reply = read_until_final(session, |_| {})?;
            let received = receiver.finish();
            if final_reply.is_error() {
                return Err(ClientError::ServerError(final_reply));
            }
            received.map_err(ClientError::from)?;
            out.push(ig_server::dsi::read_all(staging.as_ref(), &user, "/buf", 1 << 20)?);
        }
    }
    Ok(out)
}

/// Third-party transfer with checkpoint restart under a [`RetryPolicy`]:
/// each failed attempt's 111-marker checkpoint seeds the next attempt's
/// `REST`, so only missing ranges move again (§VI-B's recovery loop).
///
/// Transport errors (`Err` from [`third_party`]) also consume an
/// attempt: the sessions may still be usable (e.g. a data-channel
/// timeout), and if they are not, the next attempt fails the same way
/// and the budget runs out. Backoff sleeps honour the policy's overall
/// deadline.
pub fn third_party_with_retry(
    src: &mut ClientSession,
    src_path: &str,
    dst: &mut ClientSession,
    dst_path: &str,
    opts: &TransferOpts,
    resume_from: Option<&ByteRanges>,
    policy: &RetryPolicy,
) -> Result<ThirdPartyOutcome> {
    let start = std::time::Instant::now();
    let mut checkpoint = resume_from.cloned();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = third_party(src, src_path, dst, dst_path, opts, checkpoint.as_ref());
        match result {
            Ok(outcome) if outcome.is_success() => return Ok(outcome),
            Ok(outcome) => {
                if attempt >= policy.max_attempts {
                    return Ok(outcome); // caller inspects the failed replies
                }
                // Restart from whatever the receiver confirmed durable.
                checkpoint = Some(outcome.checkpoint);
            }
            Err(e) => {
                if attempt >= policy.max_attempts {
                    return Err(e);
                }
            }
        }
        let backoff = policy.backoff(attempt);
        if let Some(deadline) = policy.overall_deadline {
            if start.elapsed() + backoff >= deadline {
                return Err(ClientError::Timeout(format!(
                    "third-party transfer: overall deadline exceeded after {attempt} attempt(s)"
                )));
            }
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
    }
}
