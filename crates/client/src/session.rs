//! The client protocol interpreter: one control-channel session.

use crate::error::{io_to_client, ClientError, Result};
use ig_crypto::encode::{base64_decode, base64_encode};
use ig_obs::kv;
use ig_gsi::context::{GsiConfig, SecureContext};
use ig_gsi::handshake::{Initiator, Step};
use ig_gsi::{GsiError, ProtectionLevel};
use ig_pki::proxy::ProxyOptions;
use ig_pki::time::Clock;
use ig_pki::{Credential, TrustStore};
use ig_protocol::command::{Command, DcauMode, ModeCode, ProtectedKind};
use ig_protocol::secure_line;
use ig_protocol::{HostPort, Reply};
use ig_netsim::CcAlgo;
use ig_xio::{DataTransport, Link, RetryPolicy, TcpLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Client-side configuration (one user identity at one endpoint).
#[derive(Clone)]
pub struct ClientConfig {
    /// The user's credential for this endpoint (e.g. the short-lived
    /// certificate from `myproxy-logon`, §IV-E).
    pub credential: Credential,
    /// Trust roots to validate the server.
    pub trust: TrustStore,
    /// Clock for validity checks.
    pub clock: Clock,
    /// Delegate a proxy to the server at login (needed for DCAU and for
    /// third-party transfers; on by default as in globus-url-copy).
    pub delegate: bool,
    /// RSA key size for delegated proxies.
    pub key_bits: usize,
    /// Deterministic seed for this session's randomness.
    pub seed: u64,
    /// Retry/timeout policy for connecting and control-channel reads.
    /// The default is [`RetryPolicy::once`]: one attempt, no deadlines —
    /// exactly the legacy behaviour before the policy existed.
    pub retry: RetryPolicy,
    /// Observability hub: the session span, command RTT metrics, and
    /// retry/marker events. Defaults to [`ig_obs::Obs::global`]; tests
    /// pass a private hub per client.
    pub obs: Arc<ig_obs::Obs>,
}

impl ClientConfig {
    /// Config with defaults.
    pub fn new(credential: Credential, trust: TrustStore) -> Self {
        ClientConfig {
            credential,
            trust,
            clock: Clock::System,
            delegate: true,
            key_bits: 512,
            seed: 0x1951_07_05,
            retry: RetryPolicy::once(),
            obs: ig_obs::Obs::global(),
        }
    }

    /// Builder: fixed clock.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Builder: seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: disable login-time delegation.
    pub fn no_delegation(mut self) -> Self {
        self.delegate = false;
        self
    }

    /// Builder: retry/timeout policy for connect and control reads.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: a private observability hub (tests isolate metrics and
    /// traces per client instance this way).
    pub fn with_obs(mut self, obs: Arc<ig_obs::Obs>) -> Self {
        self.obs = obs;
        self
    }
}

/// An authenticated control-channel session.
pub struct ClientSession {
    link: Box<dyn Link>,
    ctx: Option<SecureContext>,
    pub(crate) config: ClientConfig,
    pub(crate) rng: StdRng,
    /// Current data-channel security knobs (mirrors what we've told the
    /// server).
    pub(crate) dcau: DcauMode,
    pub(crate) prot: ProtectionLevel,
    pub(crate) parallelism: usize,
    /// Data-channel transport negotiated with the server (`OPTS DATA`).
    pub(crate) data_transport: DataTransport,
    /// Congestion controller for UDP data channels (mirrors the server).
    pub(crate) udp_cc: CcAlgo,
    /// Client-side record of the DCSC credential installed on the server
    /// (used to pick the matching credential for our own data endpoints).
    pub(crate) dcsc: Option<Credential>,
    /// Session-lifetime span; command events hang off it.
    pub(crate) span: ig_obs::Span,
    /// Cached handle for the per-command RTT histogram.
    cmd_rtt: Arc<ig_obs::Histogram>,
}

impl ClientSession {
    /// Connect over TCP and read the banner. The dial is retried under
    /// `config.retry`; the control channel inherits the policy's
    /// per-attempt timeout as its read deadline.
    pub fn connect(addr: HostPort, config: ClientConfig) -> Result<Self> {
        let policy = config.retry.clone();
        let link = policy
            .run_with_obs(&config.obs, "dial", |_attempt| {
                TcpLink::connect(addr.to_socket_addr())
            })
            .map_err(|e| match e.into_last() {
                Some(io) => io_to_client(io, "control connect"),
                None => ClientError::Timeout("control connect: deadline exceeded".into()),
            })?;
        Self::from_link(Box::new(link), config)
    }

    /// Start a session over an arbitrary link (pipes in tests).
    pub fn from_link(mut link: Box<dyn Link>, config: ClientConfig) -> Result<Self> {
        let _ = link.set_recv_timeout(config.retry.attempt_timeout);
        let rng = StdRng::seed_from_u64(config.seed);
        let span = config.obs.span("session", vec![kv("seed", config.seed)]);
        let cmd_rtt = config.obs.metrics().histogram("client.cmd_rtt_ns");
        let mut s = ClientSession {
            link,
            ctx: None,
            config,
            rng,
            dcau: DcauMode::Self_,
            prot: ProtectionLevel::Clear,
            parallelism: 1,
            data_transport: DataTransport::Tcp,
            udp_cc: CcAlgo::Bbr,
            dcsc: None,
            span,
            cmd_rtt,
        };
        let banner = s.read_reply()?;
        if banner.code != 220 {
            return Err(ClientError::UnexpectedReply { expected: "220 banner", got: banner });
        }
        Ok(s)
    }

    /// Read one reply message (unwrapping protection if present).
    pub fn read_reply(&mut self) -> Result<Reply> {
        let msg = self.link.recv().map_err(|e| match e.kind() {
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                ClientError::Timeout(format!("control recv: {e}"))
            }
            _ => ClientError::Data(format!("control recv: {e}")),
        })?;
        let text = String::from_utf8(msg)
            .map_err(|_| ClientError::Data("reply not UTF-8".into()))?;
        let reply = Reply::parse(&text)?;
        if (reply.code == 631 || reply.code == 633) && self.ctx.is_some() {
            let ctx = self.ctx.as_mut().expect("checked");
            Ok(secure_line::unprotect_reply(ctx, &reply)?)
        } else {
            Ok(reply)
        }
    }

    /// Send a command (wrapped in `ENC` once the channel is secured).
    pub fn send_cmd(&mut self, cmd: &Command) -> Result<()> {
        let line = match self.ctx.as_mut() {
            Some(ctx) => secure_line::protect_command(ctx, ProtectedKind::Enc, cmd).to_string(),
            None => cmd.to_string(),
        };
        self.link
            .send(line.as_bytes())
            .map_err(|e| ClientError::Data(format!("control send: {e}")))
    }

    /// Send a command and collect replies until a final one arrives.
    /// Preliminary (1xx) replies are passed to `on_marker`.
    pub fn command_with(
        &mut self,
        cmd: &Command,
        mut on_marker: impl FnMut(&Reply),
    ) -> Result<Reply> {
        self.span.event("cmd.dispatch", vec![kv("verb", cmd.verb())]);
        let t0 = std::time::Instant::now();
        self.send_cmd(cmd)?;
        loop {
            let reply = self.read_reply()?;
            if reply.is_preliminary() {
                on_marker(&reply);
                continue;
            }
            self.cmd_rtt.record(t0.elapsed().as_nanos() as u64);
            self.config.obs.metrics().add(&format!("client.reply_{}", reply.code), 1);
            return Ok(reply);
        }
    }

    /// Send a command, expect a non-error final reply.
    pub fn command(&mut self, cmd: &Command) -> Result<Reply> {
        let reply = self.command_with(cmd, |_| {})?;
        if reply.is_error() {
            return Err(ClientError::ServerError(reply));
        }
        Ok(reply)
    }

    /// Pipeline a window of commands: send them all before reading any
    /// reply, then collect one final reply per command, in order
    /// (preliminary 1xx replies are skipped). The server answers queued
    /// commands strictly in order on both cores, so `replies[i]` is the
    /// answer to `cmds[i]`. Error finals are returned in place, not
    /// raised — a pipelined 5xx must not desynchronise the remaining
    /// replies.
    pub fn pipeline(&mut self, cmds: &[Command]) -> Result<Vec<Reply>> {
        self.span
            .event("cmd.pipeline", vec![kv("window", cmds.len() as u64)]);
        let t0 = std::time::Instant::now();
        for cmd in cmds {
            self.send_cmd(cmd)?;
        }
        let mut replies = Vec::with_capacity(cmds.len());
        while replies.len() < cmds.len() {
            let reply = self.read_reply()?;
            if reply.is_preliminary() {
                continue;
            }
            self.config.obs.metrics().add(&format!("client.reply_{}", reply.code), 1);
            replies.push(reply);
        }
        self.cmd_rtt.record(t0.elapsed().as_nanos() as u64);
        Ok(replies)
    }

    /// Authenticate with `AUTH GSSAPI` + `ADAT`, then (by default)
    /// delegate a proxy so the server can act on the data channel.
    pub fn login(&mut self) -> Result<()> {
        let t0 = std::time::Instant::now();
        let out = self.login_inner();
        self.config.obs.metrics().observe("client.login_ns", t0.elapsed().as_nanos() as u64);
        if out.is_ok() {
            self.span.event("login.ok", vec![kv("delegated", self.config.delegate)]);
        }
        out
    }

    fn login_inner(&mut self) -> Result<()> {
        let reply = self.command(&Command::Auth("GSSAPI".into()))?;
        if reply.code != 334 {
            return Err(ClientError::UnexpectedReply { expected: "334", got: reply });
        }
        let gsi_cfg = GsiConfig {
            credential: Some(self.config.credential.clone()),
            trust: self.config.trust.clone(),
            require_peer_auth: true,
            clock: self.config.clock,
            insecure_skip_peer_validation: false,
        };
        let (mut initiator, first) = Initiator::start(gsi_cfg, &mut self.rng);
        let mut outgoing = first;
        loop {
            let reply = self.command_with(&Command::Adat(base64_encode(&outgoing)), |_| {})?;
            match reply.code {
                335 => {
                    let token_b64 = reply.adat_payload().ok_or_else(|| {
                        ClientError::UnexpectedReply { expected: "335 ADAT=", got: reply.clone() }
                    })?;
                    let token = base64_decode(token_b64)
                        .map_err(|e| ClientError::Gsi(GsiError::Decode(e.to_string())))?;
                    match initiator.step(&token, &mut self.rng)? {
                        Step::Send(t) => outgoing = t,
                        Step::SendAndDone(t, est) => {
                            // Final token rides in one more ADAT; server
                            // answers 235.
                            let done =
                                self.command_with(&Command::Adat(base64_encode(&t)), |_| {})?;
                            if done.code != 235 {
                                return Err(ClientError::UnexpectedReply {
                                    expected: "235",
                                    got: done,
                                });
                            }
                            self.ctx = Some(SecureContext::from_established(est));
                            break;
                        }
                        Step::Done(est) => {
                            self.ctx = Some(SecureContext::from_established(est));
                            break;
                        }
                    }
                }
                235 => {
                    return Err(ClientError::UnexpectedReply {
                        expected: "handshake still in flight",
                        got: reply,
                    })
                }
                _ => return Err(ClientError::ServerError(reply)),
            }
        }
        if self.config.delegate {
            self.delegate()?;
        }
        Ok(())
    }

    /// Run the delegation exchange (`SITE DELEG REQ` / `SITE DELEG PUT`).
    pub fn delegate(&mut self) -> Result<()> {
        let reply = self.command(&Command::Site("DELEG REQ".into()))?;
        let b64 = reply
            .text()
            .strip_prefix("DELEG=")
            .ok_or_else(|| ClientError::UnexpectedReply {
                expected: "250 DELEG=",
                got: reply.clone(),
            })?;
        let req = base64_decode(b64)
            .map_err(|e| ClientError::Gsi(GsiError::Decode(e.to_string())))?;
        let grant = ig_gsi::delegation::grant(
            &mut self.rng,
            &self.config.credential,
            &req,
            self.config.clock.now(),
            ProxyOptions::default(),
        )?;
        self.command(&Command::Site(format!("DELEG PUT {}", base64_encode(&grant))))?;
        Ok(())
    }

    /// `OPTS RETR Parallelism=n,n,n;` + local bookkeeping.
    pub fn set_parallelism(&mut self, n: usize) -> Result<()> {
        assert!(n >= 1);
        self.command(&Command::Opts {
            target: "RETR".into(),
            params: format!("Parallelism={n},{n},{n};"),
        })?;
        self.parallelism = n;
        Ok(())
    }

    /// `FEAT` — the server's feature lines (without the 211 framing).
    pub fn feat(&mut self) -> Result<Vec<String>> {
        let reply = self.command(&Command::Feat)?;
        Ok(reply.lines.iter().map(|l| l.trim().to_string()).collect())
    }

    /// `OPTS DATA Transport=<tcp|udp>;CC=<algo>;` + local bookkeeping:
    /// select the data-channel transport (and UDP congestion controller)
    /// for subsequent transfers on this session. A server without the
    /// UDP driver answers 504, surfaced as [`ClientError::ServerError`].
    pub fn set_data_transport(&mut self, transport: DataTransport, cc: CcAlgo) -> Result<()> {
        self.command(&Command::Opts {
            target: "DATA".into(),
            params: format!("Transport={};CC={};", transport.label(), cc.label()),
        })?;
        self.data_transport = transport;
        self.udp_cc = cc;
        Ok(())
    }

    /// `PROT <level>` + local bookkeeping.
    pub fn set_prot(&mut self, level: ProtectionLevel) -> Result<()> {
        self.command(&Command::Pbsz(1 << 20))?;
        self.command(&Command::Prot(level.code()))?;
        self.prot = level;
        Ok(())
    }

    /// `DCAU <mode>` + local bookkeeping.
    pub fn set_dcau(&mut self, mode: DcauMode) -> Result<()> {
        self.command(&Command::Dcau(mode.clone()))?;
        self.dcau = mode;
        Ok(())
    }

    /// `MODE E` (required before parallel transfers).
    pub fn set_mode_extended(&mut self) -> Result<()> {
        self.command(&Command::Mode(ModeCode::Extended))?;
        Ok(())
    }

    /// Install a DCSC P context on the server (§V) and remember it.
    pub fn install_dcsc(&mut self, credential: &Credential) -> Result<()> {
        self.command(&ig_protocol::dcsc::encode_dcsc_p(credential))?;
        self.dcsc = Some(credential.clone());
        Ok(())
    }

    /// Revert to the default context (`DCSC D`).
    pub fn revert_dcsc(&mut self) -> Result<()> {
        self.command(&ig_protocol::dcsc::encode_dcsc_d())?;
        self.dcsc = None;
        Ok(())
    }

    /// `CKSM SHA256 <offset> <length> <path>` — server-side checksum.
    pub fn cksm(&mut self, path: &str, offset: u64, length: Option<u64>) -> Result<String> {
        let reply = self.command(&Command::Cksm {
            algorithm: "SHA256".into(),
            offset,
            length,
            path: path.into(),
        })?;
        Ok(reply.text().trim().to_string())
    }

    /// `SIZE <path>`.
    pub fn size(&mut self, path: &str) -> Result<u64> {
        let reply = self.command(&Command::Size(path.into()))?;
        reply
            .text()
            .trim()
            .parse()
            .map_err(|_| ClientError::UnexpectedReply { expected: "213 <size>", got: reply })
    }

    /// `PASV` — returns the server's data address.
    pub fn pasv(&mut self) -> Result<HostPort> {
        let reply = self.command(&Command::Pasv)?;
        parse_pasv_addr(&reply)
            .ok_or(ClientError::UnexpectedReply { expected: "227 (h,p)", got: reply })
    }

    /// `SPAS` — returns all stripe addresses.
    pub fn spas(&mut self) -> Result<Vec<HostPort>> {
        let reply = self.command(&Command::Spas)?;
        let mut out = Vec::new();
        for line in &reply.lines[1..] {
            let line = line.trim();
            if line.is_empty() || !line.contains(',') {
                continue;
            }
            if let Ok(hp) = HostPort::parse(line) {
                out.push(hp);
            }
        }
        if out.is_empty() {
            return Err(ClientError::UnexpectedReply { expected: "229 addresses", got: reply });
        }
        Ok(out)
    }

    /// `QUIT`.
    pub fn quit(mut self) -> Result<()> {
        let reply = self.command_with(&Command::Quit, |_| {})?;
        if reply.code != 221 {
            return Err(ClientError::UnexpectedReply { expected: "221", got: reply });
        }
        let obs = Arc::clone(&self.config.obs);
        drop(self); // ends the session span before the trace is dumped
        obs.dump_if_env();
        Ok(())
    }

    /// The user credential this session authenticates as.
    pub fn credential(&self) -> &Credential {
        &self.config.credential
    }

    /// The session's clock.
    pub fn clock(&self) -> Clock {
        self.config.clock
    }
}

/// Extract the host-port from a `227 Entering Passive Mode (h1,h2,...)`.
fn parse_pasv_addr(reply: &Reply) -> Option<HostPort> {
    let text = reply.text();
    let start = text.find('(')?;
    let end = text.rfind(')')?;
    HostPort::parse(&text[start + 1..end]).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pasv_parsing() {
        let r = Reply::new(227, "Entering Passive Mode (127,0,0,1,4,210)");
        let hp = parse_pasv_addr(&r).unwrap();
        assert_eq!(hp.port, 4 * 256 + 210);
        assert!(parse_pasv_addr(&Reply::new(227, "no parens")).is_none());
        assert!(parse_pasv_addr(&Reply::new(227, "(bogus)")).is_none());
    }
}
