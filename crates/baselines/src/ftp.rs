//! Legacy stream-mode FTP: one cleartext TCP stream, no restart, no
//! parallelism — "Legacy FTP, SFTP, and HTTP also suffer from low
//! performance" (§VII).

use ig_netsim::TcpParams;
use ig_protocol::HostPort;
use ig_server::{Dsi, UserContext};
use ig_xio::{Link, TcpLink};
use serde::{Deserialize, Serialize};
use std::io;
use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Stream chunk size.
pub const FTP_CHUNK: usize = 64 * 1024;

/// netsim parameters for plain FTP: untuned default buffers (a modest
/// 256 KiB window — better than scp, far below a tuned GridFTP), single
/// stream, no cipher ceiling.
pub fn ftp_netsim_params() -> TcpParams {
    TcpParams::tuned().with_window_cap(256 * 1024)
}

#[derive(Serialize, Deserialize)]
enum FtpMsg {
    /// RETR equivalent.
    Get {
        /// Path.
        path: String,
    },
    /// STOR equivalent.
    Put {
        /// Path.
        path: String,
        /// Length to follow.
        len: u64,
    },
    /// Go ahead / size notice.
    Ok {
        /// File length for Get.
        len: u64,
    },
    /// Refusal.
    Err {
        /// Reason.
        message: String,
    },
}

fn encode(v: &FtpMsg) -> Vec<u8> {
    serde_json::to_vec(v).expect("ftp message serialization cannot fail")
}

fn decode(raw: &[u8]) -> io::Result<FtpMsg> {
    serde_json::from_slice(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A plain-FTP host.
pub struct PlainFtpHost {
    addr: HostPort,
    stop: Arc<AtomicBool>,
}

impl PlainFtpHost {
    /// Start serving `dsi`.
    pub fn start(dsi: Arc<dyn Dsi>) -> io::Result<Arc<Self>> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
        let addr = HostPort::from_socket_addr(listener.local_addr()?).expect("ipv4");
        let host = Arc::new(PlainFtpHost { addr, stop: Arc::new(AtomicBool::new(false)) });
        let host2 = Arc::clone(&host);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if host2.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let dsi = Arc::clone(&dsi);
                std::thread::spawn(move || {
                    let mut link = TcpLink::new(stream);
                    let user = UserContext::superuser();
                    let Ok(raw) = link.recv() else { return };
                    let Ok(msg) = decode(&raw) else { return };
                    match msg {
                        FtpMsg::Get { path } => match dsi.size(&user, &path) {
                            Ok(len) => {
                                let _ = link.send(&encode(&FtpMsg::Ok { len }));
                                let mut off = 0u64;
                                while off < len {
                                    let want = FTP_CHUNK.min((len - off) as usize);
                                    let Ok(chunk) = dsi.read(&user, &path, off, want) else {
                                        return;
                                    };
                                    if chunk.is_empty() || link.send(&chunk).is_err() {
                                        return;
                                    }
                                    off += chunk.len() as u64;
                                }
                            }
                            Err(e) => {
                                let _ =
                                    link.send(&encode(&FtpMsg::Err { message: e.to_string() }));
                            }
                        },
                        FtpMsg::Put { path, len } => {
                            if link.send(&encode(&FtpMsg::Ok { len: 0 })).is_err() {
                                return;
                            }
                            let mut off = 0u64;
                            while off < len {
                                let Ok(chunk) = link.recv() else { return };
                                if dsi.write(&user, &path, off, &chunk).is_err() {
                                    return;
                                }
                                off += chunk.len() as u64;
                            }
                            let _ = link.send(&encode(&FtpMsg::Ok { len }));
                        }
                        _ => {}
                    }
                    let _ = link.close();
                });
            }
        });
        Ok(host)
    }

    /// Address.
    pub fn addr(&self) -> HostPort {
        self.addr
    }

    /// Stop.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = std::net::TcpStream::connect(self.addr.to_socket_addr());
    }
}

impl Drop for PlainFtpHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fetch a file over one cleartext stream.
pub fn ftp_get(addr: HostPort, path: &str) -> io::Result<Vec<u8>> {
    let mut link = TcpLink::connect(addr.to_socket_addr())?;
    link.send(&encode(&FtpMsg::Get { path: path.to_string() }))?;
    let len = match decode(&link.recv()?)? {
        FtpMsg::Ok { len } => len,
        FtpMsg::Err { message } => return Err(io::Error::new(io::ErrorKind::NotFound, message)),
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad reply")),
    };
    let mut out = Vec::with_capacity(len as usize);
    while (out.len() as u64) < len {
        out.extend_from_slice(&link.recv()?);
    }
    Ok(out)
}

/// Store a file over one cleartext stream.
pub fn ftp_put(addr: HostPort, path: &str, data: &[u8]) -> io::Result<()> {
    let mut link = TcpLink::connect(addr.to_socket_addr())?;
    link.send(&encode(&FtpMsg::Put { path: path.to_string(), len: data.len() as u64 }))?;
    match decode(&link.recv()?)? {
        FtpMsg::Ok { .. } => {}
        FtpMsg::Err { message } => {
            return Err(io::Error::new(io::ErrorKind::PermissionDenied, message))
        }
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad reply")),
    }
    for chunk in data.chunks(FTP_CHUNK) {
        link.send(chunk)?;
    }
    match decode(&link.recv()?)? {
        FtpMsg::Ok { .. } => Ok(()),
        _ => Err(io::Error::new(io::ErrorKind::Other, "upload not acknowledged")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_server::dsi::read_all;
    use ig_server::MemDsi;

    #[test]
    fn get_and_put_roundtrip() {
        let dsi = Arc::new(MemDsi::new());
        let data: Vec<u8> = (0..150_000u32).map(|i| (i % 241) as u8).collect();
        dsi.put("/f.bin", &data);
        let host = PlainFtpHost::start(Arc::clone(&dsi) as Arc<dyn Dsi>).unwrap();
        assert_eq!(ftp_get(host.addr(), "/f.bin").unwrap(), data);
        ftp_put(host.addr(), "/up.bin", &data).unwrap();
        let user = UserContext::superuser();
        assert_eq!(read_all(dsi.as_ref(), &user, "/up.bin", 1 << 16).unwrap(), data);
        assert!(ftp_get(host.addr(), "/none").is_err());
        host.shutdown();
    }

    #[test]
    fn netsim_params_modest_window_no_cipher() {
        let p = ftp_netsim_params();
        assert_eq!(p.window_cap_bytes, Some(256 * 1024));
        assert!(p.rate_cap_bps.is_none());
    }
}
