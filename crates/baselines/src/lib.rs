//! # ig-baselines — the comparator tools of §VII
//!
//! "Tools such as SCP and rsync are ubiquitously available and easy to
//! use, but they provide only modest performance and no fault recovery."
//! Experiments E2 and E6 need those comparators implemented, not waved
//! at:
//!
//! * [`scp`] — an SCP-like copier: **one** TCP stream, **mandatory**
//!   encryption, a fixed channel window (the documented reason scp
//!   crawls on WANs), and third-party copies that **route through the
//!   client** ("SCP routes data through the client for transfers between
//!   two remote hosts", §VII).
//! * [`ftp`] — legacy stream-mode FTP: one cleartext TCP stream, no
//!   restart markers, no parallelism.
//!
//! For WAN-shape experiments the matching [`ig_netsim::TcpParams`]
//! presets ([`scp::scp_netsim_params`], [`ftp::ftp_netsim_params`]) feed
//! the flow simulator.

pub mod ftp;
pub mod scp;

pub use ftp::PlainFtpHost;
pub use scp::ScpHost;
