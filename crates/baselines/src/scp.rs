//! The SCP model: single encrypted stream, client-routed third-party.

use ig_gsi::context::GsiConfig;
use ig_gsi::ProtectionLevel;
use ig_netsim::TcpParams;
use ig_pki::time::Clock;
use ig_pki::{Credential, TrustStore};
use ig_protocol::HostPort;
use ig_server::{Dsi, UserContext};
use ig_xio::{secure_accept, secure_connect, Link, TcpLink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::io;
use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// SCP copy chunk size (OpenSSH-era channel packet).
pub const SCP_CHUNK: usize = 32 * 1024;

/// netsim parameters for one scp stream: 64 KiB window cap + cipher
/// rate ceiling (see `TcpParams::scp_like`).
pub fn scp_netsim_params() -> TcpParams {
    TcpParams::scp_like()
}

#[derive(Serialize, Deserialize)]
enum ScpRequest {
    /// Fetch a file.
    Get {
        /// Path.
        path: String,
    },
    /// Store a file of the given length.
    Put {
        /// Path.
        path: String,
        /// Payload bytes to follow.
        len: u64,
    },
}

#[derive(Serialize, Deserialize)]
enum ScpReply {
    /// Proceed; for Get, the file length follows.
    Ok {
        /// File length (Get) or 0 (Put).
        len: u64,
    },
    /// Refused.
    Err {
        /// Reason.
        message: String,
    },
}

/// An SCP "host": a daemon serving encrypted single-stream copies.
pub struct ScpHost {
    addr: HostPort,
    stop: Arc<AtomicBool>,
    /// Bytes served (both directions).
    pub bytes: Arc<AtomicU64>,
}

impl ScpHost {
    /// Start a host over `dsi`, presenting `credential`.
    pub fn start(
        dsi: Arc<dyn Dsi>,
        credential: Credential,
        clock: Clock,
        seed: u64,
    ) -> io::Result<Arc<Self>> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
        let addr = HostPort::from_socket_addr(listener.local_addr()?).expect("ipv4");
        let host = Arc::new(ScpHost {
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            bytes: Arc::new(AtomicU64::new(0)),
        });
        let host2 = Arc::clone(&host);
        let session_seed = Arc::new(AtomicU64::new(seed));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if host2.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let dsi = Arc::clone(&dsi);
                let cred = credential.clone();
                let bytes = Arc::clone(&host2.bytes);
                let seed = session_seed.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let cfg = GsiConfig {
                        credential: Some(cred),
                        trust: TrustStore::new(),
                        require_peer_auth: false, // scp: host key + password model
                        clock,
                        insecure_skip_peer_validation: false,
                    };
                    // SCP encrypts everything, always.
                    let Ok(mut link) = secure_accept(
                        TcpLink::new(stream),
                        cfg,
                        ProtectionLevel::Private,
                        &mut rng,
                    ) else {
                        return;
                    };
                    let user = UserContext::superuser();
                    let Ok(raw) = link.recv() else { return };
                    let Ok(req) = serde_json::from_slice::<ScpRequest>(&raw) else { return };
                    match req {
                        ScpRequest::Get { path } => match dsi.size(&user, &path) {
                            Ok(len) => {
                                let _ = link.send(&encode(&ScpReply::Ok { len }));
                                let mut off = 0u64;
                                while off < len {
                                    let want = SCP_CHUNK.min((len - off) as usize);
                                    let Ok(chunk) = dsi.read(&user, &path, off, want) else {
                                        return;
                                    };
                                    if chunk.is_empty() || link.send(&chunk).is_err() {
                                        return;
                                    }
                                    off += chunk.len() as u64;
                                    bytes.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                                }
                            }
                            Err(e) => {
                                let _ = link.send(&encode(&ScpReply::Err {
                                    message: e.to_string(),
                                }));
                            }
                        },
                        ScpRequest::Put { path, len } => {
                            if link.send(&encode(&ScpReply::Ok { len: 0 })).is_err() {
                                return;
                            }
                            let mut off = 0u64;
                            while off < len {
                                let Ok(chunk) = link.recv() else { return };
                                if dsi.write(&user, &path, off, &chunk).is_err() {
                                    return;
                                }
                                off += chunk.len() as u64;
                                bytes.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                            }
                            let _ = link.send(&encode(&ScpReply::Ok { len }));
                        }
                    }
                    let _ = link.close();
                });
            }
        });
        Ok(host)
    }

    /// The host's address.
    pub fn addr(&self) -> HostPort {
        self.addr
    }

    /// Stop the daemon.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = std::net::TcpStream::connect(self.addr.to_socket_addr());
    }
}

impl Drop for ScpHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn encode<T: Serialize>(v: &T) -> Vec<u8> {
    serde_json::to_vec(v).expect("scp message serialization cannot fail")
}

fn connect(addr: HostPort, clock: Clock, seed: u64) -> io::Result<impl Link> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = GsiConfig::anonymous(TrustStore::new()).with_clock(clock).bootstrap();
    secure_connect(TcpLink::connect(addr.to_socket_addr())?, cfg, ProtectionLevel::Private, &mut rng)
}

/// `scp host:path .` — fetch a file (one encrypted stream).
pub fn scp_get(addr: HostPort, path: &str, clock: Clock, seed: u64) -> io::Result<Vec<u8>> {
    let mut link = connect(addr, clock, seed)?;
    link.send(&encode(&ScpRequest::Get { path: path.to_string() }))?;
    let raw = link.recv()?;
    let reply: ScpReply = serde_json::from_slice(&raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let len = match reply {
        ScpReply::Ok { len } => len,
        ScpReply::Err { message } => {
            return Err(io::Error::new(io::ErrorKind::NotFound, message))
        }
    };
    let mut out = Vec::with_capacity(len as usize);
    while (out.len() as u64) < len {
        let chunk = link.recv()?;
        out.extend_from_slice(&chunk);
    }
    Ok(out)
}

/// `scp . host:path` — store a file.
pub fn scp_put(addr: HostPort, path: &str, data: &[u8], clock: Clock, seed: u64) -> io::Result<()> {
    let mut link = connect(addr, clock, seed)?;
    link.send(&encode(&ScpRequest::Put { path: path.to_string(), len: data.len() as u64 }))?;
    let raw = link.recv()?;
    if let ScpReply::Err { message } =
        serde_json::from_slice(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
    {
        return Err(io::Error::new(io::ErrorKind::PermissionDenied, message));
    }
    for chunk in data.chunks(SCP_CHUNK) {
        link.send(chunk)?;
    }
    let raw = link.recv()?;
    match serde_json::from_slice(&raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
    {
        ScpReply::Ok { .. } => Ok(()),
        ScpReply::Err { message } => Err(io::Error::new(io::ErrorKind::Other, message)),
    }
}

/// `scp hostA:path hostB:path` — §VII: "SCP routes data through the
/// client for transfers between two remote hosts". The bytes make two
/// trips; with a slow client link this is the E6 disadvantage.
pub fn scp_third_party(
    src: HostPort,
    src_path: &str,
    dst: HostPort,
    dst_path: &str,
    clock: Clock,
    seed: u64,
) -> io::Result<u64> {
    let data = scp_get(src, src_path, clock, seed)?;
    scp_put(dst, dst_path, &data, clock, seed + 1)?;
    // Two trips over the client's links.
    Ok(2 * data.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_gsi::context::test_support::ca_and_credential;
    use ig_server::dsi::read_all;
    use ig_server::MemDsi;

    fn host(seed: u64) -> (Arc<ScpHost>, Arc<MemDsi>) {
        let mut rng = ig_crypto::rng::seeded(seed);
        let (_ca, cred) = ca_and_credential(&mut rng, "/O=SSH", "/CN=scp-host");
        let dsi = Arc::new(MemDsi::new());
        let h = ScpHost::start(
            Arc::clone(&dsi) as Arc<dyn Dsi>,
            cred,
            Clock::Fixed(1000),
            seed * 10,
        )
        .unwrap();
        (h, dsi)
    }

    #[test]
    fn get_roundtrip() {
        let (h, dsi) = host(1);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        dsi.put("/f.bin", &data);
        let got = scp_get(h.addr(), "/f.bin", Clock::Fixed(1000), 77).unwrap();
        assert_eq!(got, data);
        assert!(scp_get(h.addr(), "/missing", Clock::Fixed(1000), 78).is_err());
    }

    #[test]
    fn put_roundtrip() {
        let (h, dsi) = host(2);
        let data = vec![7u8; 70_000];
        scp_put(h.addr(), "/up.bin", &data, Clock::Fixed(1000), 79).unwrap();
        let user = UserContext::superuser();
        assert_eq!(read_all(dsi.as_ref(), &user, "/up.bin", 1 << 16).unwrap(), data);
    }

    #[test]
    fn third_party_routes_through_client() {
        let (a, dsi_a) = host(3);
        let (b, dsi_b) = host(4);
        let data = vec![9u8; 50_000];
        dsi_a.put("/src.bin", &data);
        let wire = scp_third_party(
            a.addr(),
            "/src.bin",
            b.addr(),
            "/dst.bin",
            Clock::Fixed(1000),
            80,
        )
        .unwrap();
        // The client carried every byte twice.
        assert_eq!(wire, 2 * data.len() as u64);
        let user = UserContext::superuser();
        assert_eq!(read_all(dsi_b.as_ref(), &user, "/dst.bin", 1 << 16).unwrap(), data);
    }

    #[test]
    fn netsim_params_have_scp_ceilings() {
        let p = scp_netsim_params();
        assert_eq!(p.window_cap_bytes, Some(64 * 1024));
        assert!(p.rate_cap_bps.is_some());
    }
}
