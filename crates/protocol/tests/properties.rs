//! Property tests for the wire grammar and framing.

use ig_protocol::command::Command;
use ig_protocol::mode_e::{fragment, Block, Reassembler};
use ig_protocol::{ByteRanges, HostPort, Reply};
use proptest::prelude::*;

fn path_strategy() -> impl Strategy<Value = String> {
    // Interior spaces are legal; leading/trailing whitespace is
    // canonicalized away by the FTP argument grammar, so exclude it.
    proptest::string::string_regex("/[a-zA-Z0-9_.-]([a-zA-Z0-9_./ -]{0,38}[a-zA-Z0-9_.-])?")
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn command_display_parse_roundtrip_core(path in path_strategy()) {
        for cmd in [
            Command::Retr(path.clone()),
            Command::Stor(path.clone()),
            Command::Size(path.clone()),
            Command::Dele(path.clone()),
            Command::Cwd(path.clone()),
            Command::Mkd(path.clone()),
        ] {
            let line = cmd.to_string();
            prop_assert_eq!(Command::parse(&line).unwrap(), cmd);
        }
    }

    #[test]
    fn hostport_roundtrip(a in any::<u8>(), b in any::<u8>(), c in any::<u8>(), d in any::<u8>(), port in any::<u16>()) {
        let hp = HostPort::new(std::net::Ipv4Addr::new(a, b, c, d), port);
        prop_assert_eq!(HostPort::parse(&hp.to_string()).unwrap(), hp);
    }

    #[test]
    fn reply_wire_roundtrip(code in 100u16..700, lines in proptest::collection::vec(
        proptest::string::string_regex("[a-zA-Z0-9 ,.:=_-]{0,50}").unwrap(), 1..5)) {
        let r = Reply::multiline(code, lines);
        prop_assert_eq!(Reply::parse(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn block_encode_decode_roundtrip(
        descriptor in any::<u8>(),
        offset in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let b = Block { descriptor, offset, payload };
        prop_assert_eq!(Block::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn truncated_blocks_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..100),
        cut in 1usize..117,
    ) {
        let enc = Block::data(0, payload).encode();
        let cut = cut.min(enc.len() - 1);
        prop_assert!(Block::decode(&enc[..cut]).is_err());
    }

    #[test]
    fn fragment_reassemble_identity(
        data in proptest::collection::vec(any::<u8>(), 0..4000),
        block in 1usize..600,
        base in 0u64..1000,
        order_seed in any::<u64>(),
    ) {
        let mut blocks = fragment(base, &data, block);
        // Shuffle deterministically (multi-stream arrival order).
        let n = blocks.len().max(1) as u64;
        for i in (1..blocks.len()).rev() {
            let j = ((order_seed.wrapping_mul(i as u64 + 1)) % n) as usize % (i + 1);
            blocks.swap(i, j);
        }
        let mut r = Reassembler::new();
        for b in &blocks {
            r.push(b).unwrap();
        }
        prop_assert_eq!(r.bytes(), data.len() as u64);
        // The reassembled buffer is zero-padded below `base`.
        let out = r.into_data(base + data.len() as u64).ok();
        match out {
            Some(buf) if base == 0 => prop_assert_eq!(buf, data),
            Some(buf) => {
                prop_assert_eq!(&buf[base as usize..], &data[..]);
            }
            // Nonzero base leaves [0, base) uncovered: incomplete is correct.
            None => prop_assert!(base > 0 || data.is_empty()),
        }
    }

    #[test]
    fn byte_ranges_match_naive_model(
        ops in proptest::collection::vec((0u64..500, 0u64..500), 0..40),
        len in 0u64..500,
    ) {
        // Model: a boolean array.
        let mut model = vec![false; 500];
        let mut ranges = ByteRanges::new();
        for (a, b) in &ops {
            let (s, e) = (*a.min(b), *a.max(b));
            ranges.add(s, e);
            for i in s..e {
                model[i as usize] = true;
            }
        }
        let model_total = model.iter().filter(|&&x| x).count() as u64;
        prop_assert_eq!(ranges.total(), model_total);
        // Ranges are sorted, disjoint, non-adjacent.
        let rs = ranges.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "not coalesced: {:?}", rs);
        }
        // Completeness agrees with the model.
        let model_complete = model[..len as usize].iter().all(|&x| x);
        prop_assert_eq!(ranges.is_complete(len), len == 0 || model_complete);
        // Missing + held covers [0, len) exactly once.
        let missing = ranges.missing(len);
        let mut covered = vec![false; len as usize];
        for &(s, e) in rs {
            for i in s..e.min(len) {
                covered[i as usize] = true;
            }
        }
        for (s, e) in &missing {
            for i in *s..*e {
                prop_assert!(!covered[i as usize], "missing overlaps held");
                covered[i as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&x| x), "missing+held must cover [0,len)");
        // Marker roundtrip.
        prop_assert_eq!(ByteRanges::parse_marker(&ranges.to_marker()).unwrap(), ranges);
    }

    #[test]
    fn command_parse_never_panics(line in proptest::string::string_regex(".{0,120}").unwrap()) {
        let _ = Command::parse(&line); // must not panic, err is fine
    }

    #[test]
    fn reply_parse_never_panics(text in proptest::string::string_regex(".{0,120}").unwrap()) {
        let _ = Reply::parse(&text);
    }
}
