//! Coalesced byte ranges — the arithmetic behind restart markers.
//!
//! GridFTP's "increased reliability via restart markers" (§I) works by
//! the receiver periodically reporting which byte ranges have hit stable
//! storage; after a failure the sender resends only the complement. In
//! MODE E blocks arrive out of order across parallel streams, so ranges
//! must coalesce.

use crate::error::{ProtocolError, Result};
use std::fmt;

/// A set of disjoint, coalesced `[start, end)` byte ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteRanges {
    /// Sorted, disjoint, non-adjacent ranges.
    ranges: Vec<(u64, u64)>,
}

impl ByteRanges {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging as needed. Empty ranges ignored.
    pub fn add(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find insertion window: all ranges overlapping or adjacent.
        let mut new_start = start;
        let mut new_end = end;
        let mut i = 0;
        let mut remove_from = None;
        let mut remove_count = 0;
        while i < self.ranges.len() {
            let (s, e) = self.ranges[i];
            if e < new_start {
                i += 1;
                continue;
            }
            if s > new_end {
                break;
            }
            // Overlapping or adjacent: merge.
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            if remove_from.is_none() {
                remove_from = Some(i);
            }
            remove_count += 1;
            i += 1;
        }
        match remove_from {
            Some(from) => {
                self.ranges.drain(from..from + remove_count);
                self.ranges.insert(from, (new_start, new_end));
            }
            None => {
                let pos = self.ranges.partition_point(|&(s, _)| s < new_start);
                self.ranges.insert(pos, (new_start, new_end));
            }
        }
    }

    /// Total bytes covered.
    pub fn total(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// True when `[0, len)` is fully covered (ranges beyond `len` are
    /// irrelevant; since ranges are coalesced, coverage of `[0, len)`
    /// means the *first* range spans it).
    pub fn is_complete(&self, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        self.ranges.first().is_some_and(|&(s, e)| s == 0 && e >= len)
    }

    /// The ranges.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Missing ranges below `len` — what a restarted transfer must resend.
    pub fn missing(&self, len: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for &(s, e) in &self.ranges {
            if s >= len {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(len)));
            }
            cursor = cursor.max(e);
        }
        if cursor < len {
            out.push((cursor, len));
        }
        out
    }

    /// Highest contiguous prefix end (stream-mode restart offset).
    pub fn contiguous_prefix(&self) -> u64 {
        match self.ranges.first() {
            Some(&(0, e)) => e,
            _ => 0,
        }
    }

    /// Render in GridFTP marker form: `0-1024,2048-4096`.
    pub fn to_marker(&self) -> String {
        self.ranges
            .iter()
            .map(|(s, e)| format!("{s}-{e}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parse the marker form.
    pub fn parse_marker(s: &str) -> Result<Self> {
        let mut out = ByteRanges::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (a, b) = part
                .split_once('-')
                .ok_or_else(|| ProtocolError::BadMarker(format!("range {part:?} missing '-'")))?;
            let start: u64 = a
                .trim()
                .parse()
                .map_err(|_| ProtocolError::BadMarker(format!("bad start {a:?}")))?;
            let end: u64 = b
                .trim()
                .parse()
                .map_err(|_| ProtocolError::BadMarker(format!("bad end {b:?}")))?;
            if end < start {
                return Err(ProtocolError::BadMarker(format!("inverted range {part:?}")));
            }
            out.add(start, end);
        }
        Ok(out)
    }
}

impl fmt::Display for ByteRanges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_marker())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_coalesce() {
        let mut r = ByteRanges::new();
        r.add(0, 100);
        r.add(200, 300);
        assert_eq!(r.ranges(), &[(0, 100), (200, 300)]);
        // Bridge the gap.
        r.add(100, 200);
        assert_eq!(r.ranges(), &[(0, 300)]);
        assert_eq!(r.total(), 300);
    }

    #[test]
    fn overlapping_adds() {
        let mut r = ByteRanges::new();
        r.add(50, 150);
        r.add(100, 200);
        r.add(0, 60);
        assert_eq!(r.ranges(), &[(0, 200)]);
        // Fully contained add is a no-op.
        r.add(10, 20);
        assert_eq!(r.ranges(), &[(0, 200)]);
        // Superset add swallows.
        r.add(0, 500);
        assert_eq!(r.ranges(), &[(0, 500)]);
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut r = ByteRanges::new();
        r.add(0, 10);
        r.add(10, 20);
        assert_eq!(r.ranges(), &[(0, 20)]);
    }

    #[test]
    fn out_of_order_parallel_stream_arrivals() {
        // MODE E blocks land out of order.
        let mut r = ByteRanges::new();
        for (s, e) in [(300u64, 400u64), (0, 100), (200, 300), (100, 200)] {
            r.add(s, e);
        }
        assert!(r.is_complete(400));
        assert_eq!(r.contiguous_prefix(), 400);
    }

    #[test]
    fn empty_and_degenerate() {
        let mut r = ByteRanges::new();
        r.add(5, 5);
        assert_eq!(r.total(), 0);
        assert!(r.is_complete(0));
        assert!(!r.is_complete(1));
        assert_eq!(r.contiguous_prefix(), 0);
        assert_eq!(r.missing(10), vec![(0, 10)]);
    }

    #[test]
    fn missing_computation() {
        let mut r = ByteRanges::new();
        r.add(0, 100);
        r.add(200, 300);
        r.add(350, 380);
        assert_eq!(r.missing(400), vec![(100, 200), (300, 350), (380, 400)]);
        assert_eq!(r.missing(250), vec![(100, 200)]);
        assert_eq!(r.missing(50), Vec::<(u64, u64)>::new());
        // Prefix gap.
        let mut r2 = ByteRanges::new();
        r2.add(100, 200);
        assert_eq!(r2.missing(200), vec![(0, 100)]);
        assert_eq!(r2.contiguous_prefix(), 0);
    }

    #[test]
    fn marker_roundtrip() {
        let mut r = ByteRanges::new();
        r.add(0, 1024);
        r.add(2048, 4096);
        let m = r.to_marker();
        assert_eq!(m, "0-1024,2048-4096");
        assert_eq!(ByteRanges::parse_marker(&m).unwrap(), r);
    }

    #[test]
    fn marker_parse_rejects_malformed() {
        assert!(ByteRanges::parse_marker("10").is_err());
        assert!(ByteRanges::parse_marker("a-b").is_err());
        assert!(ByteRanges::parse_marker("100-50").is_err());
        // Empty string is the empty set.
        assert_eq!(ByteRanges::parse_marker("").unwrap(), ByteRanges::new());
    }

    #[test]
    fn parse_coalesces_unsorted_input() {
        let r = ByteRanges::parse_marker("200-300,0-100,100-200").unwrap();
        assert_eq!(r.ranges(), &[(0, 300)]);
    }
}
