//! The control-channel command grammar.
//!
//! Covers RFC 959 core, RFC 2228 security commands, the GridFTP
//! extensions the paper's architecture section describes (striped
//! `SPAS`/`SPOR`, `OPTS RETR` parallelism, `ERET`/`ESTO`), and the new
//! `DCSC` command of §V.

use crate::addr::HostPort;
use crate::error::{ProtocolError, Result};
use std::fmt;

/// `TYPE` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeCode {
    /// `TYPE A` — ASCII.
    Ascii,
    /// `TYPE I` — image/binary (the only sane choice for bulk data).
    Image,
}

/// `MODE` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeCode {
    /// `MODE S` — stream (plain FTP).
    Stream,
    /// `MODE E` — extended block (parallelism, striping, restart).
    Extended,
}

/// `DCAU` (data channel authentication) modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcauMode {
    /// `DCAU N` — no data-channel authentication.
    None,
    /// `DCAU A` — authenticate with the session (control-channel) identity.
    Self_,
    /// `DCAU S <subject>` — expect a specific subject.
    Subject(String),
}

/// A parsed control-channel command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `USER <name>`
    User(String),
    /// `PASS <password>`
    Pass(String),
    /// `AUTH <mechanism>` (GridFTP uses `AUTH GSSAPI`).
    Auth(String),
    /// `ADAT <base64 token>` — security handshake data.
    Adat(String),
    /// `TYPE A|I`
    Type(TypeCode),
    /// `MODE S|E`
    Mode(ModeCode),
    /// `PASV`
    Pasv,
    /// `PORT h1,h2,h3,h4,p1,p2`
    Port(HostPort),
    /// `SPAS` — striped passive (§IIC: "an array of IP/ports is returned").
    Spas,
    /// `SPOR <hp> <hp> ...` — striped port.
    Spor(Vec<HostPort>),
    /// `RETR <path>`
    Retr(String),
    /// `STOR <path>`
    Stor(String),
    /// `ERET <module>="<args>" <path>` — extended retrieve (simplified:
    /// module + raw remainder).
    Eret {
        /// Processing module name.
        module: String,
        /// Remainder (module args + path).
        args: String,
    },
    /// `ESTO <module>="<args>" <path>` — extended store.
    Esto {
        /// Processing module name.
        module: String,
        /// Remainder.
        args: String,
    },
    /// `LIST [path]`
    List(Option<String>),
    /// `NLST [path]`
    Nlst(Option<String>),
    /// `MLSD [path]` — machine-readable listing.
    Mlsd(Option<String>),
    /// `MLST [path]`
    Mlst(Option<String>),
    /// `SIZE <path>`
    Size(String),
    /// `MDTM <path>`
    Mdtm(String),
    /// `DELE <path>`
    Dele(String),
    /// `MKD <path>`
    Mkd(String),
    /// `RMD <path>`
    Rmd(String),
    /// `CWD <path>`
    Cwd(String),
    /// `CDUP`
    Cdup,
    /// `PWD`
    Pwd,
    /// `REST <marker>` — stream offset or extended-block range list.
    Rest(String),
    /// `PBSZ <size>` — protection buffer size (RFC 2228).
    Pbsz(u64),
    /// `PROT C|S|E|P` — data-channel protection level.
    Prot(char),
    /// `DCAU N|A|S <subject>` — data-channel authentication.
    Dcau(DcauMode),
    /// **`DCSC <type> [blob]`** — the paper's Data Channel Security
    /// Context command (§V). `DCSC D` reverts to the login context;
    /// `DCSC P <base64>` installs a credential from a PEM bundle.
    Dcsc {
        /// Context type: `P` or `D` (case-insensitive per §V).
        context_type: char,
        /// Printable-ASCII blob for `P`.
        blob: Option<String>,
    },
    /// `PIPE <n>` — announce a command-pipelining window: the client may
    /// have up to `n` commands outstanding before reading replies. The
    /// server replies 200 and (since replies are answered strictly in
    /// order on both cores) the command is purely declarative — it lets a
    /// server bound per-session queue growth and a client assert the
    /// feature exists.
    Pipe(u32),
    /// `OPTS <target> <params>` (e.g. `OPTS RETR Parallelism=8,8,8;`).
    Opts {
        /// Target command, e.g. `RETR`.
        target: String,
        /// Raw parameter string.
        params: String,
    },
    /// `SITE <subcommand...>`
    Site(String),
    /// `FEAT`
    Feat,
    /// `NOOP`
    Noop,
    /// `ABOR`
    Abor,
    /// `QUIT`
    Quit,
    /// `ALLO <bytes>` — pre-allocation hint.
    Allo(u64),
    /// `CKSM <algorithm> <offset> <length> <path>` — server-side checksum
    /// (GridFTP extension; length -1 = to EOF). Used for end-to-end
    /// integrity verification after transfers.
    Cksm {
        /// Algorithm name (this implementation supports `SHA256`).
        algorithm: String,
        /// Start offset.
        offset: u64,
        /// Byte count (`None` = to end of file).
        length: Option<u64>,
        /// File path.
        path: String,
    },
    /// `MIC <b64>` / `ENC <b64>` — a protected command envelope
    /// (RFC 2228); payload is handled by [`crate::secure_line`].
    Protected {
        /// `MIC` (integrity) or `ENC` (private).
        kind: ProtectedKind,
        /// Base64 of the sealed record.
        payload: String,
    },
    /// Anything unrecognized — servers reply 500, not panic.
    Unknown {
        /// Verb as received.
        verb: String,
        /// Raw argument.
        arg: String,
    },
}

/// RFC 2228 protected-envelope kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtectedKind {
    /// `MIC` — integrity protected.
    Mic,
    /// `ENC` — privacy protected.
    Enc,
}

impl Command {
    /// Canonical wire verb for this command (`"RETR"`, `"SITE"`, ...).
    /// `Unknown` maps to `"UNKNOWN"` rather than echoing attacker-chosen
    /// text so the string is safe to use as a metric label.
    pub fn verb(&self) -> &'static str {
        match self {
            Command::User(_) => "USER",
            Command::Pass(_) => "PASS",
            Command::Auth(_) => "AUTH",
            Command::Adat(_) => "ADAT",
            Command::Type(_) => "TYPE",
            Command::Mode(_) => "MODE",
            Command::Pasv => "PASV",
            Command::Port(_) => "PORT",
            Command::Spas => "SPAS",
            Command::Spor(_) => "SPOR",
            Command::Retr(_) => "RETR",
            Command::Stor(_) => "STOR",
            Command::Eret { .. } => "ERET",
            Command::Esto { .. } => "ESTO",
            Command::List(_) => "LIST",
            Command::Nlst(_) => "NLST",
            Command::Mlsd(_) => "MLSD",
            Command::Mlst(_) => "MLST",
            Command::Size(_) => "SIZE",
            Command::Mdtm(_) => "MDTM",
            Command::Dele(_) => "DELE",
            Command::Mkd(_) => "MKD",
            Command::Rmd(_) => "RMD",
            Command::Cwd(_) => "CWD",
            Command::Cdup => "CDUP",
            Command::Pwd => "PWD",
            Command::Rest(_) => "REST",
            Command::Pbsz(_) => "PBSZ",
            Command::Prot(_) => "PROT",
            Command::Dcau(_) => "DCAU",
            Command::Dcsc { .. } => "DCSC",
            Command::Pipe(_) => "PIPE",
            Command::Opts { .. } => "OPTS",
            Command::Site(_) => "SITE",
            Command::Feat => "FEAT",
            Command::Noop => "NOOP",
            Command::Abor => "ABOR",
            Command::Quit => "QUIT",
            Command::Allo(_) => "ALLO",
            Command::Cksm { .. } => "CKSM",
            Command::Protected { kind, .. } => match kind {
                ProtectedKind::Mic => "MIC",
                ProtectedKind::Enc => "ENC",
            },
            Command::Unknown { .. } => "UNKNOWN",
        }
    }

    /// Parse one command line (without CRLF).
    pub fn parse(line: &str) -> Result<Self> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, arg) = match line.split_once(' ') {
            Some((v, a)) => (v, a.trim()),
            None => (line, ""),
        };
        let verb_upper = verb.to_ascii_uppercase();
        let need_arg = |name: &str| -> Result<String> {
            if arg.is_empty() {
                Err(ProtocolError::BadCommand(format!("{name} requires an argument")))
            } else {
                Ok(arg.to_string())
            }
        };
        let opt_arg = || {
            if arg.is_empty() {
                None
            } else {
                Some(arg.to_string())
            }
        };
        Ok(match verb_upper.as_str() {
            "USER" => Command::User(need_arg("USER")?),
            "PASS" => Command::Pass(arg.to_string()), // empty password legal
            "AUTH" => Command::Auth(need_arg("AUTH")?),
            "ADAT" => Command::Adat(need_arg("ADAT")?),
            "TYPE" => match arg.to_ascii_uppercase().as_str() {
                "A" => Command::Type(TypeCode::Ascii),
                "I" | "L 8" => Command::Type(TypeCode::Image),
                other => {
                    return Err(ProtocolError::BadCommand(format!("unsupported TYPE {other:?}")))
                }
            },
            "MODE" => match arg.to_ascii_uppercase().as_str() {
                "S" => Command::Mode(ModeCode::Stream),
                "E" => Command::Mode(ModeCode::Extended),
                other => {
                    return Err(ProtocolError::BadCommand(format!("unsupported MODE {other:?}")))
                }
            },
            "PASV" => Command::Pasv,
            "PORT" => Command::Port(HostPort::parse(arg)?),
            "SPAS" => Command::Spas,
            "SPOR" => {
                let list = HostPort::parse_list(arg)?;
                if list.is_empty() {
                    return Err(ProtocolError::BadCommand("SPOR requires addresses".into()));
                }
                Command::Spor(list)
            }
            "RETR" => Command::Retr(need_arg("RETR")?),
            "STOR" => Command::Stor(need_arg("STOR")?),
            "ERET" | "ESTO" => {
                let (module, rest) = arg
                    .split_once(' ')
                    .ok_or_else(|| ProtocolError::BadCommand(format!("{verb_upper} needs module and path")))?;
                if verb_upper == "ERET" {
                    Command::Eret { module: module.to_string(), args: rest.to_string() }
                } else {
                    Command::Esto { module: module.to_string(), args: rest.to_string() }
                }
            }
            "LIST" => Command::List(opt_arg()),
            "NLST" => Command::Nlst(opt_arg()),
            "MLSD" => Command::Mlsd(opt_arg()),
            "MLST" => Command::Mlst(opt_arg()),
            "SIZE" => Command::Size(need_arg("SIZE")?),
            "MDTM" => Command::Mdtm(need_arg("MDTM")?),
            "DELE" => Command::Dele(need_arg("DELE")?),
            "MKD" => Command::Mkd(need_arg("MKD")?),
            "RMD" => Command::Rmd(need_arg("RMD")?),
            "CWD" => Command::Cwd(need_arg("CWD")?),
            "CDUP" => Command::Cdup,
            "PWD" => Command::Pwd,
            "REST" => Command::Rest(need_arg("REST")?),
            "PBSZ" => Command::Pbsz(
                arg.parse()
                    .map_err(|_| ProtocolError::BadCommand(format!("bad PBSZ {arg:?}")))?,
            ),
            "PROT" => {
                let c = arg
                    .chars()
                    .next()
                    .ok_or_else(|| ProtocolError::BadCommand("PROT requires a level".into()))?
                    .to_ascii_uppercase();
                if !"CSEP".contains(c) || arg.len() != 1 {
                    return Err(ProtocolError::BadCommand(format!("bad PROT level {arg:?}")));
                }
                Command::Prot(c)
            }
            "DCAU" => {
                let mut it = arg.splitn(2, ' ');
                let mode = it.next().unwrap_or("").to_ascii_uppercase();
                match mode.as_str() {
                    "N" => Command::Dcau(DcauMode::None),
                    "A" => Command::Dcau(DcauMode::Self_),
                    "S" => {
                        let subject = it
                            .next()
                            .ok_or_else(|| {
                                ProtocolError::BadCommand("DCAU S requires a subject".into())
                            })?
                            .to_string();
                        Command::Dcau(DcauMode::Subject(subject))
                    }
                    other => {
                        return Err(ProtocolError::BadCommand(format!("bad DCAU mode {other:?}")))
                    }
                }
            }
            "DCSC" => {
                // §V: "DCSC context-type context-specific-blob, where
                // context-type is a case-insensitive string".
                let mut it = arg.splitn(2, ' ');
                let ctype = it.next().unwrap_or("");
                if ctype.len() != 1 {
                    return Err(ProtocolError::BadCommand(format!(
                        "bad DCSC context type {ctype:?}"
                    )));
                }
                let context_type = ctype.chars().next().expect("len checked").to_ascii_uppercase();
                let blob = it.next().map(str::to_string);
                match context_type {
                    'P' => {
                        let blob = blob.ok_or_else(|| {
                            ProtocolError::BadCommand("DCSC P requires a blob".into())
                        })?;
                        // §V: printable ASCII 32–126 only.
                        if !blob.bytes().all(|b| (32..=126).contains(&b)) {
                            return Err(ProtocolError::BadCommand(
                                "DCSC blob must be printable ASCII".into(),
                            ));
                        }
                        Command::Dcsc { context_type, blob: Some(blob) }
                    }
                    'D' => {
                        if blob.is_some() {
                            return Err(ProtocolError::BadCommand(
                                "DCSC D takes no blob".into(),
                            ));
                        }
                        Command::Dcsc { context_type, blob: None }
                    }
                    other => {
                        return Err(ProtocolError::BadCommand(format!(
                            "unknown DCSC context type {other:?}"
                        )))
                    }
                }
            }
            "PIPE" => Command::Pipe(
                arg.parse()
                    .map_err(|_| ProtocolError::BadCommand(format!("bad PIPE window {arg:?}")))?,
            ),
            "OPTS" => {
                let (target, params) = arg
                    .split_once(' ')
                    .ok_or_else(|| ProtocolError::BadCommand("OPTS needs target and params".into()))?;
                Command::Opts {
                    target: target.to_ascii_uppercase(),
                    params: params.to_string(),
                }
            }
            "SITE" => Command::Site(need_arg("SITE")?),
            "FEAT" => Command::Feat,
            "NOOP" => Command::Noop,
            "ABOR" => Command::Abor,
            "QUIT" => Command::Quit,
            "ALLO" => Command::Allo(
                arg.parse()
                    .map_err(|_| ProtocolError::BadCommand(format!("bad ALLO {arg:?}")))?,
            ),
            "CKSM" => {
                let mut it = arg.splitn(4, ' ');
                let algorithm = it
                    .next()
                    .filter(|a| !a.is_empty())
                    .ok_or_else(|| ProtocolError::BadCommand("CKSM needs an algorithm".into()))?
                    .to_ascii_uppercase();
                let offset: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ProtocolError::BadCommand("CKSM needs an offset".into()))?;
                let length_raw = it
                    .next()
                    .ok_or_else(|| ProtocolError::BadCommand("CKSM needs a length".into()))?;
                let length = if length_raw == "-1" {
                    None
                } else {
                    Some(length_raw.parse::<u64>().map_err(|_| {
                        ProtocolError::BadCommand(format!("bad CKSM length {length_raw:?}"))
                    })?)
                };
                let path = it
                    .next()
                    .filter(|p| !p.is_empty())
                    .ok_or_else(|| ProtocolError::BadCommand("CKSM needs a path".into()))?
                    .to_string();
                Command::Cksm { algorithm, offset, length, path }
            }
            "MIC" => Command::Protected { kind: ProtectedKind::Mic, payload: need_arg("MIC")? },
            "ENC" => Command::Protected { kind: ProtectedKind::Enc, payload: need_arg("ENC")? },
            _ => Command::Unknown { verb: verb.to_string(), arg: arg.to_string() },
        })
    }

    /// Parallelism requested via `OPTS RETR Parallelism=n,n,n;` — returns
    /// the stream count if this is such a command.
    pub fn parallelism(&self) -> Option<u32> {
        if let Command::Opts { target, params } = self {
            if target == "RETR" || target == "STOR" {
                for part in params.split(';') {
                    if let Some(values) = part.trim().strip_prefix("Parallelism=") {
                        let first = values.split(',').next()?;
                        return first.trim().parse().ok();
                    }
                }
            }
        }
        None
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::User(u) => write!(f, "USER {u}"),
            Command::Pass(p) => write!(f, "PASS {p}"),
            Command::Auth(m) => write!(f, "AUTH {m}"),
            Command::Adat(t) => write!(f, "ADAT {t}"),
            Command::Type(TypeCode::Ascii) => write!(f, "TYPE A"),
            Command::Type(TypeCode::Image) => write!(f, "TYPE I"),
            Command::Mode(ModeCode::Stream) => write!(f, "MODE S"),
            Command::Mode(ModeCode::Extended) => write!(f, "MODE E"),
            Command::Pasv => write!(f, "PASV"),
            Command::Port(hp) => write!(f, "PORT {hp}"),
            Command::Spas => write!(f, "SPAS"),
            Command::Spor(list) => {
                write!(f, "SPOR")?;
                for hp in list {
                    write!(f, " {hp}")?;
                }
                Ok(())
            }
            Command::Retr(p) => write!(f, "RETR {p}"),
            Command::Stor(p) => write!(f, "STOR {p}"),
            Command::Eret { module, args } => write!(f, "ERET {module} {args}"),
            Command::Esto { module, args } => write!(f, "ESTO {module} {args}"),
            Command::List(p) => opt_cmd(f, "LIST", p),
            Command::Nlst(p) => opt_cmd(f, "NLST", p),
            Command::Mlsd(p) => opt_cmd(f, "MLSD", p),
            Command::Mlst(p) => opt_cmd(f, "MLST", p),
            Command::Size(p) => write!(f, "SIZE {p}"),
            Command::Mdtm(p) => write!(f, "MDTM {p}"),
            Command::Dele(p) => write!(f, "DELE {p}"),
            Command::Mkd(p) => write!(f, "MKD {p}"),
            Command::Rmd(p) => write!(f, "RMD {p}"),
            Command::Cwd(p) => write!(f, "CWD {p}"),
            Command::Cdup => write!(f, "CDUP"),
            Command::Pwd => write!(f, "PWD"),
            Command::Rest(m) => write!(f, "REST {m}"),
            Command::Pbsz(n) => write!(f, "PBSZ {n}"),
            Command::Prot(c) => write!(f, "PROT {c}"),
            Command::Dcau(DcauMode::None) => write!(f, "DCAU N"),
            Command::Dcau(DcauMode::Self_) => write!(f, "DCAU A"),
            Command::Dcau(DcauMode::Subject(s)) => write!(f, "DCAU S {s}"),
            Command::Dcsc { context_type, blob: Some(b) } => write!(f, "DCSC {context_type} {b}"),
            Command::Dcsc { context_type, blob: None } => write!(f, "DCSC {context_type}"),
            Command::Pipe(n) => write!(f, "PIPE {n}"),
            Command::Opts { target, params } => write!(f, "OPTS {target} {params}"),
            Command::Site(s) => write!(f, "SITE {s}"),
            Command::Feat => write!(f, "FEAT"),
            Command::Noop => write!(f, "NOOP"),
            Command::Abor => write!(f, "ABOR"),
            Command::Quit => write!(f, "QUIT"),
            Command::Allo(n) => write!(f, "ALLO {n}"),
            Command::Cksm { algorithm, offset, length, path } => write!(
                f,
                "CKSM {algorithm} {offset} {} {path}",
                length.map(|l| l.to_string()).unwrap_or_else(|| "-1".into())
            ),
            Command::Protected { kind: ProtectedKind::Mic, payload } => write!(f, "MIC {payload}"),
            Command::Protected { kind: ProtectedKind::Enc, payload } => write!(f, "ENC {payload}"),
            Command::Unknown { verb, arg } => {
                if arg.is_empty() {
                    write!(f, "{verb}")
                } else {
                    write!(f, "{verb} {arg}")
                }
            }
        }
    }
}

fn opt_cmd(f: &mut fmt::Formatter<'_>, verb: &str, arg: &Option<String>) -> fmt::Result {
    match arg {
        Some(a) => write!(f, "{verb} {a}"),
        None => write!(f, "{verb}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(line: &str) -> Command {
        let cmd = Command::parse(line).unwrap();
        let printed = cmd.to_string();
        assert_eq!(Command::parse(&printed).unwrap(), cmd, "roundtrip of {line:?}");
        cmd
    }

    #[test]
    fn core_commands() {
        assert_eq!(roundtrip("USER alice"), Command::User("alice".into()));
        assert_eq!(roundtrip("PASS secret"), Command::Pass("secret".into()));
        assert_eq!(Command::parse("PASS").unwrap(), Command::Pass(String::new()));
        assert_eq!(roundtrip("TYPE I"), Command::Type(TypeCode::Image));
        assert_eq!(roundtrip("MODE E"), Command::Mode(ModeCode::Extended));
        assert_eq!(roundtrip("PASV"), Command::Pasv);
        assert_eq!(roundtrip("RETR /data/file.dat"), Command::Retr("/data/file.dat".into()));
        assert_eq!(roundtrip("QUIT"), Command::Quit);
        assert_eq!(roundtrip("PWD"), Command::Pwd);
        assert_eq!(roundtrip("LIST"), Command::List(None));
        assert_eq!(roundtrip("LIST /tmp"), Command::List(Some("/tmp".into())));
    }

    #[test]
    fn verb_matches_wire_form() {
        for line in ["USER alice", "RETR /f", "SITE STATS", "PASV", "DCSC D", "CKSM SHA256 0 -1 /f"] {
            let cmd = Command::parse(line).unwrap();
            assert_eq!(cmd.verb(), line.split(' ').next().unwrap());
        }
        let unk = Command::parse("XWEIRD stuff").unwrap();
        assert_eq!(unk.verb(), "UNKNOWN");
    }

    #[test]
    fn case_insensitive_verbs() {
        assert_eq!(Command::parse("retr /x").unwrap(), Command::Retr("/x".into()));
        assert_eq!(Command::parse("Quit").unwrap(), Command::Quit);
    }

    #[test]
    fn security_commands() {
        assert_eq!(roundtrip("AUTH GSSAPI"), Command::Auth("GSSAPI".into()));
        assert_eq!(roundtrip("ADAT dG9rZW4="), Command::Adat("dG9rZW4=".into()));
        assert_eq!(roundtrip("PBSZ 1048576"), Command::Pbsz(1048576));
        assert_eq!(roundtrip("PROT P"), Command::Prot('P'));
        assert_eq!(Command::parse("PROT p").unwrap(), Command::Prot('P'));
        assert!(Command::parse("PROT X").is_err());
        assert_eq!(roundtrip("DCAU N"), Command::Dcau(DcauMode::None));
        assert_eq!(roundtrip("DCAU A"), Command::Dcau(DcauMode::Self_));
        assert_eq!(
            roundtrip("DCAU S /O=Grid/CN=alice"),
            Command::Dcau(DcauMode::Subject("/O=Grid/CN=alice".into()))
        );
        assert!(Command::parse("DCAU S").is_err());
    }

    #[test]
    fn dcsc_command() {
        // The paper's format: DCSC context-type context-specific-blob.
        let cmd = roundtrip("DCSC P QmFzZTY0QmxvYg==");
        assert_eq!(
            cmd,
            Command::Dcsc { context_type: 'P', blob: Some("QmFzZTY0QmxvYg==".into()) }
        );
        // Case-insensitive context type (§V).
        assert_eq!(
            Command::parse("DCSC p blob").unwrap(),
            Command::Dcsc { context_type: 'P', blob: Some("blob".into()) }
        );
        assert_eq!(roundtrip("DCSC D"), Command::Dcsc { context_type: 'D', blob: None });
        assert!(Command::parse("DCSC P").is_err()); // P needs a blob
        assert!(Command::parse("DCSC D extra").is_err()); // D takes none
        assert!(Command::parse("DCSC X blob").is_err());
        // Non-printable blob rejected.
        assert!(Command::parse("DCSC P bad\u{7f}blob").is_err());
    }

    #[test]
    fn striping_commands() {
        assert_eq!(roundtrip("SPAS"), Command::Spas);
        let cmd = roundtrip("SPOR 127,0,0,1,0,80 127,0,0,2,0,81");
        match cmd {
            Command::Spor(list) => assert_eq!(list.len(), 2),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(Command::parse("SPOR").is_err());
    }

    #[test]
    fn opts_parallelism() {
        let cmd = roundtrip("OPTS RETR Parallelism=8,8,8;");
        assert_eq!(cmd.parallelism(), Some(8));
        let cmd = Command::parse("OPTS retr Parallelism=4,4,4;").unwrap();
        assert_eq!(cmd.parallelism(), Some(4));
        assert_eq!(Command::parse("OPTS PASV AllowDelayed=1;").unwrap().parallelism(), None);
        assert_eq!(Command::parse("NOOP").unwrap().parallelism(), None);
    }

    #[test]
    fn eret_esto() {
        let cmd = roundtrip("ERET P 0,1048576 /data/big.dat");
        assert_eq!(
            cmd,
            Command::Eret { module: "P".into(), args: "0,1048576 /data/big.dat".into() }
        );
        assert!(Command::parse("ERET P").is_err());
    }

    #[test]
    fn pipe_command() {
        assert_eq!(roundtrip("PIPE 8"), Command::Pipe(8));
        assert_eq!(Command::parse("pipe 1").unwrap(), Command::Pipe(1));
        assert!(Command::parse("PIPE").is_err());
        assert!(Command::parse("PIPE lots").is_err());
        assert!(Command::parse("PIPE -3").is_err());
    }

    #[test]
    fn protected_envelopes() {
        let cmd = roundtrip("ENC c2VhbGVk");
        assert_eq!(
            cmd,
            Command::Protected { kind: ProtectedKind::Enc, payload: "c2VhbGVk".into() }
        );
        assert_eq!(
            roundtrip("MIC bWlj"),
            Command::Protected { kind: ProtectedKind::Mic, payload: "bWlj".into() }
        );
    }

    #[test]
    fn unknown_verbs_are_preserved_not_errors() {
        let cmd = Command::parse("XWEIRD some args").unwrap();
        assert_eq!(cmd, Command::Unknown { verb: "XWEIRD".into(), arg: "some args".into() });
        assert_eq!(cmd.to_string(), "XWEIRD some args");
    }

    #[test]
    fn crlf_stripped() {
        assert_eq!(Command::parse("NOOP\r\n").unwrap(), Command::Noop);
        assert_eq!(Command::parse("RETR /x\r\n").unwrap(), Command::Retr("/x".into()));
    }

    #[test]
    fn cksm_command() {
        assert_eq!(
            roundtrip("CKSM SHA256 0 -1 /data/f.bin"),
            Command::Cksm {
                algorithm: "SHA256".into(),
                offset: 0,
                length: None,
                path: "/data/f.bin".into()
            }
        );
        assert_eq!(
            roundtrip("CKSM SHA256 100 200 /f"),
            Command::Cksm {
                algorithm: "SHA256".into(),
                offset: 100,
                length: Some(200),
                path: "/f".into()
            }
        );
        // Path with spaces survives (splitn(4)).
        assert_eq!(
            Command::parse("CKSM sha256 0 -1 /my file.bin").unwrap(),
            Command::Cksm {
                algorithm: "SHA256".into(),
                offset: 0,
                length: None,
                path: "/my file.bin".into()
            }
        );
        assert!(Command::parse("CKSM SHA256 0 -1").is_err());
        assert!(Command::parse("CKSM SHA256 x -1 /f").is_err());
        assert!(Command::parse("CKSM").is_err());
    }

    #[test]
    fn rest_and_allo() {
        assert_eq!(roundtrip("REST 1048576"), Command::Rest("1048576".into()));
        assert_eq!(roundtrip("REST 0-500,600-700"), Command::Rest("0-500,600-700".into()));
        assert_eq!(roundtrip("ALLO 42"), Command::Allo(42));
        assert!(Command::parse("ALLO many").is_err());
    }
}
