//! In-transfer control-channel markers: `111` restart markers and `112`
//! performance markers, as emitted by Globus GridFTP during transfers.

use crate::error::{ProtocolError, Result};
use crate::ranges::ByteRanges;
use crate::reply::Reply;

/// A `111 Range Marker` — receiver-side stable-storage ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartMarker {
    /// Ranges known durable.
    pub ranges: ByteRanges,
}

impl RestartMarker {
    /// Build the `111` reply.
    pub fn to_reply(&self) -> Reply {
        Reply::new(111, format!("Range Marker {}", self.ranges.to_marker()))
    }

    /// Parse from a `111` reply.
    pub fn from_reply(reply: &Reply) -> Result<Self> {
        if reply.code != 111 {
            return Err(ProtocolError::BadMarker(format!("code {} is not 111", reply.code)));
        }
        let text = reply
            .text()
            .strip_prefix("Range Marker ")
            .ok_or_else(|| ProtocolError::BadMarker(format!("bad 111 text {:?}", reply.text())))?;
        Ok(RestartMarker { ranges: ByteRanges::parse_marker(text)? })
    }
}

/// A `112-Perf Marker` — throughput progress for monitoring/auto-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMarker {
    /// Seconds since transfer start.
    pub timestamp: f64,
    /// Stripe index this marker reports on.
    pub stripe_index: u32,
    /// Total stripe count.
    pub total_stripes: u32,
    /// Bytes transferred on this stripe so far.
    pub stripe_bytes: u64,
}

impl PerfMarker {
    /// Build the multiline `112` reply in Globus format.
    pub fn to_reply(&self) -> Reply {
        Reply::multiline(
            112,
            vec![
                "Perf Marker".to_string(),
                format!(" Timestamp:  {:.1}", self.timestamp),
                format!(" Stripe Index: {}", self.stripe_index),
                format!(" Stripe Bytes Transferred: {}", self.stripe_bytes),
                format!(" Total Stripe Count: {}", self.total_stripes),
                "End.".to_string(),
            ],
        )
    }

    /// Parse from a `112` reply.
    pub fn from_reply(reply: &Reply) -> Result<Self> {
        if reply.code != 112 {
            return Err(ProtocolError::BadMarker(format!("code {} is not 112", reply.code)));
        }
        let mut timestamp = None;
        let mut stripe_index = None;
        let mut stripe_bytes = None;
        let mut total_stripes = None;
        for line in &reply.lines {
            let line = line.trim();
            if let Some(v) = line.strip_prefix("Timestamp:") {
                timestamp = v.trim().parse::<f64>().ok();
            } else if let Some(v) = line.strip_prefix("Stripe Index:") {
                stripe_index = v.trim().parse::<u32>().ok();
            } else if let Some(v) = line.strip_prefix("Stripe Bytes Transferred:") {
                stripe_bytes = v.trim().parse::<u64>().ok();
            } else if let Some(v) = line.strip_prefix("Total Stripe Count:") {
                total_stripes = v.trim().parse::<u32>().ok();
            }
        }
        match (timestamp, stripe_index, stripe_bytes, total_stripes) {
            (Some(t), Some(i), Some(b), Some(n)) => Ok(PerfMarker {
                timestamp: t,
                stripe_index: i,
                total_stripes: n,
                stripe_bytes: b,
            }),
            _ => Err(ProtocolError::BadMarker("112 reply missing fields".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_marker_roundtrip() {
        let mut ranges = ByteRanges::new();
        ranges.add(0, 1048576);
        ranges.add(2097152, 3145728);
        let m = RestartMarker { ranges };
        let reply = m.to_reply();
        assert_eq!(reply.code, 111);
        assert!(reply.text().starts_with("Range Marker 0-1048576,"));
        assert_eq!(RestartMarker::from_reply(&reply).unwrap(), m);
    }

    #[test]
    fn restart_marker_rejects_wrong_code() {
        assert!(RestartMarker::from_reply(&Reply::new(226, "done")).is_err());
        assert!(RestartMarker::from_reply(&Reply::new(111, "nope")).is_err());
    }

    #[test]
    fn perf_marker_roundtrip() {
        let m = PerfMarker {
            timestamp: 12.5,
            stripe_index: 2,
            total_stripes: 4,
            stripe_bytes: 123456789,
        };
        let reply = m.to_reply();
        assert_eq!(reply.code, 112);
        let back = PerfMarker::from_reply(&reply).unwrap();
        assert_eq!(back, m);
        // Survives wire framing too.
        let rewire = Reply::parse(&reply.to_wire()).unwrap();
        assert_eq!(PerfMarker::from_reply(&rewire).unwrap(), m);
    }

    #[test]
    fn perf_marker_rejects_incomplete() {
        let r = Reply::multiline(112, vec!["Perf Marker".into(), " Timestamp: 1.0".into(), "End.".into()]);
        assert!(PerfMarker::from_reply(&r).is_err());
        assert!(PerfMarker::from_reply(&Reply::new(111, "x")).is_err());
    }
}
