//! The FTP `h1,h2,h3,h4,p1,p2` host-port encoding used by
//! `PORT`/`PASV`/`SPOR`/`SPAS`.

use crate::error::{ProtocolError, Result};
use std::fmt;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

/// An IPv4 address + port in FTP comma notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostPort {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl HostPort {
    /// Construct directly.
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        HostPort { ip, port }
    }

    /// From a socket address (IPv4 only — GridFTP-era deployments).
    pub fn from_socket_addr(addr: SocketAddr) -> Result<Self> {
        match addr {
            SocketAddr::V4(v4) => Ok(HostPort { ip: *v4.ip(), port: v4.port() }),
            SocketAddr::V6(_) => {
                Err(ProtocolError::BadHostPort("IPv6 not supported in PORT/PASV".into()))
            }
        }
    }

    /// To a socket address.
    pub fn to_socket_addr(self) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(self.ip, self.port))
    }

    /// Parse `h1,h2,h3,h4,p1,p2`.
    pub fn parse(s: &str) -> Result<Self> {
        let parts: Vec<&str> = s.trim().split(',').collect();
        if parts.len() != 6 {
            return Err(ProtocolError::BadHostPort(format!(
                "expected 6 comma-separated fields, got {}",
                parts.len()
            )));
        }
        let nums: Vec<u8> = parts
            .iter()
            .map(|p| {
                p.trim()
                    .parse::<u8>()
                    .map_err(|_| ProtocolError::BadHostPort(format!("bad field {p:?}")))
            })
            .collect::<Result<_>>()?;
        Ok(HostPort {
            ip: Ipv4Addr::new(nums[0], nums[1], nums[2], nums[3]),
            port: (nums[4] as u16) << 8 | nums[5] as u16,
        })
    }

    /// Parse a whitespace- or semicolon-separated list (SPOR argument /
    /// SPAS reply body).
    pub fn parse_list(s: &str) -> Result<Vec<Self>> {
        s.split(|c: char| c.is_whitespace() || c == ';')
            .filter(|t| !t.is_empty())
            .map(Self::parse)
            .collect()
    }
}

impl fmt::Display for HostPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.ip.octets();
        write!(
            f,
            "{},{},{},{},{},{}",
            o[0],
            o[1],
            o[2],
            o[3],
            self.port >> 8,
            self.port & 0xff
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let hp = HostPort::parse("127,0,0,1,4,1").unwrap();
        assert_eq!(hp.ip, Ipv4Addr::LOCALHOST);
        assert_eq!(hp.port, 1025);
        assert_eq!(hp.to_string(), "127,0,0,1,4,1");
    }

    #[test]
    fn port_arithmetic() {
        let hp = HostPort::new(Ipv4Addr::new(10, 0, 0, 1), 65535);
        let parsed = HostPort::parse(&hp.to_string()).unwrap();
        assert_eq!(parsed, hp);
        let hp0 = HostPort::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert_eq!(HostPort::parse(&hp0.to_string()).unwrap().port, 0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(HostPort::parse("1,2,3,4,5").is_err());
        assert!(HostPort::parse("1,2,3,4,5,6,7").is_err());
        assert!(HostPort::parse("256,0,0,1,0,1").is_err());
        assert!(HostPort::parse("a,b,c,d,e,f").is_err());
        assert!(HostPort::parse("").is_err());
    }

    #[test]
    fn socket_addr_roundtrip() {
        let sa: SocketAddr = "192.168.1.10:2811".parse().unwrap();
        let hp = HostPort::from_socket_addr(sa).unwrap();
        assert_eq!(hp.to_socket_addr(), sa);
        let v6: SocketAddr = "[::1]:2811".parse().unwrap();
        assert!(HostPort::from_socket_addr(v6).is_err());
    }

    #[test]
    fn list_parsing() {
        let list = HostPort::parse_list("127,0,0,1,0,80 127,0,0,2,0,81;127,0,0,3,0,82").unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list[1].port, 81);
        assert!(HostPort::parse_list("").unwrap().is_empty());
        assert!(HostPort::parse_list("bogus").is_err());
    }
}
