//! Protocol parse/framing errors.

use std::fmt;

/// Errors from parsing commands, replies, blocks or markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A command line could not be parsed.
    BadCommand(String),
    /// A reply could not be parsed.
    BadReply(String),
    /// A host-port string could not be parsed.
    BadHostPort(String),
    /// A MODE E block was malformed.
    BadBlock(String),
    /// A marker or range string was malformed.
    BadMarker(String),
    /// A DCSC blob was malformed.
    BadDcsc(String),
    /// A streamed-directory frame was malformed (bad magic, truncated
    /// header, checksum mismatch, illegal path).
    BadStream(String),
    /// Control-channel protection failure.
    Secure(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadCommand(m) => write!(f, "bad command: {m}"),
            ProtocolError::BadReply(m) => write!(f, "bad reply: {m}"),
            ProtocolError::BadHostPort(m) => write!(f, "bad host-port: {m}"),
            ProtocolError::BadBlock(m) => write!(f, "bad MODE E block: {m}"),
            ProtocolError::BadMarker(m) => write!(f, "bad marker: {m}"),
            ProtocolError::BadDcsc(m) => write!(f, "bad DCSC payload: {m}"),
            ProtocolError::BadStream(m) => write!(f, "bad directory stream: {m}"),
            ProtocolError::Secure(m) => write!(f, "control-channel protection: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, ProtocolError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(ProtocolError::BadCommand("x".into()).to_string().contains("bad command"));
        assert!(ProtocolError::BadDcsc("y".into()).to_string().contains("DCSC"));
    }
}
