//! RFC 2228 control-channel protection.
//!
//! After `AUTH GSSAPI`/`ADAT` succeeds, every command travels as
//! `MIC <b64>` (integrity) or `ENC <b64>` (private), and every reply as
//! `631 <b64>` (MIC) or `632`/`633 <b64>` (conf/private). §IIC: "The
//! control channel is encrypted and integrity protected by default" —
//! so the default wrapper here is `ENC`/`633`. Experiment E12 measures
//! the per-command cost.

use crate::command::{Command, ProtectedKind};
use crate::error::{ProtocolError, Result};
use crate::reply::Reply;
use ig_crypto::encode::{base64_decode, base64_encode};
use ig_gsi::context::SecureContext;
use ig_gsi::ProtectionLevel;

fn level_for(kind: ProtectedKind) -> ProtectionLevel {
    match kind {
        ProtectedKind::Mic => ProtectionLevel::Safe,
        ProtectedKind::Enc => ProtectionLevel::Private,
    }
}

/// Wrap a command line in a protected envelope.
pub fn protect_command(ctx: &mut SecureContext, kind: ProtectedKind, cmd: &Command) -> Command {
    let line = cmd.to_string();
    let record = ctx.seal(level_for(kind), line.as_bytes());
    Command::Protected { kind, payload: base64_encode(&record) }
}

/// Unwrap a protected command envelope back into the inner command.
pub fn unprotect_command(ctx: &mut SecureContext, cmd: &Command) -> Result<Command> {
    let Command::Protected { kind, payload } = cmd else {
        return Err(ProtocolError::Secure("not a MIC/ENC envelope".into()));
    };
    let record =
        base64_decode(payload).map_err(|e| ProtocolError::Secure(format!("bad base64: {e}")))?;
    let plain = ctx
        .open_expecting(&record, level_for(*kind))
        .map_err(|e| ProtocolError::Secure(e.to_string()))?;
    let line = String::from_utf8(plain)
        .map_err(|_| ProtocolError::Secure("protected payload not UTF-8".into()))?;
    Command::parse(&line)
}

/// Reply code for a protected reply envelope.
fn reply_code_for(kind: ProtectedKind) -> u16 {
    match kind {
        ProtectedKind::Mic => 631,
        ProtectedKind::Enc => 633,
    }
}

/// Wrap a reply in a protected envelope (`631`/`633`).
pub fn protect_reply(ctx: &mut SecureContext, kind: ProtectedKind, reply: &Reply) -> Reply {
    let record = ctx.seal(level_for(kind), reply.to_wire().as_bytes());
    Reply::new(reply_code_for(kind), base64_encode(&record))
}

/// Unwrap a `631`/`633` protected reply.
pub fn unprotect_reply(ctx: &mut SecureContext, reply: &Reply) -> Result<Reply> {
    let kind = match reply.code {
        631 => ProtectedKind::Mic,
        633 => ProtectedKind::Enc,
        other => {
            return Err(ProtocolError::Secure(format!("code {other} is not a protected reply")))
        }
    };
    let record = base64_decode(reply.text())
        .map_err(|e| ProtocolError::Secure(format!("bad base64: {e}")))?;
    let plain = ctx
        .open_expecting(&record, level_for(kind))
        .map_err(|e| ProtocolError::Secure(e.to_string()))?;
    let text = String::from_utf8(plain)
        .map_err(|_| ProtocolError::Secure("protected payload not UTF-8".into()))?;
    Reply::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_gsi::context::test_support::{ca_and_credential, config_with};
    use ig_gsi::context::SecureContext;
    use ig_gsi::handshake::pump;

    fn contexts() -> (SecureContext, SecureContext) {
        contexts_seeded(55)
    }

    fn contexts_seeded(seed: u64) -> (SecureContext, SecureContext) {
        let mut rng = seeded(seed);
        let (ca, server_cred) = ca_and_credential(&mut rng, "/O=CA", "/CN=server");
        let (ca2, client_cred) = ca_and_credential(&mut rng, "/O=CA2", "/CN=client");
        let server_cfg = config_with(Some(server_cred), &[&ca, &ca2], true);
        let client_cfg = config_with(Some(client_cred), &[&ca, &ca2], true);
        let (ie, ae) = pump(client_cfg, server_cfg, &mut rng).unwrap();
        (
            SecureContext::from_established(ie),
            SecureContext::from_established(ae),
        )
    }

    #[test]
    fn protected_command_roundtrip_enc_and_mic() {
        let (mut client, mut server) = contexts();
        for kind in [ProtectedKind::Enc, ProtectedKind::Mic] {
            let inner = Command::Retr("/data/secret.dat".into());
            let wrapped = protect_command(&mut client, kind, &inner);
            // Wire form is a legal command whose arg is base64.
            let line = wrapped.to_string();
            let reparsed = Command::parse(&line).unwrap();
            let unwrapped = unprotect_command(&mut server, &reparsed).unwrap();
            assert_eq!(unwrapped, inner);
        }
    }

    #[test]
    fn enc_hides_the_command() {
        let (mut client, _) = contexts();
        let wrapped =
            protect_command(&mut client, ProtectedKind::Enc, &Command::Pass("hunter2".into()));
        let line = wrapped.to_string();
        assert!(!line.contains("hunter2"));
        assert!(!line.contains("PASS "));
    }

    #[test]
    fn protected_reply_roundtrip() {
        let (mut client, mut server) = contexts();
        let inner = Reply::new(226, "Transfer complete.");
        let wrapped = protect_reply(&mut server, ProtectedKind::Enc, &inner);
        assert_eq!(wrapped.code, 633);
        let unwrapped = unprotect_reply(&mut client, &wrapped).unwrap();
        assert_eq!(unwrapped, inner);
        // MIC path and multiline.
        let ml = Reply::multiline(211, vec!["a".into(), "b".into()]);
        let wrapped = protect_reply(&mut server, ProtectedKind::Mic, &ml);
        assert_eq!(wrapped.code, 631);
        assert_eq!(unprotect_reply(&mut client, &wrapped).unwrap(), ml);
    }

    #[test]
    fn tampered_envelope_rejected() {
        let (mut client, mut server) = contexts();
        let wrapped = protect_command(&mut client, ProtectedKind::Enc, &Command::Noop);
        let Command::Protected { kind, payload } = wrapped else { unreachable!() };
        let mut bytes = base64_decode(&payload).unwrap();
        bytes[12] ^= 0xff;
        let tampered = Command::Protected { kind, payload: base64_encode(&bytes) };
        assert!(unprotect_command(&mut server, &tampered).is_err());
    }

    #[test]
    fn wrong_context_rejected() {
        let (mut client_a, _) = contexts_seeded(55);
        let (_, mut server_b) = contexts_seeded(56);
        let wrapped = protect_command(&mut client_a, ProtectedKind::Enc, &Command::Noop);
        assert!(unprotect_command(&mut server_b, &wrapped).is_err());
    }

    #[test]
    fn non_envelope_inputs_rejected() {
        let (mut client, mut server) = contexts();
        assert!(unprotect_command(&mut server, &Command::Noop).is_err());
        assert!(unprotect_reply(&mut client, &Reply::new(226, "x")).is_err());
        let bogus = Command::Protected { kind: ProtectedKind::Enc, payload: "!!".into() };
        assert!(unprotect_command(&mut server, &bogus).is_err());
    }
}
