//! FTP replies with RFC 959 single-line and multiline framing.

use crate::error::{ProtocolError, Result};
use std::fmt;

/// A server reply: a 3-digit code and one or more text lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Three-digit reply code.
    pub code: u16,
    /// Text lines (at least one).
    pub lines: Vec<String>,
}

impl Reply {
    /// Single-line reply.
    pub fn new(code: u16, text: impl Into<String>) -> Self {
        Reply { code, lines: vec![text.into()] }
    }

    /// Multiline reply.
    pub fn multiline(code: u16, lines: Vec<String>) -> Self {
        assert!(!lines.is_empty(), "reply needs at least one line");
        Reply { code, lines }
    }

    /// First text line.
    pub fn text(&self) -> &str {
        &self.lines[0]
    }

    /// 1xx — positive preliminary (e.g. `150 Opening data connection`).
    pub fn is_preliminary(&self) -> bool {
        (100..200).contains(&self.code)
    }

    /// 2xx — positive completion.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.code)
    }

    /// 3xx — positive intermediate (e.g. `331 Password required`, `335
    /// ADAT=...`).
    pub fn is_intermediate(&self) -> bool {
        (300..400).contains(&self.code)
    }

    /// 4xx — transient negative.
    pub fn is_transient_error(&self) -> bool {
        (400..500).contains(&self.code)
    }

    /// 5xx — permanent negative.
    pub fn is_permanent_error(&self) -> bool {
        (500..600).contains(&self.code)
    }

    /// Any error class (6yz protected-reply envelopes are not errors).
    pub fn is_error(&self) -> bool {
        (400..600).contains(&self.code)
    }

    /// Render with CRLF line endings, using the RFC 959 dash form for
    /// multiline replies.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        if self.lines.len() == 1 {
            out.push_str(&format!("{} {}\r\n", self.code, self.lines[0]));
        } else {
            for (i, line) in self.lines.iter().enumerate() {
                if i + 1 == self.lines.len() {
                    out.push_str(&format!("{} {}\r\n", self.code, line));
                } else {
                    out.push_str(&format!("{}-{}\r\n", self.code, line));
                }
            }
        }
        out
    }

    /// Parse a full reply (possibly multiline) from wire text.
    pub fn parse(text: &str) -> Result<Self> {
        let mut lines_out = Vec::new();
        let mut code: Option<u16> = None;
        for raw in text.lines() {
            let line = raw.trim_end_matches('\r');
            if line.len() < 4 || !line.is_char_boundary(3) || !line.is_char_boundary(4) {
                return Err(ProtocolError::BadReply(format!("short reply line {line:?}")));
            }
            let this_code: u16 = line[..3]
                .parse()
                .map_err(|_| ProtocolError::BadReply(format!("bad code in {line:?}")))?;
            // 6yz are RFC 2228 protected-reply envelopes.
            if !(100..700).contains(&this_code) {
                return Err(ProtocolError::BadReply(format!("code {this_code} out of range")));
            }
            match code {
                None => code = Some(this_code),
                Some(c) if c == this_code => {}
                Some(c) => {
                    return Err(ProtocolError::BadReply(format!(
                        "mixed codes {c} and {this_code} in one reply"
                    )))
                }
            }
            let sep = line.as_bytes()[3];
            lines_out.push(line[4..].to_string());
            if sep == b' ' {
                return Ok(Reply { code: code.expect("set above"), lines: lines_out });
            }
            if sep != b'-' {
                return Err(ProtocolError::BadReply(format!(
                    "bad separator {:?} in {line:?}",
                    sep as char
                )));
            }
        }
        Err(ProtocolError::BadReply("unterminated multiline reply".into()))
    }

    // --- Common replies used across the stack ----------------------------

    /// `220 <banner>`
    pub fn service_ready(banner: &str) -> Self {
        Reply::new(220, banner)
    }

    /// `221 Goodbye`
    pub fn goodbye() -> Self {
        Reply::new(221, "Goodbye.")
    }

    /// `200 Command okay`
    pub fn ok(msg: &str) -> Self {
        Reply::new(200, msg)
    }

    /// `226 Transfer complete`
    pub fn transfer_complete() -> Self {
        Reply::new(226, "Transfer complete.")
    }

    /// `150 Opening data connection`
    pub fn opening_data() -> Self {
        Reply::new(150, "Opening data connection.")
    }

    /// `500 Syntax error`
    pub fn syntax_error(msg: &str) -> Self {
        Reply::new(500, msg)
    }

    /// `530 Not logged in`
    pub fn not_logged_in(msg: &str) -> Self {
        Reply::new(530, msg)
    }

    /// `550 Requested action not taken`
    pub fn action_failed(msg: &str) -> Self {
        Reply::new(550, msg)
    }

    /// `335 ADAT=<token>` — security handshake continuation.
    pub fn adat_continue(token_b64: &str) -> Self {
        Reply::new(335, format!("ADAT={token_b64}"))
    }

    /// `235 ADAT=<token>` — security handshake complete (with final token).
    pub fn adat_done(token_b64: Option<&str>) -> Self {
        match token_b64 {
            Some(t) => Reply::new(235, format!("ADAT={t}")),
            None => Reply::new(235, "Security data exchange complete."),
        }
    }

    /// Extract an `ADAT=<b64>` payload from a 235/335 reply.
    pub fn adat_payload(&self) -> Option<&str> {
        self.text().strip_prefix("ADAT=")
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.lines.join(" / "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert!(Reply::new(150, "x").is_preliminary());
        assert!(Reply::new(226, "x").is_success());
        assert!(Reply::new(331, "x").is_intermediate());
        assert!(Reply::new(426, "x").is_transient_error());
        assert!(Reply::new(550, "x").is_permanent_error());
        assert!(Reply::new(550, "x").is_error());
        assert!(!Reply::new(226, "x").is_error());
    }

    #[test]
    fn single_line_wire_roundtrip() {
        let r = Reply::new(220, "GridFTP Server ready.");
        assert_eq!(r.to_wire(), "220 GridFTP Server ready.\r\n");
        assert_eq!(Reply::parse(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn multiline_wire_roundtrip() {
        let r = Reply::multiline(
            211,
            vec!["Features:".into(), " PARALLEL".into(), " DCSC".into(), "End".into()],
        );
        let wire = r.to_wire();
        assert!(wire.starts_with("211-Features:\r\n"));
        assert!(wire.ends_with("211 End\r\n"));
        assert_eq!(Reply::parse(&wire).unwrap(), r);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Reply::parse("22").is_err());
        assert!(Reply::parse("abc hello\r\n").is_err());
        assert!(Reply::parse("099 too small\r\n").is_err());
        assert!(Reply::parse("700 too big\r\n").is_err());
        // RFC 2228 protected replies parse and are not errors.
        let enc = Reply::parse("633 c2VhbGVk\r\n").unwrap();
        assert_eq!(enc.code, 633);
        assert!(!enc.is_error());
        assert!(Reply::parse("211-open\r\n212 close\r\n").is_err()); // mixed codes
        assert!(Reply::parse("211-never ends\r\n").is_err());
        assert!(Reply::parse("211Xsep\r\n").is_err());
    }

    #[test]
    fn empty_text_line_ok() {
        let r = Reply::new(200, "");
        assert_eq!(Reply::parse(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn adat_helpers() {
        let r = Reply::adat_continue("dG9r");
        assert_eq!(r.code, 335);
        assert_eq!(r.adat_payload(), Some("dG9r"));
        let done = Reply::adat_done(Some("ZmluYWw="));
        assert_eq!(done.code, 235);
        assert_eq!(done.adat_payload(), Some("ZmluYWw="));
        assert_eq!(Reply::adat_done(None).adat_payload(), None);
    }

    #[test]
    fn common_constructors() {
        assert_eq!(Reply::transfer_complete().code, 226);
        assert_eq!(Reply::opening_data().code, 150);
        assert_eq!(Reply::syntax_error("x").code, 500);
        assert_eq!(Reply::not_logged_in("x").code, 530);
        assert_eq!(Reply::action_failed("x").code, 550);
        assert_eq!(Reply::goodbye().code, 221);
        assert_eq!(Reply::service_ready("hi").code, 220);
        assert_eq!(Reply::ok("fine").code, 200);
    }
}
