//! Streamed directory framing — "tar over MODE E".
//!
//! The paper (§II-A) credits pipelining with making lots-of-small-files
//! datasets usable; the complementary data-channel trick is to send an
//! entire directory tree over **one** MODE E data connection instead of
//! paying a control round trip plus data-channel setup (and a DCAU
//! handshake) per file. This module defines that framing, modeled on
//! qcp's per-file header/trailer session stream:
//!
//! ```text
//! entry   := header payload? trailer?
//! header  := "IGD1" kind(1) mode(4 BE) path_len(2 BE) path size(8 BE)
//! payload := size bytes                      (files only; dirs have none)
//! trailer := "IGT1" sha256(payload)(32)      (files only)
//! stream  := entry* end
//! end     := "IGE1" entry_count(8 BE)
//! ```
//!
//! * `kind` is 0 for a regular file, 1 for a directory.
//! * `path` is a `/`-separated **relative** path (UTF-8, no `.`/`..`/empty
//!   components) under the transfer root.
//! * Entries are emitted in sorted depth-first pre-order, parents before
//!   children, so any byte-contiguous prefix of the stream decodes to a
//!   set of *complete* entries — that is what makes file-granular resume
//!   work: after a fault, the receiver counts its decodable prefix and the
//!   sender restarts at entry `n`, not byte zero.
//! * The end marker carries the entry count so a receiver can tell a
//!   complete stream from one that lost its tail.
//!
//! The stream rides inside ordinary MODE E blocks with sequential offsets,
//! so parallel streams, restart markers and chaos-fault reassembly all
//! work unchanged underneath it.

use crate::error::{ProtocolError, Result};
use ig_crypto::Sha256;

/// Entry-header magic.
pub const HEADER_MAGIC: [u8; 4] = *b"IGD1";
/// File-trailer magic.
pub const TRAILER_MAGIC: [u8; 4] = *b"IGT1";
/// Stream-end magic.
pub const END_MAGIC: [u8; 4] = *b"IGE1";

/// Fixed bytes of an entry header before the variable-length path:
/// magic(4) + kind(1) + mode(4) + path_len(2).
pub const HEADER_FIXED_LEN: usize = 11;
/// Trailing size field after the path.
const SIZE_LEN: usize = 8;
/// Trailer: magic(4) + SHA-256(32).
pub const TRAILER_LEN: usize = 36;
/// End marker: magic(4) + entry_count(8).
pub const END_LEN: usize = 12;

/// Largest single file the decoder will buffer (the sender streams, the
/// decoder holds one file at a time). Generous for the small-file regime
/// this framing targets; a corrupt length field fails fast instead of
/// asking for an absurd allocation.
pub const MAX_FILE_SIZE: u64 = 1 << 30;
/// Longest allowed relative path (also bounds the u16 length field).
pub const MAX_PATH_LEN: usize = 4096;

/// One entry's metadata as carried in its header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEntry {
    /// Relative path under the transfer root, `/`-separated.
    pub path: String,
    /// Directory (true) or regular file (false).
    pub is_dir: bool,
    /// Unix permission bits (advisory; `MemDsi` ignores them).
    pub mode: u32,
    /// Payload byte count; always 0 for directories.
    pub size: u64,
}

impl StreamEntry {
    /// A regular file entry with default mode 0644.
    pub fn file(path: impl Into<String>, size: u64) -> Self {
        StreamEntry { path: path.into(), is_dir: false, mode: 0o644, size }
    }

    /// A directory entry with default mode 0755.
    pub fn dir(path: impl Into<String>) -> Self {
        StreamEntry { path: path.into(), is_dir: true, mode: 0o755, size: 0 }
    }
}

/// Reject paths that could escape the transfer root or are unencodable.
pub fn validate_path(path: &str) -> Result<()> {
    if path.is_empty() {
        return Err(ProtocolError::BadStream("empty entry path".into()));
    }
    if path.len() > MAX_PATH_LEN {
        return Err(ProtocolError::BadStream(format!(
            "entry path longer than {MAX_PATH_LEN} bytes"
        )));
    }
    if path.starts_with('/') {
        return Err(ProtocolError::BadStream(format!("absolute entry path {path:?}")));
    }
    if path.contains('\0') {
        return Err(ProtocolError::BadStream("NUL byte in entry path".into()));
    }
    for comp in path.split('/') {
        if comp.is_empty() || comp == "." || comp == ".." {
            return Err(ProtocolError::BadStream(format!(
                "illegal path component {comp:?} in {path:?}"
            )));
        }
    }
    Ok(())
}

/// Encode an entry header. The caller must follow a file header with
/// exactly `size` payload bytes and then [`encode_trailer`].
pub fn encode_header(entry: &StreamEntry) -> Result<Vec<u8>> {
    validate_path(&entry.path)?;
    if entry.is_dir && entry.size != 0 {
        return Err(ProtocolError::BadStream(format!(
            "directory entry {:?} with nonzero size",
            entry.path
        )));
    }
    if entry.size > MAX_FILE_SIZE {
        return Err(ProtocolError::BadStream(format!(
            "entry {:?} larger than MAX_FILE_SIZE",
            entry.path
        )));
    }
    let path = entry.path.as_bytes();
    let mut out = Vec::with_capacity(HEADER_FIXED_LEN + path.len() + SIZE_LEN);
    out.extend_from_slice(&HEADER_MAGIC);
    out.push(u8::from(entry.is_dir));
    out.extend_from_slice(&entry.mode.to_be_bytes());
    out.extend_from_slice(&(path.len() as u16).to_be_bytes());
    out.extend_from_slice(path);
    out.extend_from_slice(&entry.size.to_be_bytes());
    Ok(out)
}

/// Encode a file trailer from the payload's SHA-256 digest.
pub fn encode_trailer(digest: &[u8; 32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(TRAILER_LEN);
    out.extend_from_slice(&TRAILER_MAGIC);
    out.extend_from_slice(digest);
    out
}

/// Encode the stream-end marker carrying the total entry count.
pub fn encode_end(entry_count: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(END_LEN);
    out.extend_from_slice(&END_MAGIC);
    out.extend_from_slice(&entry_count.to_be_bytes());
    out
}

/// Encode a whole tree in one buffer — convenience for tests and small
/// senders. `items` must already be in the pre-order the receiver expects
/// (directories before their contents); file entries carry their payload.
pub fn encode_tree(items: &[(StreamEntry, Vec<u8>)]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    for (entry, data) in items {
        if !entry.is_dir && entry.size != data.len() as u64 {
            return Err(ProtocolError::BadStream(format!(
                "entry {:?} declares {} bytes but carries {}",
                entry.path,
                entry.size,
                data.len()
            )));
        }
        out.extend_from_slice(&encode_header(entry)?);
        if !entry.is_dir {
            out.extend_from_slice(data);
            out.extend_from_slice(&encode_trailer(&Sha256::digest(data)));
        }
    }
    out.extend_from_slice(&encode_end(items.len() as u64));
    Ok(out)
}

/// A decoded item emitted by [`DirStreamDecoder::push`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirEvent {
    /// A directory entry.
    Dir(StreamEntry),
    /// A complete, checksum-verified file.
    File(StreamEntry, Vec<u8>),
    /// The end marker; `entries` is the sender's total count.
    End {
        /// Total entries the sender claims to have streamed.
        entries: u64,
    },
}

#[derive(Debug)]
enum DecodeState {
    /// Waiting for an entry header or the end marker.
    Frame,
    /// Buffering a file payload + trailer.
    Body { entry: StreamEntry },
}

/// Incremental decoder: feed byte chunks in order, get complete entries
/// out. Only ever buffers one in-flight file, so memory is bounded by the
/// largest file, not the tree.
///
/// `push` is infallible on purpose: a chunk can complete several good
/// entries *and then* hit a framing violation, and the good entries must
/// still reach the caller — they are exactly the file-granular resume
/// point. The violation is reported by [`DirStreamDecoder::error`] and
/// poisons the decoder (later pushes are no-ops), because after a bad
/// magic there is no way to resynchronize on this framing.
#[derive(Debug)]
pub struct DirStreamDecoder {
    buf: Vec<u8>,
    state: DecodeState,
    entries_done: u64,
    finished: bool,
    poisoned: Option<ProtocolError>,
}

impl Default for DirStreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl DirStreamDecoder {
    /// Fresh decoder at entry 0.
    pub fn new() -> Self {
        DirStreamDecoder {
            buf: Vec::new(),
            state: DecodeState::Frame,
            entries_done: 0,
            finished: false,
            poisoned: None,
        }
    }

    /// Complete entries decoded so far — the file-granular resume point.
    pub fn entries_done(&self) -> u64 {
        self.entries_done
    }

    /// True once the end marker arrived with a matching count.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Bytes buffered but not yet decodable into a complete item.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The framing violation that poisoned this decoder, if any.
    pub fn error(&self) -> Option<&ProtocolError> {
        self.poisoned.as_ref()
    }

    /// Feed the next chunk; returns every item completed by it (possibly
    /// including items decoded before a violation — check [`Self::error`]
    /// after the stream ends).
    pub fn push(&mut self, bytes: &[u8]) -> Vec<DirEvent> {
        if self.poisoned.is_some() {
            return Vec::new();
        }
        self.buf.extend_from_slice(bytes);
        let mut events = Vec::new();
        if let Err(err) = self.drain(&mut events) {
            self.poisoned = Some(err);
        }
        events
    }

    fn drain(&mut self, events: &mut Vec<DirEvent>) -> Result<()> {
        loop {
            match &self.state {
                DecodeState::Frame => {
                    if self.finished {
                        if !self.buf.is_empty() {
                            return Err(ProtocolError::BadStream(format!(
                                "{} trailing bytes after end marker",
                                self.buf.len()
                            )));
                        }
                        return Ok(());
                    }
                    if self.buf.len() < 4 {
                        return Ok(());
                    }
                    let magic: [u8; 4] = self.buf[..4].try_into().expect("len checked");
                    match magic {
                        END_MAGIC => {
                            if self.buf.len() < END_LEN {
                                return Ok(());
                            }
                            let claimed = u64::from_be_bytes(
                                self.buf[4..END_LEN].try_into().expect("len checked"),
                            );
                            if claimed != self.entries_done {
                                return Err(ProtocolError::BadStream(format!(
                                    "end marker claims {claimed} entries, decoded {}",
                                    self.entries_done
                                )));
                            }
                            self.buf.drain(..END_LEN);
                            self.finished = true;
                            events.push(DirEvent::End { entries: claimed });
                        }
                        HEADER_MAGIC => {
                            if self.buf.len() < HEADER_FIXED_LEN {
                                return Ok(());
                            }
                            let kind = self.buf[4];
                            let mode = u32::from_be_bytes(
                                self.buf[5..9].try_into().expect("len checked"),
                            );
                            let path_len = u16::from_be_bytes(
                                self.buf[9..11].try_into().expect("len checked"),
                            ) as usize;
                            if path_len > MAX_PATH_LEN {
                                return Err(ProtocolError::BadStream(format!(
                                    "header path length {path_len} exceeds {MAX_PATH_LEN}"
                                )));
                            }
                            let need = HEADER_FIXED_LEN + path_len + SIZE_LEN;
                            if self.buf.len() < need {
                                return Ok(());
                            }
                            let path = std::str::from_utf8(
                                &self.buf[HEADER_FIXED_LEN..HEADER_FIXED_LEN + path_len],
                            )
                            .map_err(|_| {
                                ProtocolError::BadStream("entry path is not UTF-8".into())
                            })?
                            .to_string();
                            validate_path(&path)?;
                            let size = u64::from_be_bytes(
                                self.buf[HEADER_FIXED_LEN + path_len..need]
                                    .try_into()
                                    .expect("len checked"),
                            );
                            let is_dir = match kind {
                                0 => false,
                                1 => true,
                                other => {
                                    return Err(ProtocolError::BadStream(format!(
                                        "unknown entry kind {other} for {path:?}"
                                    )))
                                }
                            };
                            if is_dir && size != 0 {
                                return Err(ProtocolError::BadStream(format!(
                                    "directory entry {path:?} with nonzero size"
                                )));
                            }
                            if size > MAX_FILE_SIZE {
                                return Err(ProtocolError::BadStream(format!(
                                    "entry {path:?} larger than MAX_FILE_SIZE"
                                )));
                            }
                            self.buf.drain(..need);
                            let entry = StreamEntry { path, is_dir, mode, size };
                            if is_dir {
                                self.entries_done += 1;
                                events.push(DirEvent::Dir(entry));
                            } else {
                                self.state = DecodeState::Body { entry };
                            }
                        }
                        other => {
                            return Err(ProtocolError::BadStream(format!(
                                "bad frame magic {other:02x?}"
                            )));
                        }
                    }
                }
                DecodeState::Body { entry } => {
                    let need = entry.size as usize + TRAILER_LEN;
                    if self.buf.len() < need {
                        return Ok(());
                    }
                    let payload: Vec<u8> = self.buf[..entry.size as usize].to_vec();
                    let trailer = &self.buf[entry.size as usize..need];
                    if trailer[..4] != TRAILER_MAGIC {
                        return Err(ProtocolError::BadStream(format!(
                            "bad trailer magic {:02x?} for {:?}",
                            &trailer[..4],
                            entry.path
                        )));
                    }
                    let want: [u8; 32] = trailer[4..].try_into().expect("len checked");
                    let got = Sha256::digest(&payload);
                    if want != got {
                        return Err(ProtocolError::BadStream(format!(
                            "checksum mismatch for {:?}",
                            entry.path
                        )));
                    }
                    let entry = entry.clone();
                    self.buf.drain(..need);
                    self.state = DecodeState::Frame;
                    self.entries_done += 1;
                    events.push(DirEvent::File(entry, payload));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Vec<(StreamEntry, Vec<u8>)> {
        vec![
            (StreamEntry::dir("a"), vec![]),
            (StreamEntry::file("a/one.bin", 5), b"hello".to_vec()),
            (StreamEntry::dir("a/empty"), vec![]),
            (StreamEntry::file("a/zero", 0), vec![]),
            (StreamEntry::file("b.dat", 3), b"xyz".to_vec()),
        ]
    }

    fn decode_all(bytes: &[u8], chunk: usize) -> (DirStreamDecoder, Vec<DirEvent>) {
        let mut dec = DirStreamDecoder::new();
        let mut events = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            events.extend(dec.push(piece));
        }
        (dec, events)
    }

    #[test]
    fn roundtrip_whole_and_byte_at_a_time() {
        let wire = encode_tree(&tree()).unwrap();
        for chunk in [wire.len(), 1, 7] {
            let (dec, events) = decode_all(&wire, chunk);
            assert!(dec.error().is_none());
            assert!(dec.finished());
            assert_eq!(dec.entries_done(), 5);
            assert_eq!(dec.buffered(), 0);
            assert_eq!(events.len(), 6, "5 entries + end");
            assert_eq!(events[0], DirEvent::Dir(StreamEntry::dir("a")));
            assert_eq!(
                events[1],
                DirEvent::File(StreamEntry::file("a/one.bin", 5), b"hello".to_vec())
            );
            assert_eq!(events[3], DirEvent::File(StreamEntry::file("a/zero", 0), vec![]));
            assert_eq!(*events.last().unwrap(), DirEvent::End { entries: 5 });
        }
    }

    #[test]
    fn truncated_stream_yields_prefix_and_never_finishes() {
        let wire = encode_tree(&tree()).unwrap();
        // Cut mid-way: whatever decodes must be complete entries only.
        for cut in [0, 3, 20, wire.len() - 1] {
            let (dec, events) = decode_all(&wire[..cut], 5);
            assert!(dec.error().is_none(), "cut at {cut} is truncation, not corruption");
            assert!(!dec.finished(), "cut at {cut} must not finish");
            assert_eq!(
                dec.entries_done() as usize,
                events.len(),
                "every event below the end marker is a complete entry"
            );
        }
    }

    #[test]
    fn resume_skip_semantics() {
        // A receiver that decoded N entries and a sender that re-walks the
        // same tree skipping N produce a seamless continuation.
        let items = tree();
        let wire = encode_tree(&items).unwrap();
        let (dec, _) = decode_all(&wire[..wire.len() / 2], 9);
        let skip = dec.entries_done() as usize;
        assert!(skip > 0 && skip < items.len());
        let rest = encode_tree(&items[skip..]).unwrap();
        let mut dec2 = DirStreamDecoder::new();
        let events = dec2.push(&rest);
        assert!(dec2.error().is_none());
        assert!(dec2.finished());
        assert_eq!(dec2.entries_done() as usize + skip, items.len());
        assert_eq!(*events.last().unwrap(), DirEvent::End { entries: (items.len() - skip) as u64 });
    }

    #[test]
    fn corrupt_magic_rejected_and_poisons() {
        let mut wire = encode_tree(&tree()).unwrap();
        wire[0] ^= 0xFF;
        let mut dec = DirStreamDecoder::new();
        assert!(dec.push(&wire).is_empty());
        let err = dec.error().unwrap().clone();
        assert!(err.to_string().contains("magic"), "{err}");
        // Poisoned: later pushes are no-ops, error sticks.
        assert!(dec.push(b"IGD1").is_empty());
        assert_eq!(dec.error(), Some(&err));
        assert_eq!(dec.entries_done(), 0);
    }

    #[test]
    fn events_before_a_violation_still_delivered() {
        // One good dir + one good file, then garbage — a single push must
        // hand back both completed entries AND report the violation, with
        // entries_done matching what was delivered (the resume point).
        let good = vec![
            (StreamEntry::dir("d"), vec![]),
            (StreamEntry::file("d/f", 4), b"data".to_vec()),
        ];
        let mut wire = Vec::new();
        for (e, data) in &good {
            wire.extend_from_slice(&encode_header(e).unwrap());
            if !e.is_dir {
                wire.extend_from_slice(data);
                wire.extend_from_slice(&encode_trailer(&Sha256::digest(data)));
            }
        }
        wire.extend_from_slice(b"XXXXGARBAGE");
        let mut dec = DirStreamDecoder::new();
        let events = dec.push(&wire);
        assert_eq!(events.len(), 2);
        assert_eq!(dec.entries_done(), 2);
        assert!(dec.error().unwrap().to_string().contains("magic"));
        assert!(!dec.finished());
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut wire = encode_tree(&tree()).unwrap();
        // Flip a byte inside "hello" (first file payload).
        let hdr = encode_header(&StreamEntry::dir("a")).unwrap().len()
            + encode_header(&StreamEntry::file("a/one.bin", 5)).unwrap().len();
        wire[hdr + 2] ^= 0x01;
        let mut dec = DirStreamDecoder::new();
        let events = dec.push(&wire);
        // The dir before the corrupt file still decodes.
        assert_eq!(events, vec![DirEvent::Dir(StreamEntry::dir("a"))]);
        let err = dec.error().unwrap();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn corrupt_trailer_magic_rejected() {
        let entry = StreamEntry::file("f", 4);
        let mut wire = encode_tree(&[(entry, b"data".to_vec())]).unwrap();
        let hdr = encode_header(&StreamEntry::file("f", 4)).unwrap().len();
        wire[hdr + 4] = b'X'; // first trailer byte
        let mut dec = DirStreamDecoder::new();
        dec.push(&wire);
        assert!(dec.error().unwrap().to_string().contains("trailer magic"));
    }

    #[test]
    fn end_count_mismatch_rejected() {
        let mut wire = encode_tree(&tree()).unwrap();
        let n = wire.len();
        wire[n - 1] ^= 0x01; // entry count low byte
        let mut dec = DirStreamDecoder::new();
        let events = dec.push(&wire);
        assert_eq!(events.len(), 5, "entries before the bad end marker still decode");
        assert!(dec.error().unwrap().to_string().contains("end marker claims"));
        assert!(!dec.finished());
    }

    #[test]
    fn trailing_garbage_after_end_rejected() {
        let mut wire = encode_tree(&tree()).unwrap();
        wire.push(0xAA);
        let mut dec = DirStreamDecoder::new();
        dec.push(&wire);
        assert!(dec.error().unwrap().to_string().contains("trailing bytes"));
    }

    #[test]
    fn hostile_paths_rejected() {
        for path in ["/etc/passwd", "../up", "a/../b", "a//b", "", ".", "a/.", "nul\0byte"] {
            let entry = StreamEntry::file(path, 0);
            assert!(encode_header(&entry).is_err(), "encode accepted {path:?}");
            // And on the decode side, craft the header by hand.
            let mut raw = Vec::new();
            raw.extend_from_slice(&HEADER_MAGIC);
            raw.push(0);
            raw.extend_from_slice(&0o644u32.to_be_bytes());
            raw.extend_from_slice(&(path.len() as u16).to_be_bytes());
            raw.extend_from_slice(path.as_bytes());
            raw.extend_from_slice(&0u64.to_be_bytes());
            let mut dec = DirStreamDecoder::new();
            dec.push(&raw);
            assert!(dec.error().is_some(), "decode accepted {path:?}");
        }
    }

    #[test]
    fn oversized_declared_file_rejected() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&HEADER_MAGIC);
        raw.push(0);
        raw.extend_from_slice(&0o644u32.to_be_bytes());
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.push(b'f');
        raw.extend_from_slice(&(MAX_FILE_SIZE + 1).to_be_bytes());
        let mut dec = DirStreamDecoder::new();
        dec.push(&raw);
        assert!(dec.error().unwrap().to_string().contains("MAX_FILE_SIZE"));
    }

    #[test]
    fn dir_with_size_rejected() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&HEADER_MAGIC);
        raw.push(1);
        raw.extend_from_slice(&0o755u32.to_be_bytes());
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.push(b'd');
        raw.extend_from_slice(&9u64.to_be_bytes());
        let mut dec = DirStreamDecoder::new();
        dec.push(&raw);
        assert!(dec.error().unwrap().to_string().contains("nonzero size"));
    }

    #[test]
    fn duplicate_basenames_in_different_dirs_ok() {
        let items = vec![
            (StreamEntry::dir("x"), vec![]),
            (StreamEntry::file("x/name", 1), b"1".to_vec()),
            (StreamEntry::dir("y"), vec![]),
            (StreamEntry::file("y/name", 1), b"2".to_vec()),
        ];
        let wire = encode_tree(&items).unwrap();
        let (dec, events) = decode_all(&wire, 3);
        assert!(dec.finished());
        assert_eq!(events.len(), 5);
    }
}
