//! # ig-protocol — the GridFTP wire protocol
//!
//! RFC 959 (FTP) + RFC 2228 (security extensions) + GFD.020 (GridFTP
//! extensions) + the paper's new `DCSC` command (§V), as parsers,
//! serializers and framing:
//!
//! * [`command::Command`] — the control-channel command grammar,
//!   including `SPAS`/`SPOR` (striping), `OPTS RETR` (parallelism),
//!   `PBSZ`/`PROT`/`DCAU` (data-channel security), `REST` (restart) and
//!   **`DCSC P|D`** — the paper's contribution.
//! * [`reply::Reply`] — three-digit replies with RFC 959 multiline
//!   framing, plus GridFTP's in-transfer `111` restart and `112`
//!   performance markers ([`markers`]).
//! * [`mode_e`] — extended-block-mode framing: every block carries a
//!   64-bit offset + length so blocks can fly over any number of parallel
//!   streams and be reassembled at the receiver; `EOD`/`EOF-count`
//!   descriptors close the channels deterministically.
//! * [`ranges::ByteRanges`] — coalesced byte-range arithmetic backing
//!   restart markers ("increased reliability via restart markers", §I).
//! * [`dcsc`] — `DCSC P` blob encoding: base64 over the PEM bundle
//!   (certificate, private key, extra chain certs), exactly §V-A.
//! * [`secure_line`] — RFC 2228 control-channel protection (`MIC`/`ENC`
//!   commands, `63x` replies): "the control channel is encrypted and
//!   integrity protected by default" (§IIC).

pub mod addr;
pub mod command;
pub mod dcsc;
pub mod error;
pub mod markers;
pub mod mode_e;
pub mod ranges;
pub mod reply;
pub mod secure_line;
pub mod stream_dir;

pub use addr::HostPort;
pub use command::{Command, DcauMode, ModeCode, TypeCode};
pub use error::ProtocolError;
pub use mode_e::{Block, BlockView};
pub use ranges::ByteRanges;
pub use reply::Reply;
pub use stream_dir::{DirEvent, DirStreamDecoder, StreamEntry};
