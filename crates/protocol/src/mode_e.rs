//! MODE E — extended block mode framing.
//!
//! Every block carries `descriptor (1) || count (8 BE) || offset (8 BE)`
//! followed by `count` payload bytes. Because each block is
//! self-describing, blocks may travel over any of the parallel data
//! connections and arrive in any order — this is what makes GridFTP's
//! "high-performance data transfer by using striping and parallel
//! streams" (§I) possible while still reassembling an exact file.
//!
//! Descriptor bits follow GridFTP usage:
//! * `EOD` (0x08) — last block on *this* connection;
//! * `EOF_COUNT` (0x40) — the `offset` field carries the total number of
//!   EODs the receiver should expect (sent once, on one connection);
//! * `RESTART` (0x10) — payload is a restart-marker range list;
//! * `SUSPECT` (0x20) — block may be corrupt (failure injection).

use crate::error::{ProtocolError, Result};

/// Descriptor bit: end of data on this connection.
pub const EOD: u8 = 0x08;
/// Descriptor bit: offset field = expected EOD count.
pub const EOF_COUNT: u8 = 0x40;
/// Descriptor bit: restart marker payload.
pub const RESTART: u8 = 0x10;
/// Descriptor bit: suspected error in this block.
pub const SUSPECT: u8 = 0x20;

/// Header length in bytes.
pub const HEADER_LEN: usize = 1 + 8 + 8;

/// One extended-mode block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Descriptor bits.
    pub descriptor: u8,
    /// File offset of the payload (or EOD count for `EOF_COUNT` blocks).
    pub offset: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Block {
    /// A plain data block.
    pub fn data(offset: u64, payload: Vec<u8>) -> Self {
        Block { descriptor: 0, offset, payload }
    }

    /// An end-of-data block (empty payload).
    pub fn eod() -> Self {
        Block { descriptor: EOD, offset: 0, payload: Vec::new() }
    }

    /// An EOF-count block announcing how many EODs will arrive in total.
    pub fn eof_count(count: u64) -> Self {
        Block { descriptor: EOF_COUNT, offset: count, payload: Vec::new() }
    }

    /// A restart-marker block carrying a range list.
    pub fn restart_marker(ranges: &crate::ranges::ByteRanges) -> Self {
        Block { descriptor: RESTART, offset: 0, payload: ranges.to_marker().into_bytes() }
    }

    /// Is the EOD bit set?
    pub fn is_eod(&self) -> bool {
        self.descriptor & EOD != 0
    }

    /// Is this an EOF-count block?
    pub fn is_eof_count(&self) -> bool {
        self.descriptor & EOF_COUNT != 0
    }

    /// Is this a restart marker?
    pub fn is_restart(&self) -> bool {
        self.descriptor & RESTART != 0
    }

    /// Parse the restart ranges out of a restart-marker block.
    pub fn restart_ranges(&self) -> Result<crate::ranges::ByteRanges> {
        if !self.is_restart() {
            return Err(ProtocolError::BadBlock("not a restart-marker block".into()));
        }
        let text = std::str::from_utf8(&self.payload)
            .map_err(|_| ProtocolError::BadBlock("restart payload not UTF-8".into()))?;
        crate::ranges::ByteRanges::parse_marker(text)
    }

    /// Serialize: header + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Serialize into a reused buffer (cleared first). Once `out` has
    /// grown to the steady-state block size, encoding allocates nothing.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&encode_header(
            self.descriptor,
            self.payload.len() as u64,
            self.offset,
        ));
        out.extend_from_slice(&self.payload);
    }

    /// The 17-byte wire header for this block. Senders that already hold
    /// the payload elsewhere can transmit `header_bytes()` + payload as a
    /// vectored write instead of materializing [`Block::encode`].
    pub fn header_bytes(&self) -> [u8; HEADER_LEN] {
        encode_header(self.descriptor, self.payload.len() as u64, self.offset)
    }

    /// Borrow this block's fields as a [`BlockView`].
    pub fn view(&self) -> BlockView<'_> {
        BlockView { descriptor: self.descriptor, offset: self.offset, payload: &self.payload }
    }

    /// Parse one block from a complete message.
    pub fn decode(data: &[u8]) -> Result<Self> {
        Ok(BlockView::parse(data)?.to_block())
    }
}

/// Build the wire header: `descriptor (1) || count (8 BE) || offset (8 BE)`.
pub fn encode_header(descriptor: u8, count: u64, offset: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0] = descriptor;
    h[1..9].copy_from_slice(&count.to_be_bytes());
    h[9..17].copy_from_slice(&offset.to_be_bytes());
    h
}

/// A borrowed view of one extended-mode block: the decode-side twin of
/// [`Block`] whose payload points into the receive buffer, so parsing a
/// block copies nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockView<'a> {
    /// Descriptor bits.
    pub descriptor: u8,
    /// File offset of the payload (or EOD count for `EOF_COUNT` blocks).
    pub offset: u64,
    /// Payload bytes, borrowed from the message buffer.
    pub payload: &'a [u8],
}

impl<'a> BlockView<'a> {
    /// Parse one block from a complete message without copying the payload.
    /// Malformed frames bump the global `protocol.bad_blocks` counter
    /// (the success path records nothing — parsing stays allocation-free).
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            ig_obs::Obs::global().metrics().add("protocol.bad_blocks", 1);
            return Err(ProtocolError::BadBlock(format!(
                "message of {} bytes shorter than header",
                data.len()
            )));
        }
        let descriptor = data[0];
        let count = u64::from_be_bytes(data[1..9].try_into().expect("sized"));
        let offset = u64::from_be_bytes(data[9..17].try_into().expect("sized"));
        let body = &data[HEADER_LEN..];
        if body.len() as u64 != count {
            ig_obs::Obs::global().metrics().add("protocol.bad_blocks", 1);
            return Err(ProtocolError::BadBlock(format!(
                "declared {count} payload bytes but message carries {}",
                body.len()
            )));
        }
        Ok(BlockView { descriptor, offset, payload: body })
    }

    /// Is the EOD bit set?
    pub fn is_eod(&self) -> bool {
        self.descriptor & EOD != 0
    }

    /// Is this an EOF-count block?
    pub fn is_eof_count(&self) -> bool {
        self.descriptor & EOF_COUNT != 0
    }

    /// Is this a restart marker?
    pub fn is_restart(&self) -> bool {
        self.descriptor & RESTART != 0
    }

    /// Copy into an owned [`Block`].
    pub fn to_block(&self) -> Block {
        Block { descriptor: self.descriptor, offset: self.offset, payload: self.payload.to_vec() }
    }
}

/// Split a buffer into data blocks of at most `block_size` bytes starting
/// at file offset `base`, round-robin ready for parallel streams.
pub fn fragment(base: u64, data: &[u8], block_size: usize) -> Vec<Block> {
    assert!(block_size > 0, "block size must be positive");
    let mut out = Vec::with_capacity(data.len().div_ceil(block_size));
    let mut off = 0usize;
    while off < data.len() {
        let end = (off + block_size).min(data.len());
        out.push(Block::data(base + off as u64, data[off..end].to_vec()));
        off = end;
    }
    out
}

/// Reassembles blocks (possibly out of order, from many connections) into
/// a contiguous buffer and tracks completion.
#[derive(Debug, Default)]
pub struct Reassembler {
    data: Vec<u8>,
    received: crate::ranges::ByteRanges,
    eods_seen: u64,
    eods_expected: Option<u64>,
}

impl Reassembler {
    /// New empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one block.
    pub fn push(&mut self, block: &Block) -> Result<()> {
        self.push_view(&block.view())
    }

    /// Feed one borrowed block view (the zero-copy receive path: parse
    /// the wire message with [`BlockView::parse`] and push the view, so
    /// the payload goes straight from the receive buffer into place).
    pub fn push_view(&mut self, block: &BlockView<'_>) -> Result<()> {
        if block.is_eof_count() {
            self.eods_expected = Some(block.offset);
            return Ok(());
        }
        if block.is_eod() {
            self.eods_seen += 1;
        }
        if block.is_restart() || block.payload.is_empty() {
            return Ok(());
        }
        let start = block.offset as usize;
        let end = start
            .checked_add(block.payload.len())
            .ok_or_else(|| ProtocolError::BadBlock("offset overflow".into()))?;
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
        self.data[start..end].copy_from_slice(block.payload);
        self.received.add(block.offset, end as u64);
        Ok(())
    }

    /// All connections closed (every expected EOD seen)?
    pub fn channels_done(&self) -> bool {
        match self.eods_expected {
            Some(expect) => self.eods_seen >= expect,
            None => false,
        }
    }

    /// Received ranges so far (for emitting restart markers).
    pub fn received(&self) -> &crate::ranges::ByteRanges {
        &self.received
    }

    /// Bytes received so far.
    pub fn bytes(&self) -> u64 {
        self.received.total()
    }

    /// Finish, checking contiguity against the expected length.
    pub fn into_data(self, expected_len: u64) -> Result<Vec<u8>> {
        if !self.received.is_complete(expected_len) {
            return Err(ProtocolError::BadBlock(format!(
                "incomplete reassembly: have {}, missing {:?}",
                self.received.to_marker(),
                self.received.missing(expected_len)
            )));
        }
        Ok(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_encode_decode_roundtrip() {
        let b = Block::data(1 << 40, vec![1, 2, 3, 4, 5]);
        let enc = b.encode();
        assert_eq!(enc.len(), HEADER_LEN + 5);
        assert_eq!(Block::decode(&enc).unwrap(), b);
        let eod = Block::eod();
        assert_eq!(Block::decode(&eod.encode()).unwrap(), eod);
        assert!(eod.is_eod());
        let eofc = Block::eof_count(8);
        let dec = Block::decode(&eofc.encode()).unwrap();
        assert!(dec.is_eof_count());
        assert_eq!(dec.offset, 8);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Block::decode(&[]).is_err());
        assert!(Block::decode(&[0; 10]).is_err());
        let mut enc = Block::data(0, vec![1, 2, 3]).encode();
        enc.pop(); // truncate payload
        assert!(Block::decode(&enc).is_err());
        enc.extend_from_slice(&[9, 9]); // now too long
        assert!(Block::decode(&enc).is_err());
    }

    #[test]
    fn fragment_covers_exactly() {
        let data: Vec<u8> = (0..100u8).collect();
        let blocks = fragment(1000, &data, 33);
        assert_eq!(blocks.len(), 4); // 33+33+33+1
        assert_eq!(blocks[0].offset, 1000);
        assert_eq!(blocks[3].offset, 1099);
        assert_eq!(blocks[3].payload.len(), 1);
        let total: usize = blocks.iter().map(|b| b.payload.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn fragment_empty_is_empty() {
        assert!(fragment(0, &[], 10).is_empty());
    }

    #[test]
    fn reassemble_in_order() {
        let data: Vec<u8> = (0..255u8).collect();
        let mut r = Reassembler::new();
        for b in fragment(0, &data, 16) {
            r.push(&b).unwrap();
        }
        r.push(&Block::eof_count(1)).unwrap();
        r.push(&Block::eod()).unwrap();
        assert!(r.channels_done());
        assert_eq!(r.into_data(255).unwrap(), data);
    }

    #[test]
    fn reassemble_out_of_order_multi_stream() {
        // Simulate 4 parallel streams delivering interleaved.
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let blocks = fragment(0, &data, 64);
        let mut r = Reassembler::new();
        // Stripe blocks across 4 "streams", reversed within each stream.
        for stream in 0..4 {
            let mine: Vec<&Block> = blocks.iter().skip(stream).step_by(4).collect();
            for b in mine.iter().rev() {
                r.push(b).unwrap();
            }
            r.push(&Block::eod()).unwrap();
        }
        r.push(&Block::eof_count(4)).unwrap();
        assert!(r.channels_done());
        assert_eq!(r.bytes(), 1000);
        assert_eq!(r.into_data(1000).unwrap(), data);
    }

    #[test]
    fn incomplete_reassembly_is_an_error() {
        let data: Vec<u8> = vec![7; 100];
        let blocks = fragment(0, &data, 10);
        let mut r = Reassembler::new();
        for (i, b) in blocks.iter().enumerate() {
            if i != 3 {
                r.push(b).unwrap(); // drop block 3
            }
        }
        let err = r.into_data(100).unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn channels_done_requires_eof_count() {
        let mut r = Reassembler::new();
        r.push(&Block::eod()).unwrap();
        assert!(!r.channels_done()); // no EOF_COUNT yet
        r.push(&Block::eof_count(1)).unwrap();
        assert!(r.channels_done());
    }

    #[test]
    fn restart_marker_blocks() {
        let mut ranges = crate::ranges::ByteRanges::new();
        ranges.add(0, 4096);
        ranges.add(8192, 16384);
        let b = Block::restart_marker(&ranges);
        assert!(b.is_restart());
        let parsed = Block::decode(&b.encode()).unwrap().restart_ranges().unwrap();
        assert_eq!(parsed, ranges);
        assert!(Block::data(0, vec![1]).restart_ranges().is_err());
    }

    #[test]
    fn restart_blocks_do_not_pollute_data() {
        let mut r = Reassembler::new();
        let mut ranges = crate::ranges::ByteRanges::new();
        ranges.add(0, 10);
        r.push(&Block::restart_marker(&ranges)).unwrap();
        assert_eq!(r.bytes(), 0);
    }

    #[test]
    fn encode_into_and_header_bytes_match_encode() {
        let blocks = [
            Block::data(1 << 40, vec![1, 2, 3, 4, 5]),
            Block::eod(),
            Block::eof_count(8),
            Block::data(0, Vec::new()),
        ];
        let mut buf = vec![0xffu8; 200]; // stale contents must be cleared
        for b in &blocks {
            let enc = b.encode();
            b.encode_into(&mut buf);
            assert_eq!(buf, enc);
            let mut vectored = b.header_bytes().to_vec();
            vectored.extend_from_slice(&b.payload);
            assert_eq!(vectored, enc);
        }
    }

    #[test]
    fn view_parse_matches_decode() {
        let b = Block::data(77, (0..50u8).collect());
        let enc = b.encode();
        let view = BlockView::parse(&enc).unwrap();
        assert_eq!(view.descriptor, b.descriptor);
        assert_eq!(view.offset, b.offset);
        assert_eq!(view.payload, &b.payload[..]);
        assert_eq!(view.to_block(), b);
        assert_eq!(b.view(), view);
        // Same malformed inputs rejected.
        assert!(BlockView::parse(&[]).is_err());
        assert!(BlockView::parse(&enc[..HEADER_LEN + 3]).is_err());
        // Flag helpers agree with Block's.
        let eod = Block::eod().encode();
        assert!(BlockView::parse(&eod).unwrap().is_eod());
        let eofc = Block::eof_count(3).encode();
        assert!(BlockView::parse(&eofc).unwrap().is_eof_count());
    }

    #[test]
    fn push_view_reassembles_from_wire_buffers() {
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let mut r = Reassembler::new();
        let mut wire = Vec::new();
        for b in fragment(0, &data, 64) {
            b.encode_into(&mut wire);
            r.push_view(&BlockView::parse(&wire).unwrap()).unwrap();
        }
        Block::eof_count(1).encode_into(&mut wire);
        r.push_view(&BlockView::parse(&wire).unwrap()).unwrap();
        Block::eod().encode_into(&mut wire);
        r.push_view(&BlockView::parse(&wire).unwrap()).unwrap();
        assert!(r.channels_done());
        assert_eq!(r.into_data(500).unwrap(), data);
    }

    #[test]
    fn overlapping_blocks_idempotent() {
        // Retransmission after restart may resend overlapping data.
        let data: Vec<u8> = (0..100u8).collect();
        let mut r = Reassembler::new();
        for b in fragment(0, &data, 30) {
            r.push(&b).unwrap();
        }
        for b in fragment(30, &data[30..70], 20) {
            r.push(&b).unwrap();
        }
        assert_eq!(r.into_data(100).unwrap(), data);
    }
}
