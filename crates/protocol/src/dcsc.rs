//! DCSC payload encoding — §V-A of the paper, byte for byte.
//!
//! A `DCSC P` message is `DCSC P <base64-encoded-blob>` where the blob
//! comprises:
//!
//! 1. an X.509 certificate in PEM format,
//! 2. a private key in PEM format,
//! 3. additional X.509 certificates in PEM format, unordered (optional).
//!
//! "The certificate in (1) must be self-signed or verifiable by using
//! only intermediate and/or CA certificates in (3)."
//!
//! `DCSC D` reverts to the login context.

use crate::command::Command;
use crate::error::{ProtocolError, Result};
use ig_crypto::encode::{base64_decode, base64_encode};
use ig_pki::Credential;

/// The effect of a DCSC command on a session's data-channel context.
#[derive(Debug)]
pub enum DcscAction {
    /// `DCSC P`: install this credential as the data-channel security
    /// context (both *presented* and *accepted*).
    Install(Box<Credential>),
    /// `DCSC D`: revert "to whatever it was immediately after login".
    RevertToDefault,
}

/// Encode a credential as a `DCSC P` command.
pub fn encode_dcsc_p(credential: &Credential) -> Command {
    let bundle = credential.to_pem_bundle();
    Command::Dcsc { context_type: 'P', blob: Some(base64_encode(bundle.as_bytes())) }
}

/// Encode a `DCSC D` command.
pub fn encode_dcsc_d() -> Command {
    Command::Dcsc { context_type: 'D', blob: None }
}

/// Interpret a parsed `DCSC` command into an action.
pub fn interpret(context_type: char, blob: Option<&str>) -> Result<DcscAction> {
    match context_type {
        'P' => {
            let blob = blob.ok_or_else(|| ProtocolError::BadDcsc("P requires a blob".into()))?;
            let bytes = base64_decode(blob)
                .map_err(|e| ProtocolError::BadDcsc(format!("bad base64: {e}")))?;
            let text = String::from_utf8(bytes)
                .map_err(|_| ProtocolError::BadDcsc("blob is not UTF-8 PEM text".into()))?;
            let credential = Credential::from_pem_bundle(&text)
                .map_err(|e| ProtocolError::BadDcsc(format!("bad PEM bundle: {e}")))?;
            Ok(DcscAction::Install(Box::new(credential)))
        }
        'D' => {
            if blob.is_some() {
                return Err(ProtocolError::BadDcsc("D takes no blob".into()));
            }
            Ok(DcscAction::RevertToDefault)
        }
        other => Err(ProtocolError::BadDcsc(format!("unknown context type {other:?}"))),
    }
}

/// Size in bytes of the encoded blob for a credential (experiment E12's
/// "DCSC blob size vs chain length").
pub fn blob_size(credential: &Credential) -> usize {
    base64_encode(credential.to_pem_bundle().as_bytes()).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_crypto::rng::seeded;
    use ig_pki::cert::Validity;
    use ig_pki::{CertificateAuthority, DistinguishedName};

    fn test_credential(seed: u64) -> Credential {
        let mut rng = seeded(seed);
        let mut ca = CertificateAuthority::create(
            &mut rng,
            DistinguishedName::parse("/O=CA-A").unwrap(),
            512,
            0,
            1_000_000,
        )
        .unwrap();
        let keys = ig_crypto::RsaKeyPair::generate(&mut rng, 512).unwrap();
        let cert = ca
            .issue(
                DistinguishedName::parse("/O=Grid/CN=alice").unwrap(),
                &keys.public,
                Validity::starting_at(0, 10_000),
                vec![],
            )
            .unwrap();
        Credential::new(vec![cert, ca.root_cert().clone()], keys.private).unwrap()
    }

    #[test]
    fn dcsc_p_roundtrip() {
        let cred = test_credential(1);
        let cmd = encode_dcsc_p(&cred);
        // Goes over the wire as a parseable printable-ASCII command.
        let line = cmd.to_string();
        let parsed = Command::parse(&line).unwrap();
        let Command::Dcsc { context_type, blob } = parsed else {
            panic!("not a DCSC command");
        };
        let action = interpret(context_type, blob.as_deref()).unwrap();
        match action {
            DcscAction::Install(back) => {
                assert_eq!(back.chain(), cred.chain());
                assert_eq!(back.key(), cred.key());
            }
            DcscAction::RevertToDefault => panic!("expected Install"),
        }
    }

    #[test]
    fn dcsc_d_roundtrip() {
        let cmd = encode_dcsc_d();
        assert_eq!(cmd.to_string(), "DCSC D");
        let action = interpret('D', None).unwrap();
        assert!(matches!(action, DcscAction::RevertToDefault));
    }

    #[test]
    fn interpret_rejects_malformed() {
        assert!(interpret('P', None).is_err());
        assert!(interpret('P', Some("!!!not-base64!!!")).is_err());
        assert!(interpret('P', Some(&base64_encode(b"not pem"))).is_err());
        assert!(interpret('D', Some("extra")).is_err());
        assert!(interpret('Q', None).is_err());
        // Valid base64 of a PEM bundle missing the key.
        let cred = test_credential(2);
        let cert_only = base64_encode(cred.leaf().to_pem().as_bytes());
        assert!(interpret('P', Some(&cert_only)).is_err());
    }

    #[test]
    fn blob_grows_with_chain_length() {
        let cred = test_credential(3);
        let short = Credential::new(vec![cred.leaf().clone()], cred.key().clone()).unwrap();
        assert!(blob_size(&cred) > blob_size(&short));
    }

    #[test]
    fn blob_is_printable_ascii() {
        // §V's explicit constraint.
        let cred = test_credential(4);
        let Command::Dcsc { blob: Some(blob), .. } = encode_dcsc_p(&cred) else {
            panic!("expected DCSC P");
        };
        assert!(blob.bytes().all(|b| (32..=126).contains(&b)));
    }
}
