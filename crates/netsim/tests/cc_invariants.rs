//! Deterministic mirrors of the `cc_properties.rs` proptest battery —
//! fixed-seed sweeps over the same invariants, kept dependency-light so
//! they run everywhere proptest cannot (and fail with a concrete seed
//! when a bound breaks).

use ig_netsim::cc::{BBR_CYCLE, BBR_STARTUP_GAIN};
use ig_netsim::tcp::FlowState;
use ig_netsim::{parallel_throughput_bps, BbrLite, Bottleneck, CcAlgo, CongestionControl, TcpParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ALGOS: [CcAlgo; 3] = [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Bbr];

#[test]
fn cwnd_never_exceeds_caps_sweep() {
    for algo in ALGOS {
        for (cap_kib, rate_mbps, rtt_ms, seed) in [
            (4u64, 2.0f64, 5.0f64, 11u64),
            (16, 50.0, 40.0, 12),
            (64, 400.0, 90.0, 13),
            (256, 900.0, 140.0, 14),
        ] {
            let params = TcpParams::tuned()
                .with_window_cap(cap_kib * 1024)
                .with_rate_cap(rate_mbps * 1e6)
                .with_cc(algo);
            let cap_segments = (cap_kib as f64 * 1024.0 / params.mss as f64).max(1.0);
            let rtt = rtt_ms / 1e3;
            let mut f = FlowState::new(u64::MAX / 2, params);
            let mut rng = StdRng::seed_from_u64(seed);
            for round in 0..300 {
                let offer = f.offered_bytes(rtt);
                assert!(
                    offer <= cap_kib as f64 * 1024.0 + 1.0,
                    "{} cap={cap_kib}K round {round}: offer {offer} above window cap",
                    algo.label()
                );
                assert!(
                    offer <= rate_mbps * 1e6 / 8.0 * rtt + 1.0,
                    "{} cap={cap_kib}K round {round}: offer {offer} above rate cap",
                    algo.label()
                );
                let delivered = offer * rng.gen::<f64>();
                f.on_rtt_delivered(delivered, rtt);
                if rng.gen_bool(0.2) {
                    f.on_loss();
                }
                assert!(
                    f.cwnd() <= cap_segments + 1e-9,
                    "{} cap={cap_kib}K round {round}: cwnd {} above cap {}",
                    algo.label(),
                    f.cwnd(),
                    cap_segments
                );
            }
        }
    }
}

#[test]
fn bbr_pacing_within_gain_bounds_sweep() {
    let mss = 1460u32;
    // The floor is the drain gain (1/startup), not the probe-cycle
    // minimum: one round after startup exits, BBR paces below the cycle
    // to empty the queue it built.
    let min_gain = BBR_CYCLE
        .iter()
        .copied()
        .fold(1.0 / BBR_STARTUP_GAIN, f64::min);
    for (bw_mbps, rtt_ms) in [(5.0f64, 2.0f64), (100.0, 20.0), (1000.0, 80.0), (4000.0, 140.0)] {
        let rtt = rtt_ms / 1e3;
        let bottleneck_sps = bw_mbps * 1e6 / 8.0 / mss as f64;
        let mut b = BbrLite::new(10.0);
        for round in 0..200 {
            let deliverable = (b.cwnd() / rtt).min(bottleneck_sps);
            b.on_rtt_delivered(deliverable * rtt, rtt, f64::INFINITY);
            let est = b.btlbw_sps();
            assert!(
                est <= bottleneck_sps * 1.0001,
                "bw={bw_mbps} round {round}: estimate {est} above bottleneck {bottleneck_sps}"
            );
            if let Some(pacing) = b.pacing_bps(mss) {
                let est_bps = est * mss as f64 * 8.0;
                assert!(
                    pacing >= est_bps * min_gain - 1e-6,
                    "bw={bw_mbps} round {round}: pacing {pacing} below {min_gain} x {est_bps}"
                );
                assert!(
                    pacing <= est_bps * BBR_STARTUP_GAIN + 1e-6,
                    "bw={bw_mbps} round {round}: pacing {pacing} above startup gain x {est_bps}"
                );
            }
        }
    }
}

#[test]
fn cubic_tcp_friendly_at_low_bdp_sweep() {
    for (bw_mbps, rtt_ms, seed) in [(10.0f64, 10.0f64, 21u64), (25.0, 20.0, 22), (40.0, 8.0, 23)] {
        let link = Bottleneck::new(bw_mbps * 1e6, rtt_ms / 1e3, 1e-3);
        let bytes = 8u64 << 20;
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let reno = parallel_throughput_bps(&link, bytes, 1, TcpParams::tuned(), &mut r1);
        let cubic = parallel_throughput_bps(
            &link,
            bytes,
            1,
            TcpParams::tuned().with_cc(CcAlgo::Cubic),
            &mut r2,
        );
        let ratio = cubic / reno;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "bw={bw_mbps} rtt={rtt_ms}: cubic/reno ratio {ratio:.2} outside band \
             (cubic {cubic:.2e}, reno {reno:.2e})"
        );
    }
}

#[test]
fn bbr_beats_reno_on_lossy_high_bdp_path() {
    // The crossover direction the tentpole is about: one BBR flow on a
    // lossy high-BDP path sustains what Reno's sqrt(3/2p) law cannot.
    let link = Bottleneck::new(1e10, 0.1, 1e-3);
    let bytes = 64u64 << 20;
    let mut r1 = StdRng::seed_from_u64(0xB0);
    let mut r2 = StdRng::seed_from_u64(0xB0);
    let reno = parallel_throughput_bps(&link, bytes, 1, TcpParams::tuned(), &mut r1);
    let bbr = parallel_throughput_bps(
        &link,
        bytes,
        1,
        TcpParams::tuned().with_cc(CcAlgo::Bbr),
        &mut r2,
    );
    assert!(
        bbr > 10.0 * reno,
        "single BBR {bbr:.2e} should crush single Reno {reno:.2e} at loss 1e-3 x 100 ms"
    );
}

#[test]
fn all_algos_complete_transfers_sweep() {
    for algo in ALGOS {
        for seed in [31u64, 32, 33] {
            let link = Bottleneck::new(1e8, 0.02, 1e-4);
            let mut rng = StdRng::seed_from_u64(seed);
            let bps = parallel_throughput_bps(
                &link,
                1 << 20,
                2,
                TcpParams::tuned().with_cc(algo),
                &mut rng,
            );
            assert!(
                bps.is_finite() && bps > 0.0,
                "{} seed {seed}: bogus throughput {bps}",
                algo.label()
            );
            assert!(
                bps <= 1e8 * 1.3,
                "{} seed {seed}: {bps:.2e} beats capacity",
                algo.label()
            );
        }
    }
}
