//! Property tests for the TCP flow simulator: conservation, capacity,
//! determinism, and monotonicity invariants.

use ig_netsim::{parallel_throughput_bps, simulate, Bottleneck, FlowSpec, SimConfig, TcpParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_bytes_delivered_and_capacity_respected(
        bw_mbps in 10.0f64..2000.0,
        rtt_ms in 1.0f64..120.0,
        loss_exp in 0u32..4,
        flows in 1usize..8,
        kib in 64u64..4096,
        seed in any::<u64>(),
    ) {
        let loss = if loss_exp == 0 { 0.0 } else { 10f64.powi(-(loss_exp as i32 + 2)) };
        let link = Bottleneck::new(bw_mbps * 1e6, rtt_ms / 1e3, loss);
        let bytes = kib * 1024;
        let specs = vec![FlowSpec { bytes, params: TcpParams::tuned() }; flows];
        let mut rng = StdRng::seed_from_u64(seed);
        let results = simulate(&link, &specs, &SimConfig::default(), &mut rng);
        prop_assert_eq!(results.len(), flows);
        let makespan = results.iter().map(|r| r.duration_s).fold(0.0f64, f64::max);
        let mut total = 0u64;
        for r in &results {
            // Conservation: every flow delivers exactly its payload.
            prop_assert_eq!(r.bytes, bytes);
            prop_assert!(r.duration_s > 0.0);
            prop_assert!(r.duration_s <= makespan);
            total += r.bytes;
        }
        // Aggregate cannot beat the link (small slack for the final
        // partial-RTT quantization).
        let agg_bps = total as f64 * 8.0 / makespan;
        prop_assert!(
            agg_bps <= bw_mbps * 1e6 * 1.30,
            "aggregate {:.2e} exceeds capacity {:.2e}",
            agg_bps,
            bw_mbps * 1e6
        );
    }

    #[test]
    fn deterministic_for_seed(seed in any::<u64>()) {
        let link = Bottleneck::new(1e9, 0.03, 1e-4);
        let run = |s| {
            let mut rng = StdRng::seed_from_u64(s);
            parallel_throughput_bps(&link, 8 << 20, 4, TcpParams::tuned(), &mut rng)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn window_cap_never_beats_window_over_rtt(
        cap_kib in 16u64..512,
        rtt_ms in 5.0f64..200.0,
    ) {
        let link = Bottleneck::new(1e10, rtt_ms / 1e3, 0.0);
        let params = TcpParams::tuned().with_window_cap(cap_kib * 1024);
        let mut rng = StdRng::seed_from_u64(7);
        let bps = parallel_throughput_bps(&link, 4 << 20, 1, params, &mut rng);
        let ceiling = cap_kib as f64 * 1024.0 * 8.0 / (rtt_ms / 1e3);
        prop_assert!(bps <= ceiling * 1.05, "bps {bps:.2e} ceiling {ceiling:.2e}");
    }

    #[test]
    fn more_loss_never_helps_much(rtt_ms in 10.0f64..100.0, seed in any::<u64>()) {
        let clean = Bottleneck::new(1e9, rtt_ms / 1e3, 0.0);
        let lossy = Bottleneck::new(1e9, rtt_ms / 1e3, 1e-3);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let t_clean = parallel_throughput_bps(&clean, 8 << 20, 1, TcpParams::tuned(), &mut r1);
        let t_lossy = parallel_throughput_bps(&lossy, 8 << 20, 1, TcpParams::tuned(), &mut r2);
        // Random loss can only slow a single flow down (tiny tolerance for
        // the stochastic congestion component on the clean run).
        prop_assert!(t_lossy <= t_clean * 1.1, "loss helped: {t_lossy:.2e} > {t_clean:.2e}");
    }

    #[test]
    fn more_streams_never_slower_under_loss(
        streams in 1usize..12,
        seed in any::<u64>(),
    ) {
        // Parallel streams help *sustained, loss-limited* transfers (the
        // paper's WAN case). Short transfers that finish inside slow
        // start can regress (max-of-N straggler effect) — faithful to
        // real TCP — so pick a payload much larger than what slow start
        // covers, and compare means over several seeds.
        let link = Bottleneck::new(1e9, 0.04, 1e-3);
        let mean = |n: usize, base: u64| -> f64 {
            (0..5)
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(base.wrapping_add(i * 7919));
                    parallel_throughput_bps(&link, 64 << 20, n, TcpParams::tuned(), &mut rng)
                })
                .sum::<f64>()
                / 5.0
        };
        let one = mean(1, seed);
        let many = mean(streams, seed.wrapping_add(1));
        prop_assert!(many >= one * 0.8, "streams={streams}: {many:.2e} vs {one:.2e}");
    }
}
