//! Golden regression battery for the `CongestionControl` trait
//! extraction: the `reference` module below is a verbatim freeze of the
//! pre-trait Reno simulator (`tcp.rs` + `sim.rs` + the `lib.rs` helpers
//! as of the "Control-channel pipelining" commit). Every test runs the
//! frozen reference and the live crate over the same seeded schedule and
//! asserts the throughputs match to the last mantissa bit — both halves
//! link the same `rand`, so the comparison is valid under the real crate
//! and under the offline shim alike.
//!
//! If a deliberate Reno model change ever lands, the reference must be
//! re-frozen in the same commit and the change called out.

use ig_netsim::{parallel_throughput_bps, Bottleneck, TcpParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Verbatim pre-refactor implementation. Do not "clean up": operation
/// order is the contract.
mod reference {
    use ig_netsim::Bottleneck;
    use rand::Rng;

    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct RefParams {
        pub mss: u32,
        pub init_cwnd: u32,
        pub window_cap_bytes: Option<u64>,
        pub rate_cap_bps: Option<f64>,
    }

    impl RefParams {
        pub fn tuned() -> Self {
            RefParams { mss: 1460, init_cwnd: 10, window_cap_bytes: None, rate_cap_bps: None }
        }

        pub fn scp_like() -> Self {
            RefParams {
                mss: 1460,
                init_cwnd: 10,
                window_cap_bytes: Some(64 * 1024),
                rate_cap_bps: Some(400e6),
            }
        }

        pub fn with_window_cap(mut self, bytes: u64) -> Self {
            self.window_cap_bytes = Some(bytes);
            self
        }

        pub fn with_rate_cap(mut self, bps: f64) -> Self {
            self.rate_cap_bps = Some(bps);
            self
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Phase {
        SlowStart,
        CongestionAvoidance,
    }

    #[derive(Debug, Clone)]
    struct RefFlowState {
        params: RefParams,
        cwnd: f64,
        ssthresh: f64,
        phase: Phase,
        remaining: u64,
        loss_events: u64,
    }

    impl RefFlowState {
        fn new(bytes: u64, params: RefParams) -> Self {
            RefFlowState {
                params,
                cwnd: params.init_cwnd as f64,
                ssthresh: f64::INFINITY,
                phase: Phase::SlowStart,
                remaining: bytes,
                loss_events: 0,
            }
        }

        fn done(&self) -> bool {
            self.remaining == 0
        }

        fn cap_segments(&self) -> f64 {
            self.params
                .window_cap_bytes
                .map(|b| (b as f64 / self.params.mss as f64).max(1.0))
                .unwrap_or(f64::INFINITY)
        }

        fn offered_bytes(&self, rtt_s: f64) -> f64 {
            if self.done() {
                return 0.0;
            }
            let window = self.cwnd.min(self.cap_segments()) * self.params.mss as f64;
            let rate_limited = self
                .params
                .rate_cap_bps
                .map(|bps| bps / 8.0 * rtt_s)
                .unwrap_or(f64::INFINITY);
            window.min(rate_limited).min(self.remaining as f64).max(0.0)
        }

        fn on_rtt_delivered(&mut self, delivered: f64) {
            let delivered = delivered.min(self.remaining as f64);
            self.remaining -= delivered.round() as u64;
            match self.phase {
                Phase::SlowStart => {
                    self.cwnd *= 2.0;
                    if self.cwnd >= self.ssthresh {
                        self.cwnd = self.ssthresh;
                        self.phase = Phase::CongestionAvoidance;
                    }
                }
                Phase::CongestionAvoidance => {
                    self.cwnd += 1.0;
                }
            }
            let cap = self.cap_segments();
            if self.cwnd > cap {
                self.cwnd = cap;
            }
        }

        fn on_loss(&mut self) {
            self.loss_events += 1;
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.phase = Phase::CongestionAvoidance;
        }
    }

    const MAX_TICKS: u64 = 10_000_000;

    fn simulate<R: Rng + ?Sized>(
        link: &Bottleneck,
        flows: &[(u64, RefParams)],
        rng: &mut R,
    ) -> Vec<f64> {
        let mut states: Vec<RefFlowState> =
            flows.iter().map(|&(bytes, params)| RefFlowState::new(bytes, params)).collect();
        let mut results: Vec<Option<f64>> = vec![None; flows.len()];
        let capacity_per_rtt = link.bytes_per_rtt();
        let mut tick = 0u64;
        while results.iter().any(|r| r.is_none()) {
            tick += 1;
            if tick > MAX_TICKS {
                for (i, _) in states.iter().enumerate() {
                    if results[i].is_none() {
                        results[i] = Some(tick as f64 * link.rtt_s);
                    }
                }
                break;
            }
            let offers: Vec<f64> = states.iter().map(|s| s.offered_bytes(link.rtt_s)).collect();
            let demand: f64 = offers.iter().sum();
            let overload = (demand - capacity_per_rtt).max(0.0);
            let congestion_p = if demand > 0.0 {
                (overload / demand) / (1.0 + link.buffer_bdp)
            } else {
                0.0
            };
            let scale = if demand > capacity_per_rtt && demand > 0.0 {
                capacity_per_rtt / demand
            } else {
                1.0
            };
            for (i, state) in states.iter_mut().enumerate() {
                if results[i].is_some() {
                    continue;
                }
                let delivered = offers[i] * scale;
                let packets = (delivered / state.params.mss as f64).ceil().max(0.0);
                let p_random = 1.0 - (1.0 - link.loss).powf(packets);
                let lost = (congestion_p > 0.0 && rng.gen_bool(congestion_p.clamp(0.0, 1.0)))
                    || (link.loss > 0.0 && rng.gen_bool(p_random.clamp(0.0, 1.0)));
                state.on_rtt_delivered(delivered);
                if lost {
                    state.on_loss();
                }
                if state.done() {
                    results[i] = Some(tick as f64 * link.rtt_s);
                }
            }
        }
        results.into_iter().map(|r| r.expect("all flows finalized")).collect()
    }

    pub fn parallel_throughput_bps<R: Rng + ?Sized>(
        link: &Bottleneck,
        bytes: u64,
        n_streams: usize,
        params: RefParams,
        rng: &mut R,
    ) -> f64 {
        assert!(n_streams > 0);
        let per = bytes / n_streams as u64;
        let mut rem = bytes - per * n_streams as u64;
        let flows: Vec<(u64, RefParams)> = (0..n_streams)
            .map(|_| {
                let extra = if rem > 0 {
                    rem -= 1;
                    1
                } else {
                    0
                };
                (per + extra, params)
            })
            .collect();
        let durations = simulate(link, &flows, rng);
        let t = durations.iter().copied().fold(0.0f64, f64::max);
        (bytes as f64 * 8.0) / t
    }
}

use reference::RefParams;

/// The three param shapes the E2 schedule exercises, paired frozen/live.
fn param_pairs() -> Vec<(&'static str, RefParams, TcpParams)> {
    vec![
        ("scp", RefParams::scp_like(), TcpParams::scp_like()),
        (
            "ftp-256k",
            RefParams::tuned().with_window_cap(256 * 1024),
            TcpParams::tuned().with_window_cap(256 * 1024),
        ),
        ("tuned", RefParams::tuned(), TcpParams::tuned()),
    ]
}

/// Replicates the E2 per-cell schedule: one shared rng drives scp, ftp,
/// x1, x8, x16 in that order; the live side must reproduce every rng
/// draw of the frozen side, so a single diverging branch desynchronizes
/// everything after it.
fn e2_schedule(rtt: f64, loss: f64, bytes: u64) -> (Vec<f64>, Vec<f64>) {
    let link = Bottleneck::new(1e10, rtt, loss);
    let seed = 0xE2 ^ (rtt * 1e6) as u64 ^ (loss * 1e9) as u64;
    let scp_r = RefParams::scp_like();
    let ftp_r = RefParams::tuned().with_window_cap(256 * 1024);
    let tuned_r = RefParams::tuned();
    let mut rng = StdRng::seed_from_u64(seed);
    let frozen = vec![
        reference::parallel_throughput_bps(&link, bytes, 1, scp_r, &mut rng),
        reference::parallel_throughput_bps(&link, bytes, 1, ftp_r, &mut rng),
        reference::parallel_throughput_bps(&link, bytes, 1, tuned_r, &mut rng),
        reference::parallel_throughput_bps(&link, bytes, 8, tuned_r, &mut rng),
        reference::parallel_throughput_bps(&link, bytes, 16, tuned_r, &mut rng),
    ];
    let scp = TcpParams::scp_like();
    let ftp = TcpParams::tuned().with_window_cap(256 * 1024);
    let mut rng = StdRng::seed_from_u64(seed);
    let live = vec![
        parallel_throughput_bps(&link, bytes, 1, scp, &mut rng),
        parallel_throughput_bps(&link, bytes, 1, ftp, &mut rng),
        parallel_throughput_bps(&link, bytes, 1, TcpParams::tuned(), &mut rng),
        parallel_throughput_bps(&link, bytes, 8, TcpParams::tuned(), &mut rng),
        parallel_throughput_bps(&link, bytes, 16, TcpParams::tuned(), &mut rng),
    ];
    (frozen, live)
}

fn assert_bits_eq(tag: &str, frozen: &[f64], live: &[f64]) {
    assert_eq!(frozen.len(), live.len());
    for (i, (f, l)) in frozen.iter().zip(live).enumerate() {
        assert_eq!(
            f.to_bits(),
            l.to_bits(),
            "{tag} column {i}: frozen {f} ({:#018x}) vs live {l} ({:#018x})",
            f.to_bits(),
            l.to_bits()
        );
    }
}

#[test]
fn e2_fast_grid_bit_identical() {
    // The exact grid `e2_wan::table(fast=true)` sweeps.
    for &(rtt, loss) in &[(0.01, 0.0), (0.01, 1e-4), (0.1, 0.0), (0.1, 1e-4)] {
        let (frozen, live) = e2_schedule(rtt, loss, 64 << 20);
        assert_bits_eq(&format!("rtt={rtt} loss={loss}"), &frozen, &live);
    }
}

#[test]
fn e2_high_loss_corner_bit_identical() {
    // The full-grid corner that hammers `on_loss`: every halving, every
    // ssthresh update, every rng draw must line up.
    for &(rtt, loss) in &[(0.1, 1e-3), (0.01, 1e-3)] {
        let (frozen, live) = e2_schedule(rtt, loss, 16 << 20);
        assert_bits_eq(&format!("rtt={rtt} loss={loss}"), &frozen, &live);
    }
}

#[test]
fn capped_configs_bit_identical() {
    // Cap-pinned shapes, including a cap *below* init_cwnd (4 KiB ≈ 2.8
    // segments < 10): proves the cap-interaction fixes in `tcp.rs` are
    // trajectory-neutral — the frozen reference predates them.
    let shapes: Vec<(u64, RefParams, TcpParams)> = vec![
        (
            8 << 20,
            RefParams::tuned().with_window_cap(4096),
            TcpParams::tuned().with_window_cap(4096),
        ),
        (
            8 << 20,
            RefParams::tuned().with_window_cap(64 * 1024).with_rate_cap(2e6),
            TcpParams::tuned().with_window_cap(64 * 1024).with_rate_cap(2e6),
        ),
        (
            32 << 20,
            RefParams::tuned().with_rate_cap(50e6),
            TcpParams::tuned().with_rate_cap(50e6),
        ),
    ];
    for (i, (bytes, rp, lp)) in shapes.into_iter().enumerate() {
        for &(rtt, loss) in &[(0.02, 0.0), (0.08, 5e-4)] {
            let link = Bottleneck::new(1e9, rtt, loss);
            let seed = 0xCA9 ^ (i as u64) << 8 ^ (rtt * 1e6) as u64;
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let frozen = [
                reference::parallel_throughput_bps(&link, bytes, 1, rp, &mut r1),
                reference::parallel_throughput_bps(&link, bytes, 4, rp, &mut r1),
            ];
            let live = [
                parallel_throughput_bps(&link, bytes, 1, lp, &mut r2),
                parallel_throughput_bps(&link, bytes, 4, lp, &mut r2),
            ];
            assert_bits_eq(&format!("shape {i} rtt={rtt} loss={loss}"), &frozen, &live);
        }
    }
}

#[test]
fn param_pairs_agree_on_defaults() {
    // Sanity: frozen and live param constructors still describe the same
    // endpoint (mss/init/caps), so the battery compares like with like.
    for (tag, r, l) in param_pairs() {
        assert_eq!(r.mss, l.mss, "{tag}");
        assert_eq!(r.init_cwnd, l.init_cwnd, "{tag}");
        assert_eq!(r.window_cap_bytes, l.window_cap_bytes, "{tag}");
        assert_eq!(r.rate_cap_bps, l.rate_cap_bps, "{tag}");
    }
}
