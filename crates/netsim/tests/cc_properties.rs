//! Property tests for the pluggable congestion controllers: cap safety,
//! BBR pacing-gain bounds, and CUBIC's TCP-friendliness at low BDP.

use ig_netsim::cc::{BBR_CYCLE, BBR_STARTUP_GAIN};
use ig_netsim::tcp::FlowState;
use ig_netsim::{parallel_throughput_bps, BbrLite, Bottleneck, CcAlgo, CongestionControl, TcpParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn all_algos() -> [CcAlgo; 3] {
    [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Bbr]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("IG_PROPTEST_CASES").ok()
            .and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    /// Whatever sequence of deliveries and losses a flow sees, no
    /// controller may ever report a window above the channel cap, and the
    /// per-RTT offer may never exceed cap or rate x RTT.
    #[test]
    fn cwnd_never_exceeds_caps(
        cap_kib in 4u64..512,
        rate_mbps in 1.0f64..1000.0,
        rtt_ms in 1.0f64..150.0,
        seed in any::<u64>(),
        algo_idx in 0usize..3,
    ) {
        let algo = all_algos()[algo_idx];
        let params = TcpParams::tuned()
            .with_window_cap(cap_kib * 1024)
            .with_rate_cap(rate_mbps * 1e6)
            .with_cc(algo);
        let cap_segments = (cap_kib as f64 * 1024.0 / params.mss as f64).max(1.0);
        let rtt = rtt_ms / 1e3;
        let mut f = FlowState::new(u64::MAX / 2, params);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let offer = f.offered_bytes(rtt);
            prop_assert!(offer <= cap_kib as f64 * 1024.0 + 1.0,
                "{}: offer {offer} above window cap", algo.label());
            prop_assert!(offer <= rate_mbps * 1e6 / 8.0 * rtt + 1.0,
                "{}: offer {offer} above rate cap", algo.label());
            // Random delivery fraction and random loss.
            let delivered = offer * rng.gen::<f64>();
            f.on_rtt_delivered(delivered, rtt);
            if rng.gen_bool(0.2) {
                f.on_loss();
            }
            prop_assert!(f.cwnd() <= cap_segments + 1e-9,
                "{}: cwnd {} above cap {}", algo.label(), f.cwnd(), cap_segments);
        }
    }

    /// BBR's pacing rate never strays outside
    /// [btlbw x min cycle gain, btlbw x startup gain] of its own
    /// bandwidth estimate, and the estimate itself never exceeds what the
    /// synthetic bottleneck actually delivered.
    #[test]
    fn bbr_pacing_within_gain_bounds(
        bw_mbps in 5.0f64..5000.0,
        rtt_ms in 1.0f64..150.0,
        rounds in 20usize..200,
    ) {
        let rtt = rtt_ms / 1e3;
        let mss = 1460u32;
        let bottleneck_sps = bw_mbps * 1e6 / 8.0 / mss as f64;
        let mut b = BbrLite::new(10.0);
        // Floor includes the drain gain (1/startup): one round after
        // startup exits, BBR paces below the probe cycle's minimum.
        let min_gain = BBR_CYCLE
            .iter()
            .copied()
            .fold(1.0 / BBR_STARTUP_GAIN, f64::min);
        for _ in 0..rounds {
            let deliverable = (b.cwnd() / rtt).min(bottleneck_sps);
            b.on_rtt_delivered(deliverable * rtt, rtt, f64::INFINITY);
            let est = b.btlbw_sps();
            prop_assert!(est <= bottleneck_sps * 1.0001,
                "estimate {est} above true bottleneck {bottleneck_sps}");
            if let Some(pacing) = b.pacing_bps(mss) {
                let est_bps = est * mss as f64 * 8.0;
                prop_assert!(pacing >= est_bps * min_gain - 1e-6,
                    "pacing {pacing} below {min_gain} x btlbw {est_bps}");
                prop_assert!(pacing <= est_bps * BBR_STARTUP_GAIN + 1e-6,
                    "pacing {pacing} above {BBR_STARTUP_GAIN} x btlbw {est_bps}");
            }
        }
    }

    /// At low BDP under loss, CUBIC's TCP-friendly region keeps its
    /// goodput within the same ballpark as Reno's — it must not starve
    /// nor crush a competing-Reno-equivalent share.
    #[test]
    fn cubic_is_tcp_friendly_at_low_bdp(
        bw_mbps in 5.0f64..50.0,
        rtt_ms in 5.0f64..30.0,
        seed in any::<u64>(),
    ) {
        // BDP here is 3-190 KB (a handful of segments): deep in CUBIC's
        // TCP-friendly region.
        let link = Bottleneck::new(bw_mbps * 1e6, rtt_ms / 1e3, 1e-3);
        let bytes = 8u64 << 20;
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let reno = parallel_throughput_bps(&link, bytes, 1, TcpParams::tuned(), &mut r1);
        let cubic = parallel_throughput_bps(
            &link, bytes, 1, TcpParams::tuned().with_cc(CcAlgo::Cubic), &mut r2);
        let ratio = cubic / reno;
        prop_assert!((0.4..=2.5).contains(&ratio),
            "cubic/reno goodput ratio {ratio:.2} outside TCP-friendly band \
             (cubic {cubic:.2e}, reno {reno:.2e})");
    }

    /// Every controller still delivers every byte: the sim conservation
    /// property holds regardless of algorithm.
    #[test]
    fn all_algos_complete_transfers(
        algo_idx in 0usize..3,
        kib in 64u64..2048,
        seed in any::<u64>(),
    ) {
        let algo = all_algos()[algo_idx];
        let link = Bottleneck::new(1e8, 0.02, 1e-4);
        let mut rng = StdRng::seed_from_u64(seed);
        let bps = parallel_throughput_bps(
            &link, kib * 1024, 2, TcpParams::tuned().with_cc(algo), &mut rng);
        prop_assert!(bps.is_finite() && bps > 0.0, "{}: bogus throughput {bps}", algo.label());
        prop_assert!(bps <= 1e8 * 1.3, "{}: throughput {bps:.2e} beats capacity", algo.label());
    }
}
