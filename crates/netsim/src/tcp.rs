//! Per-flow TCP Reno state, advanced one RTT at a time.

/// Tunables for one TCP flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpParams {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in segments.
    pub init_cwnd: u32,
    /// Receive/congestion window cap in bytes (`None` = auto-tuned, i.e.
    /// effectively unlimited — the GridFTP "tuned buffers" case).
    pub window_cap_bytes: Option<u64>,
    /// Application-level send rate cap in bits/s (`None` = unlimited).
    /// Models a CPU-bound cipher such as SCP's.
    pub rate_cap_bps: Option<f64>,
}

impl TcpParams {
    /// Well-tuned endpoint: big buffers, no cipher ceiling.
    pub fn tuned() -> Self {
        TcpParams { mss: 1460, init_cwnd: 10, window_cap_bytes: None, rate_cap_bps: None }
    }

    /// Classic untuned SSH/SCP endpoint: a fixed 64 KiB channel window.
    pub fn scp_like() -> Self {
        TcpParams {
            mss: 1460,
            init_cwnd: 10,
            window_cap_bytes: Some(64 * 1024),
            // OpenSSH-era single-core cipher throughput ceiling.
            rate_cap_bps: Some(400e6),
        }
    }

    /// Builder: set a window cap in bytes.
    pub fn with_window_cap(mut self, bytes: u64) -> Self {
        self.window_cap_bytes = Some(bytes);
        self
    }

    /// Builder: set a rate cap in bits per second.
    pub fn with_rate_cap(mut self, bps: f64) -> Self {
        self.rate_cap_bps = Some(bps);
        self
    }
}

impl Default for TcpParams {
    fn default() -> Self {
        Self::tuned()
    }
}

/// Reno congestion-control phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exponential window growth.
    SlowStart,
    /// Additive increase.
    CongestionAvoidance,
}

/// One flow's live state.
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Parameters.
    pub params: TcpParams,
    /// Congestion window in segments.
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
    /// Current phase.
    pub phase: Phase,
    /// Bytes still to deliver.
    pub remaining: u64,
    /// Count of loss events experienced.
    pub loss_events: u64,
    /// RTTs elapsed while this flow was active.
    pub rtts: u64,
}

impl FlowState {
    /// Fresh flow with `bytes` to send.
    pub fn new(bytes: u64, params: TcpParams) -> Self {
        FlowState {
            params,
            cwnd: params.init_cwnd as f64,
            ssthresh: f64::INFINITY,
            phase: Phase::SlowStart,
            remaining: bytes,
            loss_events: 0,
            rtts: 0,
        }
    }

    /// Finished?
    pub fn done(&self) -> bool {
        self.remaining == 0
    }

    /// Window cap in segments for this flow.
    fn cap_segments(&self) -> f64 {
        self.params
            .window_cap_bytes
            .map(|b| (b as f64 / self.params.mss as f64).max(1.0))
            .unwrap_or(f64::INFINITY)
    }

    /// How many bytes this flow *wants* to send this RTT.
    pub fn offered_bytes(&self, rtt_s: f64) -> f64 {
        if self.done() {
            return 0.0;
        }
        let window = self.cwnd.min(self.cap_segments()) * self.params.mss as f64;
        let rate_limited = self
            .params
            .rate_cap_bps
            .map(|bps| bps / 8.0 * rtt_s)
            .unwrap_or(f64::INFINITY);
        window.min(rate_limited).min(self.remaining as f64).max(0.0)
    }

    /// Account `delivered` bytes and grow the window (one RTT passed).
    pub fn on_rtt_delivered(&mut self, delivered: f64) {
        let delivered = delivered.min(self.remaining as f64);
        self.remaining -= delivered.round() as u64;
        self.rtts += 1;
        match self.phase {
            Phase::SlowStart => {
                self.cwnd *= 2.0;
                if self.cwnd >= self.ssthresh {
                    self.cwnd = self.ssthresh;
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                self.cwnd += 1.0;
            }
        }
        let cap = self.cap_segments();
        if self.cwnd > cap {
            self.cwnd = cap;
        }
    }

    /// A loss event: Reno multiplicative decrease.
    pub fn on_loss(&mut self) {
        self.loss_events += 1;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        self.phase = Phase::CongestionAvoidance;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles() {
        let mut f = FlowState::new(u64::MAX / 2, TcpParams::tuned());
        assert_eq!(f.phase, Phase::SlowStart);
        let w0 = f.cwnd;
        f.on_rtt_delivered(0.0);
        assert_eq!(f.cwnd, w0 * 2.0);
        f.on_rtt_delivered(0.0);
        assert_eq!(f.cwnd, w0 * 4.0);
    }

    #[test]
    fn loss_halves_and_switches_to_ca() {
        let mut f = FlowState::new(u64::MAX / 2, TcpParams::tuned());
        for _ in 0..6 {
            f.on_rtt_delivered(0.0);
        }
        let before = f.cwnd;
        f.on_loss();
        assert_eq!(f.phase, Phase::CongestionAvoidance);
        assert!((f.cwnd - before / 2.0).abs() < 1e-9);
        assert_eq!(f.loss_events, 1);
        // CA grows additively.
        let w = f.cwnd;
        f.on_rtt_delivered(0.0);
        assert_eq!(f.cwnd, w + 1.0);
    }

    #[test]
    fn window_cap_respected() {
        let params = TcpParams::tuned().with_window_cap(14600); // 10 segments
        let mut f = FlowState::new(u64::MAX / 2, params);
        for _ in 0..10 {
            f.on_rtt_delivered(0.0);
        }
        assert!(f.cwnd <= 10.0 + 1e-9);
        assert!(f.offered_bytes(0.1) <= 14600.0);
    }

    #[test]
    fn rate_cap_limits_offer() {
        let params = TcpParams::tuned().with_rate_cap(8e6); // 1 MB/s
        let mut f = FlowState::new(u64::MAX / 2, params);
        for _ in 0..20 {
            f.on_rtt_delivered(0.0);
        }
        // Per 100 ms RTT, at most 100 KB.
        assert!(f.offered_bytes(0.1) <= 100_000.0 + 1.0);
    }

    #[test]
    fn offer_bounded_by_remaining() {
        let f = FlowState::new(500, TcpParams::tuned());
        assert!(f.offered_bytes(0.1) <= 500.0);
        let mut f2 = FlowState::new(500, TcpParams::tuned());
        f2.on_rtt_delivered(500.0);
        assert!(f2.done());
        assert_eq!(f2.offered_bytes(0.1), 0.0);
    }

    #[test]
    fn delivery_never_underflows() {
        let mut f = FlowState::new(100, TcpParams::tuned());
        f.on_rtt_delivered(1e9); // more than remaining
        assert!(f.done());
        assert_eq!(f.remaining, 0);
    }

    #[test]
    fn scp_like_has_both_ceilings() {
        let p = TcpParams::scp_like();
        assert_eq!(p.window_cap_bytes, Some(65536));
        assert!(p.rate_cap_bps.is_some());
    }
}
