//! Per-flow sender state, advanced one RTT at a time.
//!
//! The congestion controller itself is pluggable ([`crate::cc`]);
//! `FlowState` owns the bookkeeping that is controller-independent —
//! remaining payload, caps, loss/RTT counters — and delegates window
//! dynamics to the boxed [`CongestionControl`]. With the default
//! [`CcAlgo::Reno`] the delivered-byte trajectories are bit-identical to
//! the historical inline implementation (`tests/golden_reno.rs`).

use crate::cc::{CcAlgo, CongestionControl};

/// Tunables for one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpParams {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in segments.
    pub init_cwnd: u32,
    /// Receive/congestion window cap in bytes (`None` = auto-tuned, i.e.
    /// effectively unlimited — the GridFTP "tuned buffers" case).
    pub window_cap_bytes: Option<u64>,
    /// Application-level send rate cap in bits/s (`None` = unlimited).
    /// Models a CPU-bound sender: SCP's cipher, or the per-datagram
    /// syscall ceiling of a userspace UDP stack.
    pub rate_cap_bps: Option<f64>,
    /// Congestion-control algorithm (default Reno).
    pub cc: CcAlgo,
}

impl TcpParams {
    /// Well-tuned endpoint: big buffers, no cipher ceiling.
    pub fn tuned() -> Self {
        TcpParams {
            mss: 1460,
            init_cwnd: 10,
            window_cap_bytes: None,
            rate_cap_bps: None,
            cc: CcAlgo::Reno,
        }
    }

    /// Classic untuned SSH/SCP endpoint: a fixed 64 KiB channel window.
    pub fn scp_like() -> Self {
        TcpParams {
            mss: 1460,
            init_cwnd: 10,
            window_cap_bytes: Some(64 * 1024),
            // OpenSSH-era single-core cipher throughput ceiling.
            rate_cap_bps: Some(400e6),
            cc: CcAlgo::Reno,
        }
    }

    /// Builder: set a window cap in bytes.
    pub fn with_window_cap(mut self, bytes: u64) -> Self {
        self.window_cap_bytes = Some(bytes);
        self
    }

    /// Builder: set a rate cap in bits per second.
    pub fn with_rate_cap(mut self, bps: f64) -> Self {
        self.rate_cap_bps = Some(bps);
        self
    }

    /// Builder: select the congestion-control algorithm.
    pub fn with_cc(mut self, cc: CcAlgo) -> Self {
        self.cc = cc;
        self
    }
}

impl Default for TcpParams {
    fn default() -> Self {
        Self::tuned()
    }
}

/// One flow's live state.
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Parameters.
    pub params: TcpParams,
    /// The congestion controller driving the window.
    pub cc: Box<dyn CongestionControl>,
    /// Bytes still to deliver.
    pub remaining: u64,
    /// Count of loss events experienced.
    pub loss_events: u64,
    /// RTTs elapsed while this flow was active.
    pub rtts: u64,
}

impl FlowState {
    /// Fresh flow with `bytes` to send. The initial window is clamped to
    /// the channel cap: a 4 KiB receive window cannot admit a 10-segment
    /// initial burst, so `cwnd` must never report one.
    pub fn new(bytes: u64, params: TcpParams) -> Self {
        let cap = cap_segments(&params);
        let init = (params.init_cwnd as f64).min(cap);
        FlowState {
            params,
            cc: params.cc.build(init),
            remaining: bytes,
            loss_events: 0,
            rtts: 0,
        }
    }

    /// Finished?
    pub fn done(&self) -> bool {
        self.remaining == 0
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Window cap in segments for this flow.
    fn cap_segments(&self) -> f64 {
        cap_segments(&self.params)
    }

    /// How many bytes this flow *wants* to send this RTT.
    pub fn offered_bytes(&self, rtt_s: f64) -> f64 {
        if self.done() {
            return 0.0;
        }
        let window = self.cc.cwnd().min(self.cap_segments()) * self.params.mss as f64;
        let rate_limited = self
            .params
            .rate_cap_bps
            .map(|bps| bps / 8.0 * rtt_s)
            .unwrap_or(f64::INFINITY);
        let offer = window.min(rate_limited).min(self.remaining as f64).max(0.0);
        // A pacing controller (BBR) additionally bounds the burst by
        // gain x btlbw x RTT; window-limited controllers return None and
        // leave the historical arithmetic untouched.
        match self.cc.pacing_bps(self.params.mss) {
            Some(bps) => offer.min((bps / 8.0 * rtt_s).max(0.0)),
            None => offer,
        }
    }

    /// Account `delivered` bytes and grow the window (one RTT passed).
    pub fn on_rtt_delivered(&mut self, delivered: f64, rtt_s: f64) {
        let delivered = delivered.min(self.remaining as f64);
        self.remaining -= delivered.round() as u64;
        self.rtts += 1;
        let cap = self.cap_segments();
        let delivered_segments = delivered / self.params.mss as f64;
        self.cc.on_rtt_delivered(delivered_segments, rtt_s, cap);
    }

    /// A loss event: the controller decides what (if anything) to do.
    pub fn on_loss(&mut self) {
        self.loss_events += 1;
        self.cc.on_loss();
    }
}

fn cap_segments(params: &TcpParams) -> f64 {
    params
        .window_cap_bytes
        .map(|b| (b as f64 / params.mss as f64).max(1.0))
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{Phase, Reno};

    const RTT: f64 = 0.01;

    #[test]
    fn slow_start_doubles() {
        let mut f = FlowState::new(u64::MAX / 2, TcpParams::tuned());
        let w0 = f.cwnd();
        f.on_rtt_delivered(0.0, RTT);
        assert_eq!(f.cwnd(), w0 * 2.0);
        f.on_rtt_delivered(0.0, RTT);
        assert_eq!(f.cwnd(), w0 * 4.0);
    }

    #[test]
    fn loss_halves_and_switches_to_ca() {
        let mut f = FlowState::new(u64::MAX / 2, TcpParams::tuned());
        for _ in 0..6 {
            f.on_rtt_delivered(0.0, RTT);
        }
        let before = f.cwnd();
        f.on_loss();
        assert!((f.cwnd() - before / 2.0).abs() < 1e-9);
        assert_eq!(f.loss_events, 1);
        // CA grows additively.
        let w = f.cwnd();
        f.on_rtt_delivered(0.0, RTT);
        assert_eq!(f.cwnd(), w + 1.0);
    }

    #[test]
    fn window_cap_respected() {
        let params = TcpParams::tuned().with_window_cap(14600); // 10 segments
        let mut f = FlowState::new(u64::MAX / 2, params);
        for _ in 0..10 {
            f.on_rtt_delivered(0.0, RTT);
        }
        assert!(f.cwnd() <= 10.0 + 1e-9);
        assert!(f.offered_bytes(0.1) <= 14600.0);
    }

    #[test]
    fn rate_cap_limits_offer() {
        let params = TcpParams::tuned().with_rate_cap(8e6); // 1 MB/s
        let mut f = FlowState::new(u64::MAX / 2, params);
        for _ in 0..20 {
            f.on_rtt_delivered(0.0, RTT);
        }
        // Per 100 ms RTT, at most 100 KB.
        assert!(f.offered_bytes(0.1) <= 100_000.0 + 1.0);
    }

    #[test]
    fn offer_bounded_by_remaining() {
        let f = FlowState::new(500, TcpParams::tuned());
        assert!(f.offered_bytes(0.1) <= 500.0);
        let mut f2 = FlowState::new(500, TcpParams::tuned());
        f2.on_rtt_delivered(500.0, RTT);
        assert!(f2.done());
        assert_eq!(f2.offered_bytes(0.1), 0.0);
    }

    #[test]
    fn delivery_never_underflows() {
        let mut f = FlowState::new(100, TcpParams::tuned());
        f.on_rtt_delivered(1e9, RTT); // more than remaining
        assert!(f.done());
        assert_eq!(f.remaining, 0);
    }

    #[test]
    fn scp_like_has_both_ceilings() {
        let p = TcpParams::scp_like();
        assert_eq!(p.window_cap_bytes, Some(65536));
        assert!(p.rate_cap_bps.is_some());
        assert_eq!(p.cc, CcAlgo::Reno);
    }

    // ----- window_cap x rate_cap interaction (satellite battery) -----

    /// Initial cwnd is clamped to the channel cap: a 4 KiB window (~2.8
    /// segments) cannot admit the default 10-segment initial burst.
    #[test]
    fn init_cwnd_clamped_to_window_cap() {
        let params = TcpParams::tuned().with_window_cap(4096);
        let f = FlowState::new(u64::MAX / 2, params);
        let cap = 4096.0 / 1460.0;
        assert!(
            (f.cwnd() - cap).abs() < 1e-12,
            "initial cwnd {} must equal cap {}",
            f.cwnd(),
            cap
        );
        // The offer was already correct pre-fix (offered_bytes re-clamps);
        // the fix makes the *reported window* honest too.
        assert!(f.offered_bytes(0.1) <= 4096.0);
    }

    /// The window cap applies after slow-start doubling: a doubled window
    /// may never stick above the cap, and hitting the cap ends slow start
    /// so a later loss recovers from cap/2 rather than a stale INFINITY
    /// ssthresh.
    #[test]
    fn cap_applies_after_slow_start_doubling() {
        let params = TcpParams::tuned().with_window_cap(29200); // 20 segments
        let mut f = FlowState::new(u64::MAX / 2, params);
        f.on_rtt_delivered(0.0, RTT); // 10 -> 20 (exactly cap)
        assert_eq!(f.cwnd(), 20.0);
        f.on_rtt_delivered(0.0, RTT); // 40 -> clamped to 20, exits slow start
        assert_eq!(f.cwnd(), 20.0);
        f.on_loss();
        assert_eq!(f.cwnd(), 10.0, "recovery must start from cap/2");
        f.on_rtt_delivered(0.0, RTT);
        assert_eq!(f.cwnd(), 11.0, "post-loss growth must be additive (CA)");
    }

    /// The cap also applies after loss recovery: with a cap at 2 segments
    /// Reno's `max(2.0)` recovery floor equals the cap; growth above it
    /// must clamp straight back.
    #[test]
    fn cap_applies_after_loss_recovery() {
        let params = TcpParams::tuned().with_window_cap(2920); // 2 segments
        let mut f = FlowState::new(u64::MAX / 2, params);
        f.on_loss();
        assert_eq!(f.cwnd(), 2.0);
        for _ in 0..5 {
            f.on_rtt_delivered(0.0, RTT);
            assert!(f.cwnd() <= 2.0 + 1e-12, "cwnd {} above cap", f.cwnd());
        }
    }

    /// Both caps at once: whichever is lower governs, at every RTT and
    /// for every phase. The rate cap scales with RTT, the window cap does
    /// not — so the binding constraint flips with the RTT.
    #[test]
    fn tighter_of_window_and_rate_cap_governs() {
        let params = TcpParams::tuned()
            .with_window_cap(64 * 1024) // 64 KiB window
            .with_rate_cap(8e6); // 1 MB/s
        let mut f = FlowState::new(u64::MAX / 2, params);
        for _ in 0..30 {
            f.on_rtt_delivered(0.0, RTT);
        }
        // Short RTT: the rate cap binds (1 MB/s x 10 ms = 10 KB < 64 KiB).
        let offer_short = f.offered_bytes(0.01);
        assert!(offer_short <= 10_000.0 + 1.0, "got {offer_short}");
        // Long RTT: the window cap binds (1 MB/s x 1 s = 1 MB > 64 KiB).
        let offer_long = f.offered_bytes(1.0);
        assert!(offer_long <= 65536.0 + 1.0, "got {offer_long}");
        assert!(offer_long >= 60_000.0, "window cap should be reachable, got {offer_long}");
    }

    /// Loss recovery under a rate cap must not consult the rate cap at
    /// all: ssthresh derives from cwnd (segments), never from the rate
    /// ceiling, which lives only in `offered_bytes`.
    #[test]
    fn rate_cap_does_not_distort_loss_recovery() {
        let capped = TcpParams::tuned().with_rate_cap(1e6);
        let free = TcpParams::tuned();
        let mut a = FlowState::new(u64::MAX / 2, capped);
        let mut b = FlowState::new(u64::MAX / 2, free);
        for _ in 0..8 {
            a.on_rtt_delivered(0.0, RTT);
            b.on_rtt_delivered(0.0, RTT);
        }
        a.on_loss();
        b.on_loss();
        assert_eq!(a.cwnd(), b.cwnd(), "rate cap leaked into window dynamics");
    }

    /// Direct Reno introspection still works for tests that need phase
    /// and ssthresh visibility.
    #[test]
    fn reno_struct_remains_introspectable() {
        let mut r = Reno::new(10.0);
        assert_eq!(r.phase, Phase::SlowStart);
        assert_eq!(r.ssthresh, f64::INFINITY);
        r.on_loss();
        assert_eq!(r.phase, Phase::CongestionAvoidance);
        assert_eq!(r.ssthresh, 5.0);
    }
}
