//! Pluggable congestion control.
//!
//! The fluid simulator (`sim.rs`) and the reliable-UDP data driver
//! (`ig-xio`) both drive a sender window through this trait. The
//! contract is RTT-granular, mirroring the simulator's tick: the caller
//! reports one round-trip's worth of delivery at a time, and the
//! controller answers with a window (in segments) and an optional pacing
//! rate. Real-time callers (the UDP driver) synthesize the same signal
//! from ack arrivals: accumulate acked bytes, and once per measured RTT
//! call [`CongestionControl::on_rtt_delivered`].
//!
//! `Reno` is the pre-existing model extracted verbatim — `tcp.rs` keeps
//! producing bit-identical trajectories through it (pinned by
//! `tests/golden_reno.rs`). `Cubic` and `BbrLite` are new.

/// Reno congestion-control phases (also used by CUBIC's slow start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exponential window growth.
    SlowStart,
    /// Additive (Reno) / cubic-polynomial (CUBIC) increase.
    CongestionAvoidance,
}

/// Which congestion controller a flow runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcAlgo {
    /// Classic AIMD: the paper-era WAN workhorse, collapses as √loss.
    #[default]
    Reno,
    /// CUBIC: loss-based but RTT-fair, recovers along W(t)=C(t−K)³+Wmax.
    Cubic,
    /// BBR-style model-based control: bandwidth/RTT probes, pacing-gain
    /// cycling, loss-agnostic. What the reliable-UDP driver runs.
    Bbr,
}

impl CcAlgo {
    /// Instantiate the controller with `init_cwnd` segments.
    pub fn build(self, init_cwnd: f64) -> Box<dyn CongestionControl> {
        match self {
            CcAlgo::Reno => Box::new(Reno::new(init_cwnd)),
            CcAlgo::Cubic => Box::new(Cubic::new(init_cwnd)),
            CcAlgo::Bbr => Box::new(BbrLite::new(init_cwnd)),
        }
    }

    /// Wire/report label.
    pub fn label(self) -> &'static str {
        match self {
            CcAlgo::Reno => "reno",
            CcAlgo::Cubic => "cubic",
            CcAlgo::Bbr => "bbr",
        }
    }

    /// Parse a wire/report label (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "reno" => Some(CcAlgo::Reno),
            "cubic" => Some(CcAlgo::Cubic),
            "bbr" => Some(CcAlgo::Bbr),
            _ => None,
        }
    }
}

/// One sender's congestion controller, advanced one RTT at a time.
///
/// `cap_segments` is the receive/channel window cap in segments
/// (`f64::INFINITY` when untuned-buffer limits don't apply). It is passed
/// into the growth step — not applied outside — because the clamp must
/// feed back into the controller's own state exactly as the historical
/// inline code did.
pub trait CongestionControl: Send {
    /// Current congestion window in segments.
    fn cwnd(&self) -> f64;

    /// One RTT elapsed; `delivered_segments` were acked in it.
    fn on_rtt_delivered(&mut self, delivered_segments: f64, rtt_s: f64, cap_segments: f64);

    /// A loss event (drop-tail or path loss) was detected.
    fn on_loss(&mut self);

    /// Pacing rate in bits/s if this controller paces (BBR), else `None`
    /// (pure window-limited senders).
    fn pacing_bps(&self, mss: u32) -> Option<f64>;

    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Clone into a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn CongestionControl>;
}

impl Clone for Box<dyn CongestionControl> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl std::fmt::Debug for dyn CongestionControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CongestionControl({}, cwnd={})", self.name(), self.cwnd())
    }
}

// ---------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------

/// Classic Reno AIMD, extracted verbatim from the historical
/// `FlowState`: slow-start doubling, +1 segment per RTT in avoidance,
/// halving on loss. The f64 operation order here is a compatibility
/// contract — `tests/golden_reno.rs` pins it.
#[derive(Debug, Clone)]
pub struct Reno {
    /// Congestion window in segments.
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
    /// Current phase.
    pub phase: Phase,
}

impl Reno {
    /// Fresh controller with `init_cwnd` segments.
    pub fn new(init_cwnd: f64) -> Self {
        Reno { cwnd: init_cwnd, ssthresh: f64::INFINITY, phase: Phase::SlowStart }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn on_rtt_delivered(&mut self, _delivered_segments: f64, _rtt_s: f64, cap_segments: f64) {
        match self.phase {
            Phase::SlowStart => {
                self.cwnd *= 2.0;
                if self.cwnd >= self.ssthresh {
                    self.cwnd = self.ssthresh;
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                self.cwnd += 1.0;
            }
        }
        if self.cwnd > cap_segments {
            self.cwnd = cap_segments;
            // A window pinned at the channel cap has no headroom left to
            // probe: finish slow start so a later loss recovers with
            // ssthresh = cap/2, not a stale INFINITY. (Trajectory-neutral:
            // cwnd stays at cap either way; golden_reno.rs proves it.)
            if self.phase == Phase::SlowStart {
                self.ssthresh = cap_segments;
                self.phase = Phase::CongestionAvoidance;
            }
        }
    }

    fn on_loss(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        self.phase = Phase::CongestionAvoidance;
    }

    fn pacing_bps(&self, _mss: u32) -> Option<f64> {
        None
    }

    fn name(&self) -> &'static str {
        "reno"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// CUBIC
// ---------------------------------------------------------------------

/// CUBIC's multiplicative-decrease factor β.
pub const CUBIC_BETA: f64 = 0.7;
/// CUBIC's scaling constant C (segments/s³).
pub const CUBIC_C: f64 = 0.4;

/// RFC 8312-shaped CUBIC at RTT granularity: after a loss at window
/// `w_max`, the window recovers along `W(t) = C(t−K)³ + w_max` where
/// `K = ∛(w_max·(1−β)/C)`, with the TCP-friendly estimate
/// `W_est = w_max·β + α·(t/RTT)` as a floor so low-BDP behavior tracks
/// Reno (α = 3(1−β)/(1+β)).
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    /// Window just before the last reduction.
    w_max: f64,
    /// Time of the cubic inflection point, seconds after the last loss.
    k: f64,
    /// Seconds elapsed since the last loss.
    t_s: f64,
}

impl Cubic {
    /// Fresh controller with `init_cwnd` segments.
    pub fn new(init_cwnd: f64) -> Self {
        Cubic {
            cwnd: init_cwnd,
            ssthresh: f64::INFINITY,
            phase: Phase::SlowStart,
            w_max: 0.0,
            k: 0.0,
            t_s: 0.0,
        }
    }

    fn alpha() -> f64 {
        3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn on_rtt_delivered(&mut self, _delivered_segments: f64, rtt_s: f64, cap_segments: f64) {
        match self.phase {
            Phase::SlowStart => {
                self.cwnd *= 2.0;
                if self.cwnd >= self.ssthresh {
                    self.cwnd = self.ssthresh;
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                self.t_s += rtt_s.max(0.0);
                let dt = self.t_s - self.k;
                let target = CUBIC_C * dt * dt * dt + self.w_max;
                let rounds = if rtt_s > 0.0 { self.t_s / rtt_s } else { 0.0 };
                let w_est = self.w_max * CUBIC_BETA + Self::alpha() * rounds;
                // Grow toward the cubic curve, floored by the Reno-rate
                // estimate, ceilinged at 1.5x/RTT so a long quiet period
                // far past K cannot teleport the window.
                let next = target.max(w_est).max(2.0);
                self.cwnd = next.min(self.cwnd * 1.5).max(self.cwnd);
            }
        }
        if self.cwnd > cap_segments {
            self.cwnd = cap_segments;
            if self.phase == Phase::SlowStart {
                self.ssthresh = cap_segments;
                self.phase = Phase::CongestionAvoidance;
            }
        }
    }

    fn on_loss(&mut self) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        self.t_s = 0.0;
        self.phase = Phase::CongestionAvoidance;
    }

    fn pacing_bps(&self, _mss: u32) -> Option<f64> {
        None
    }

    fn name(&self) -> &'static str {
        "cubic"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// BBR
// ---------------------------------------------------------------------

/// BBR's startup/drain pacing gain (2/ln 2).
pub const BBR_STARTUP_GAIN: f64 = 2.885;
/// cwnd gain over the estimated BDP outside startup.
pub const BBR_CWND_GAIN: f64 = 2.0;
/// ProbeBW pacing-gain cycle: one probe up, one drain, six cruise.
pub const BBR_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bottleneck-bandwidth max-filter window, in rounds (~10 RTTs).
pub const BBR_BW_FILTER_ROUNDS: usize = 10;
/// Minimum window in segments.
pub const BBR_MIN_CWND: f64 = 4.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrMode {
    Startup,
    Drain,
    ProbeBw,
}

/// BBR-flavored model-based controller at RTT granularity: estimates the
/// bottleneck bandwidth with a windowed max filter over per-round
/// delivery-rate samples and the propagation delay with a running min,
/// then paces at `gain × btlbw` while capping inflight at
/// `cwnd_gain × BDP`. Deliberately loss-agnostic ([`Self::on_loss`] is a
/// no-op): random path loss does not halve the window, which is exactly
/// why a single BBR-paced flow beats N Reno streams once loss × BDP is
/// high enough.
#[derive(Debug, Clone)]
pub struct BbrLite {
    cwnd: f64,
    /// Delivery-rate samples, segments/s, circular.
    samples: [f64; BBR_BW_FILTER_ROUNDS],
    sample_idx: usize,
    samples_filled: usize,
    /// Max-filter output, segments/s.
    btlbw_sps: f64,
    /// Running min RTT, seconds.
    rtprop_s: f64,
    mode: BbrMode,
    cycle_idx: usize,
    /// Startup full-pipe detection: last btlbw high-water mark and the
    /// number of consecutive rounds without 25% growth.
    full_bw_sps: f64,
    full_bw_rounds: u32,
}

impl BbrLite {
    /// Fresh controller with `init_cwnd` segments.
    pub fn new(init_cwnd: f64) -> Self {
        BbrLite {
            cwnd: init_cwnd.max(BBR_MIN_CWND),
            samples: [0.0; BBR_BW_FILTER_ROUNDS],
            sample_idx: 0,
            samples_filled: 0,
            btlbw_sps: 0.0,
            rtprop_s: f64::INFINITY,
            mode: BbrMode::Startup,
            cycle_idx: 0,
            full_bw_sps: 0.0,
            full_bw_rounds: 0,
        }
    }

    /// Estimated bottleneck bandwidth in segments/s (0 until sampled).
    pub fn btlbw_sps(&self) -> f64 {
        self.btlbw_sps
    }

    /// Current pacing gain for the mode/cycle position.
    pub fn pacing_gain(&self) -> f64 {
        match self.mode {
            BbrMode::Startup => BBR_STARTUP_GAIN,
            BbrMode::Drain => 1.0 / BBR_STARTUP_GAIN,
            BbrMode::ProbeBw => BBR_CYCLE[self.cycle_idx],
        }
    }

    /// Estimated BDP in segments (0 until both estimators have samples).
    fn bdp_segments(&self) -> f64 {
        if self.rtprop_s.is_finite() {
            self.btlbw_sps * self.rtprop_s
        } else {
            0.0
        }
    }
}

impl CongestionControl for BbrLite {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn on_rtt_delivered(&mut self, delivered_segments: f64, rtt_s: f64, cap_segments: f64) {
        if rtt_s > 0.0 {
            self.rtprop_s = self.rtprop_s.min(rtt_s);
            if delivered_segments > 0.0 {
                self.samples[self.sample_idx] = delivered_segments / rtt_s;
                self.sample_idx = (self.sample_idx + 1) % BBR_BW_FILTER_ROUNDS;
                self.samples_filled = (self.samples_filled + 1).min(BBR_BW_FILTER_ROUNDS);
                self.btlbw_sps = self.samples[..self.samples_filled]
                    .iter()
                    .copied()
                    .fold(0.0, f64::max);
            }
        }
        match self.mode {
            BbrMode::Startup => {
                // Exponential growth while filling the pipe; leave once the
                // bandwidth estimate stops growing 25% for three rounds.
                if self.btlbw_sps > self.full_bw_sps * 1.25 || self.full_bw_sps == 0.0 {
                    self.full_bw_sps = self.btlbw_sps;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                }
                self.cwnd *= 2.0;
                if self.full_bw_rounds >= 3 && self.samples_filled >= 3 {
                    self.mode = BbrMode::Drain;
                }
            }
            BbrMode::Drain => {
                // One round paced below the estimate to empty the startup
                // queue, then settle into the probe cycle.
                self.cwnd = (BBR_CWND_GAIN * self.bdp_segments()).max(BBR_MIN_CWND);
                self.mode = BbrMode::ProbeBw;
                self.cycle_idx = 0;
            }
            BbrMode::ProbeBw => {
                self.cwnd = (BBR_CWND_GAIN * self.bdp_segments()).max(BBR_MIN_CWND);
                self.cycle_idx = (self.cycle_idx + 1) % BBR_CYCLE.len();
            }
        }
        if self.cwnd > cap_segments {
            self.cwnd = cap_segments;
        }
    }

    fn on_loss(&mut self) {
        // Model-based, not loss-based: path loss is noise, not a signal.
    }

    fn pacing_bps(&self, mss: u32) -> Option<f64> {
        if self.btlbw_sps > 0.0 {
            Some(self.pacing_gain() * self.btlbw_sps * mss as f64 * 8.0)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "bbr"
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_labels_round_trip() {
        for algo in [CcAlgo::Reno, CcAlgo::Cubic, CcAlgo::Bbr] {
            assert_eq!(CcAlgo::parse(algo.label()), Some(algo));
            assert_eq!(CcAlgo::parse(&algo.label().to_uppercase()), Some(algo));
        }
        assert_eq!(CcAlgo::parse("vegas"), None);
        assert_eq!(CcAlgo::default(), CcAlgo::Reno);
    }

    #[test]
    fn reno_doubles_then_halves() {
        let mut r = Reno::new(10.0);
        r.on_rtt_delivered(10.0, 0.01, f64::INFINITY);
        assert_eq!(r.cwnd, 20.0);
        r.on_loss();
        assert_eq!(r.cwnd, 10.0);
        assert_eq!(r.phase, Phase::CongestionAvoidance);
        r.on_rtt_delivered(10.0, 0.01, f64::INFINITY);
        assert_eq!(r.cwnd, 11.0);
    }

    #[test]
    fn reno_pinned_at_cap_exits_slow_start() {
        let mut r = Reno::new(10.0);
        r.on_rtt_delivered(10.0, 0.01, 16.0);
        assert_eq!(r.cwnd, 16.0);
        assert_eq!(r.phase, Phase::CongestionAvoidance);
        assert_eq!(r.ssthresh, 16.0);
        // A later loss recovers from cap/2, not from a stale INFINITY.
        r.on_loss();
        assert_eq!(r.cwnd, 8.0);
    }

    #[test]
    fn cubic_recovers_along_cubic_curve() {
        let mut c = Cubic::new(10.0);
        // Grow to a sizable window, then lose. K = ∛(640·0.3/0.4) ≈ 7.8 s,
        // so 200 rounds at 100 ms cross the inflection point comfortably.
        for _ in 0..6 {
            c.on_rtt_delivered(0.0, 0.1, f64::INFINITY);
        }
        let before = c.cwnd();
        c.on_loss();
        let floor = c.cwnd();
        assert!((floor - before * CUBIC_BETA).abs() < 1e-9);
        // The window must climb back toward w_max without overshooting
        // the 1.5x/RTT growth limit.
        let mut prev = floor;
        for _ in 0..200 {
            c.on_rtt_delivered(prev, 0.1, f64::INFINITY);
            assert!(c.cwnd() >= prev - 1e-12, "cubic shrank without loss");
            assert!(c.cwnd() <= prev * 1.5 + 1e-9, "cubic grew >1.5x in one RTT");
            prev = c.cwnd();
        }
        assert!(prev > before, "cubic never recovered past w_max: {prev} vs {before}");
    }

    #[test]
    fn bbr_converges_to_bottleneck_estimate() {
        let mut b = BbrLite::new(10.0);
        let rtt = 0.02;
        let bottleneck_sps = 5000.0; // segments/s the "link" can carry
        for _ in 0..100 {
            let deliverable = (b.cwnd() / rtt).min(bottleneck_sps);
            b.on_rtt_delivered(deliverable * rtt, rtt, f64::INFINITY);
        }
        let est = b.btlbw_sps();
        assert!(
            (est - bottleneck_sps).abs() / bottleneck_sps < 0.05,
            "btlbw estimate {est} far from {bottleneck_sps}"
        );
        // Steady state: probe_bw, cwnd ≈ 2 x BDP.
        let bdp = bottleneck_sps * rtt;
        assert!(b.cwnd() <= BBR_CWND_GAIN * bdp * 1.3 + BBR_MIN_CWND);
        assert!(b.cwnd() >= bdp * 0.5);
    }

    #[test]
    fn bbr_ignores_loss() {
        let mut b = BbrLite::new(10.0);
        let rtt = 0.02;
        for _ in 0..50 {
            let deliverable = (b.cwnd() / rtt).min(4000.0);
            b.on_rtt_delivered(deliverable * rtt, rtt, f64::INFINITY);
        }
        let before = b.cwnd();
        b.on_loss();
        assert_eq!(b.cwnd(), before, "BBR must not react to a loss event");
    }

    #[test]
    fn bbr_pacing_cycles_through_gains() {
        let mut b = BbrLite::new(10.0);
        let rtt = 0.02;
        let mut gains = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let deliverable = (b.cwnd() / rtt).min(4000.0);
            b.on_rtt_delivered(deliverable * rtt, rtt, f64::INFINITY);
            let g = b.pacing_gain();
            gains.insert((g * 1000.0) as i64);
        }
        // Startup, probe-up, drain-down and cruise must all have occurred.
        assert!(gains.contains(&2885), "startup gain never seen: {gains:?}");
        assert!(gains.contains(&1250), "probe gain never seen: {gains:?}");
        assert!(gains.contains(&750), "drain gain never seen: {gains:?}");
        assert!(gains.contains(&1000), "cruise gain never seen: {gains:?}");
    }

    #[test]
    fn clone_box_preserves_state() {
        let mut c = Cubic::new(10.0);
        for _ in 0..4 {
            c.on_rtt_delivered(10.0, 0.01, f64::INFINITY);
        }
        c.on_loss();
        let boxed: Box<dyn CongestionControl> = Box::new(c.clone());
        let cloned = boxed.clone();
        assert_eq!(cloned.cwnd(), c.cwnd());
        assert_eq!(cloned.name(), "cubic");
    }
}
