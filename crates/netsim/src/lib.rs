//! # ig-netsim — deterministic fluid TCP simulator for WAN experiments
//!
//! The paper's performance claims (GridFTP parallel streams beating SCP by
//! orders of magnitude on high-bandwidth wide-area networks, §I/§VII) are
//! TCP-dynamics effects that cannot be observed on a loopback device. This
//! crate substitutes the authors' production WAN with a per-RTT fluid
//! model of TCP Reno:
//!
//! * slow start and congestion avoidance (AIMD) per flow;
//! * a shared bottleneck: when aggregate demand exceeds the link's
//!   bandwidth-delay product plus buffer, the overflowing flows take
//!   congestion losses;
//! * independent random packet loss (the WAN-path loss rate that makes
//!   single-stream TCP collapse and parallel streams win);
//! * per-flow **window caps** — this models the documented reason SCP is
//!   slow on WANs (a small fixed channel buffer limits it to
//!   `window / RTT` regardless of link speed);
//! * an optional per-flow **rate cap** modelling a CPU-bound cipher
//!   (SCP's other ceiling, and `PROT P` on the data channel).
//!
//! Everything is seeded and deterministic. Experiments E2, E5 and E6
//! derive their series from this model; EXPERIMENTS.md labels them as
//! simulator-timed (vs. the loopback-measured experiments).

pub mod cc;
pub mod fleet;
pub mod link;
pub mod sim;
pub mod tcp;

pub use cc::{BbrLite, CcAlgo, CongestionControl, Cubic, Reno};
pub use fleet::{DiurnalModel, Endpoint, EndpointClass, Fleet, FleetConfig};
pub use link::{Bottleneck, Route};
pub use sim::{simulate, FlowResult, FlowSpec, SimConfig};
pub use tcp::TcpParams;

/// Convenience: time (seconds) to move `bytes` over `link` with
/// `n_streams` parallel TCP streams splitting the payload evenly.
pub fn parallel_transfer_time<R: rand::Rng + ?Sized>(
    link: &Bottleneck,
    bytes: u64,
    n_streams: usize,
    params: TcpParams,
    rng: &mut R,
) -> f64 {
    assert!(n_streams > 0, "need at least one stream");
    let per = bytes / n_streams as u64;
    let mut rem = bytes - per * n_streams as u64;
    let flows: Vec<FlowSpec> = (0..n_streams)
        .map(|_| {
            let extra = if rem > 0 {
                rem -= 1;
                1
            } else {
                0
            };
            FlowSpec { bytes: per + extra, params }
        })
        .collect();
    let results = simulate(link, &flows, &SimConfig::default(), rng);
    results
        .iter()
        .map(|r| r.duration_s)
        .fold(0.0f64, f64::max)
}

/// Convenience: achieved aggregate throughput in bits per second.
pub fn parallel_throughput_bps<R: rand::Rng + ?Sized>(
    link: &Bottleneck,
    bytes: u64,
    n_streams: usize,
    params: TcpParams,
    rng: &mut R,
) -> f64 {
    let t = parallel_transfer_time(link, bytes, n_streams, params, rng);
    (bytes as f64 * 8.0) / t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn clean_lan_hits_near_line_rate() {
        // 1 Gbps, 1 ms RTT, no loss: one stream should get most of it.
        let link = Bottleneck::new(1e9, 0.001, 0.0);
        let bps = parallel_throughput_bps(&link, 256 << 20, 1, TcpParams::tuned(), &mut rng());
        assert!(bps > 0.5e9, "got {bps:.2e} bps");
        assert!(bps <= 1.01e9);
    }

    #[test]
    fn parallel_streams_beat_single_on_lossy_wan() {
        // The headline E2 shape: 10 Gbps, 100 ms RTT, 1e-4 loss.
        let link = Bottleneck::new(1e10, 0.1, 1e-4);
        let one = parallel_throughput_bps(&link, 64 << 20, 1, TcpParams::tuned(), &mut rng());
        let sixteen =
            parallel_throughput_bps(&link, 64 << 20, 16, TcpParams::tuned(), &mut rng());
        assert!(
            sixteen > 4.0 * one,
            "16 streams {sixteen:.2e} should be >4x single {one:.2e}"
        );
    }

    #[test]
    fn window_cap_limits_throughput() {
        // The SCP model: 64 KiB window on a 100 ms RTT path caps
        // throughput at ~window/RTT = 5.2 Mbps no matter the link speed.
        let link = Bottleneck::new(1e10, 0.1, 0.0);
        let capped = TcpParams::tuned().with_window_cap(64 * 1024);
        let bps = parallel_throughput_bps(&link, 8 << 20, 1, capped, &mut rng());
        let ceiling = 64.0 * 1024.0 * 8.0 / 0.1;
        assert!(bps <= ceiling * 1.05, "got {bps:.2e}, ceiling {ceiling:.2e}");
        assert!(bps > ceiling * 0.3);
    }

    #[test]
    fn rate_cap_models_cipher_ceiling() {
        let link = Bottleneck::new(1e10, 0.001, 0.0);
        let capped = TcpParams::tuned().with_rate_cap(4e8); // 400 Mbps cipher
        let one = parallel_throughput_bps(&link, 64 << 20, 1, capped, &mut rng());
        assert!(one <= 4.3e8, "got {one:.2e}");
        // The cap is per stream: four capped streams aggregate ~4x.
        let four = parallel_throughput_bps(&link, 64 << 20, 4, capped, &mut rng());
        assert!(four <= 4.0 * 4.3e8, "got {four:.2e}");
        assert!(four > one);
    }

    #[test]
    fn deterministic_given_seed() {
        let link = Bottleneck::new(1e9, 0.05, 1e-4);
        let a = parallel_transfer_time(&link, 32 << 20, 4, TcpParams::tuned(), &mut rng());
        let b = parallel_transfer_time(&link, 32 << 20, 4, TcpParams::tuned(), &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_split_covers_all_bytes() {
        let link = Bottleneck::new(1e9, 0.01, 0.0);
        // 10 bytes over 3 streams: 4+3+3.
        let t = parallel_transfer_time(&link, 10, 3, TcpParams::tuned(), &mut rng());
        assert!(t > 0.0);
    }
}
