//! The shared-bottleneck multi-flow simulation loop.

use crate::link::Bottleneck;
use crate::tcp::{FlowState, TcpParams};
use rand::Rng;

/// A flow to simulate.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Payload bytes.
    pub bytes: u64,
    /// TCP tunables.
    pub params: TcpParams,
}

/// Simulation controls.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Hard cap on simulated RTT ticks (guards against zero-progress
    /// configurations; generous: 10⁷ ticks ≈ 12 days at 100 ms RTT).
    pub max_ticks: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_ticks: 10_000_000 }
    }
}

/// Outcome for one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Bytes transferred.
    pub bytes: u64,
    /// Completion time in seconds from simulation start.
    pub duration_s: f64,
    /// Mean throughput in bits per second.
    pub throughput_bps: f64,
    /// Loss events (congestion + random).
    pub loss_events: u64,
}

/// Simulate `flows` sharing `link` until all complete.
///
/// Each tick is one RTT:
/// 1. every live flow offers `min(cwnd, caps, remaining)` bytes;
/// 2. if aggregate demand exceeds the link's per-RTT capacity, delivery is
///    scaled proportionally and each over-subscribed flow takes a
///    congestion loss with probability `overload/demand` (a fluid
///    approximation of drop-tail queueing that preserves Reno's fairness
///    dynamics);
/// 3. each flow independently suffers random path loss with probability
///    `1 - (1-p)^packets_sent`;
/// 4. survivors grow (slow start / AIMD), losers halve.
///
/// The model intentionally runs at RTT granularity: a 1-hour transfer at
/// 100 ms RTT is 36,000 ticks — fast enough for Criterion sweeps while
/// capturing slow-start, AIMD sawtooth, window caps and multi-flow
/// aggregation, which are the effects the paper's claims rest on.
pub fn simulate<R: Rng + ?Sized>(
    link: &Bottleneck,
    flows: &[FlowSpec],
    config: &SimConfig,
    rng: &mut R,
) -> Vec<FlowResult> {
    let mut states: Vec<FlowState> =
        flows.iter().map(|f| FlowState::new(f.bytes, f.params)).collect();
    let mut results: Vec<Option<FlowResult>> = vec![None; flows.len()];
    // Buffer depth softens the congestion-loss probability below rather
    // than extending per-RTT capacity.
    let capacity_per_rtt = link.bytes_per_rtt();
    let mut tick = 0u64;
    while results.iter().any(|r| r.is_none()) {
        tick += 1;
        if tick > config.max_ticks {
            // Finalize stragglers with what they achieved so far.
            for (i, st) in states.iter().enumerate() {
                if results[i].is_none() {
                    let sent = flows[i].bytes - st.remaining;
                    let dur = tick as f64 * link.rtt_s;
                    results[i] = Some(FlowResult {
                        bytes: sent,
                        duration_s: dur,
                        throughput_bps: sent as f64 * 8.0 / dur,
                        loss_events: st.loss_events,
                    });
                }
            }
            break;
        }
        let offers: Vec<f64> = states.iter().map(|s| s.offered_bytes(link.rtt_s)).collect();
        let demand: f64 = offers.iter().sum();
        let overload = (demand - capacity_per_rtt).max(0.0);
        // Congestion probability shrinks with buffer headroom.
        let congestion_p = if demand > 0.0 {
            (overload / demand) / (1.0 + link.buffer_bdp)
        } else {
            0.0
        };
        let scale = if demand > capacity_per_rtt && demand > 0.0 {
            capacity_per_rtt / demand
        } else {
            1.0
        };
        for (i, state) in states.iter_mut().enumerate() {
            if results[i].is_some() {
                continue;
            }
            let delivered = offers[i] * scale;
            // Random path loss: probability any packet in this window drops.
            let packets = (delivered / state.params.mss as f64).ceil().max(0.0);
            let p_random = 1.0 - (1.0 - link.loss).powf(packets);
            let lost = (congestion_p > 0.0 && rng.gen_bool(congestion_p.clamp(0.0, 1.0)))
                || (link.loss > 0.0 && rng.gen_bool(p_random.clamp(0.0, 1.0)));
            state.on_rtt_delivered(delivered, link.rtt_s);
            if lost {
                state.on_loss();
            }
            if state.done() {
                let dur = tick as f64 * link.rtt_s;
                results[i] = Some(FlowResult {
                    bytes: flows[i].bytes,
                    duration_s: dur,
                    throughput_bps: if dur > 0.0 {
                        flows[i].bytes as f64 * 8.0 / dur
                    } else {
                        f64::INFINITY
                    },
                    loss_events: state.loss_events,
                });
            }
        }
    }
    results.into_iter().map(|r| r.expect("all flows finalized")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn single_flow_completes() {
        let link = Bottleneck::new(1e9, 0.01, 0.0);
        let r = simulate(
            &link,
            &[FlowSpec { bytes: 10 << 20, params: TcpParams::tuned() }],
            &SimConfig::default(),
            &mut rng(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].bytes, 10 << 20);
        assert!(r[0].duration_s > 0.0);
        // Cannot exceed link capacity.
        assert!(r[0].throughput_bps <= 1e9 * 1.01);
    }

    #[test]
    fn aggregate_bounded_by_capacity() {
        let link = Bottleneck::new(1e8, 0.02, 0.0);
        let flows = vec![FlowSpec { bytes: 4 << 20, params: TcpParams::tuned() }; 8];
        let r = simulate(&link, &flows, &SimConfig::default(), &mut rng());
        let total_bytes: u64 = r.iter().map(|x| x.bytes).sum();
        let makespan = r.iter().map(|x| x.duration_s).fold(0.0, f64::max);
        let agg_bps = total_bytes as f64 * 8.0 / makespan;
        assert!(agg_bps <= 1e8 * 1.05, "aggregate {agg_bps:.2e} exceeds capacity");
        assert_eq!(total_bytes, 8 * (4 << 20));
    }

    #[test]
    fn flows_share_roughly_fairly() {
        let link = Bottleneck::new(1e8, 0.02, 0.0);
        let flows = vec![FlowSpec { bytes: 8 << 20, params: TcpParams::tuned() }; 4];
        let r = simulate(&link, &flows, &SimConfig::default(), &mut rng());
        let fastest = r.iter().map(|x| x.duration_s).fold(f64::INFINITY, f64::min);
        let slowest = r.iter().map(|x| x.duration_s).fold(0.0, f64::max);
        assert!(slowest / fastest < 3.0, "unfair: {fastest} vs {slowest}");
    }

    #[test]
    fn loss_slows_single_flow() {
        let link_clean = Bottleneck::new(1e9, 0.05, 0.0);
        let link_lossy = Bottleneck::new(1e9, 0.05, 1e-3);
        let spec = [FlowSpec { bytes: 16 << 20, params: TcpParams::tuned() }];
        let clean = simulate(&link_clean, &spec, &SimConfig::default(), &mut rng());
        let lossy = simulate(&link_lossy, &spec, &SimConfig::default(), &mut rng());
        assert!(
            lossy[0].duration_s > 2.0 * clean[0].duration_s,
            "loss should hurt: clean {} lossy {}",
            clean[0].duration_s,
            lossy[0].duration_s
        );
        assert!(lossy[0].loss_events > 0);
    }

    #[test]
    fn tick_cap_terminates_pathological_configs() {
        let link = Bottleneck::new(1e9, 0.001, 0.0);
        // Rate cap of ~0 bps: no progress; must still terminate.
        let spec = [FlowSpec {
            bytes: 1 << 20,
            params: TcpParams::tuned().with_rate_cap(1e-6),
        }];
        let cfg = SimConfig { max_ticks: 1000 };
        let r = simulate(&link, &spec, &cfg, &mut rng());
        assert!(r[0].bytes < 1 << 20);
    }

    #[test]
    fn zero_byte_flow_finishes_immediately() {
        let link = Bottleneck::new(1e9, 0.01, 0.0);
        let r = simulate(
            &link,
            &[FlowSpec { bytes: 0, params: TcpParams::tuned() }],
            &SimConfig::default(),
            &mut rng(),
        );
        assert_eq!(r[0].bytes, 0);
    }
}
