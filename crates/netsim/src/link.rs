//! Link and route descriptions.

/// A single bottleneck link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bottleneck {
    /// Capacity in bits per second.
    pub bandwidth_bps: f64,
    /// Round-trip time in seconds.
    pub rtt_s: f64,
    /// Independent per-packet loss probability (path loss, not queueing).
    pub loss: f64,
    /// Router buffer as a fraction of the BDP (1.0 = one BDP of buffer).
    pub buffer_bdp: f64,
}

impl Bottleneck {
    /// A link with the classic one-BDP buffer.
    pub fn new(bandwidth_bps: f64, rtt_s: f64, loss: f64) -> Self {
        assert!(bandwidth_bps > 0.0 && rtt_s > 0.0, "link must have positive capacity and RTT");
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1)");
        Bottleneck { bandwidth_bps, rtt_s, loss, buffer_bdp: 1.0 }
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> f64 {
        self.bandwidth_bps / 8.0 * self.rtt_s
    }

    /// Bytes the link can carry per RTT.
    pub fn bytes_per_rtt(&self) -> f64 {
        self.bdp_bytes()
    }
}

/// A multi-hop route; SCP's relay-through-client path (§VII: "SCP routes
/// data through the client") is a two-link route.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Links in path order.
    pub links: Vec<Bottleneck>,
}

impl Route {
    /// A direct route over one link.
    pub fn direct(link: Bottleneck) -> Self {
        Route { links: vec![link] }
    }

    /// A route through an intermediary (e.g. server → client → server).
    pub fn via(first: Bottleneck, second: Bottleneck) -> Self {
        Route { links: vec![first, second] }
    }

    /// Collapse to an effective single bottleneck for end-to-end flows
    /// that are cut through (pipelined) at the relay: bandwidth is the
    /// minimum, RTT is the sum, loss compounds.
    pub fn effective(&self) -> Bottleneck {
        assert!(!self.links.is_empty(), "route needs at least one link");
        let bandwidth = self
            .links
            .iter()
            .map(|l| l.bandwidth_bps)
            .fold(f64::INFINITY, f64::min);
        let rtt = self.links.iter().map(|l| l.rtt_s).sum();
        let pass: f64 = self.links.iter().map(|l| 1.0 - l.loss).product();
        let buffer = self
            .links
            .iter()
            .map(|l| l.buffer_bdp)
            .fold(f64::INFINITY, f64::min);
        Bottleneck { bandwidth_bps: bandwidth, rtt_s: rtt, loss: 1.0 - pass, buffer_bdp: buffer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdp_math() {
        let l = Bottleneck::new(1e9, 0.1, 0.0);
        assert!((l.bdp_bytes() - 12.5e6).abs() < 1.0);
        assert_eq!(l.bytes_per_rtt(), l.bdp_bytes());
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_bandwidth_rejected() {
        Bottleneck::new(0.0, 0.1, 0.0);
    }

    #[test]
    fn route_effective_takes_min_bandwidth_sum_rtt() {
        let fast = Bottleneck::new(1e10, 0.05, 1e-5);
        let slow = Bottleneck::new(1e8, 0.02, 1e-4);
        let eff = Route::via(fast, slow).effective();
        assert_eq!(eff.bandwidth_bps, 1e8);
        assert!((eff.rtt_s - 0.07).abs() < 1e-12);
        let expect_loss = 1.0 - (1.0 - 1e-5) * (1.0 - 1e-4);
        assert!((eff.loss - expect_loss).abs() < 1e-12);
    }

    #[test]
    fn direct_route_is_identity() {
        let l = Bottleneck::new(1e9, 0.01, 0.0);
        assert_eq!(Route::direct(l).effective(), l);
    }
}
