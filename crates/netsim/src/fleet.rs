//! Fleet-scale endpoint population for the hosted-service simulation.
//!
//! §IV's GCMU story is thousands of "GridFTP server in 10 min"
//! endpoints — campus clusters, lab boxes, even DSL-grade hosts — all
//! funnelling transfer jobs through one hosted Globus Online instance.
//! This module generates that population deterministically from a seed:
//! each endpoint gets a WAN path class ([`EndpointClass`]), a concrete
//! [`Bottleneck`] drawn within its class envelope, a tenant assignment,
//! and a seeded outage ("flap") schedule for chaos injection. A
//! [`DiurnalModel`] supplies the Fig 1-style daily arrival curve —
//! transfers per second as a sinusoid over the day — plus a Poisson
//! sampler so a scaled 10M-transfers/day workload can be replayed
//! exactly under a fixed seed.
//!
//! Everything here is pure data + math; the scheduler, ledger and
//! credential layers that consume it live in `gol`/`ig-server` and are
//! stitched together by experiment E15.

use crate::link::Bottleneck;
use rand::Rng;

/// Deployment classes for GCMU endpoints, coarsely matching the §IV
/// adoption story (most installs are campus/lab-grade, a few are
/// backbone-attached, a tail is consumer-grade).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointClass {
    /// Backbone-attached data-transfer node: 10 Gbps-class, clean path.
    Backbone,
    /// Campus cluster: 1 Gbps-class, moderate RTT.
    Campus,
    /// Lab workstation: 100 Mbps-class, noisier path.
    Lab,
    /// Consumer-grade (DSL/cable): tens of Mbps, lossy.
    Consumer,
}

impl EndpointClass {
    /// (bandwidth range bps, RTT range s, loss range) for the class.
    fn envelope(self) -> (std::ops::Range<f64>, std::ops::Range<f64>, std::ops::Range<f64>) {
        match self {
            EndpointClass::Backbone => (5e9..1e10, 0.01..0.06, 0.0..1e-5),
            EndpointClass::Campus => (5e8..1e9, 0.02..0.09, 1e-6..1e-4),
            EndpointClass::Lab => (5e7..1e8, 0.03..0.12, 1e-5..5e-4),
            EndpointClass::Consumer => (5e6..2e7, 0.04..0.15, 1e-4..2e-3),
        }
    }

    /// Class for a unit draw, weighted 5% backbone / 45% campus /
    /// 35% lab / 15% consumer.
    fn pick(unit: f64) -> EndpointClass {
        if unit < 0.05 {
            EndpointClass::Backbone
        } else if unit < 0.50 {
            EndpointClass::Campus
        } else if unit < 0.85 {
            EndpointClass::Lab
        } else {
            EndpointClass::Consumer
        }
    }
}

/// One simulated GCMU endpoint.
#[derive(Debug, Clone)]
pub struct Endpoint {
    /// Dense id in `0..fleet.len()`.
    pub id: u32,
    /// Owning tenant (maps to a scheduler share / credential subject).
    pub tenant: u32,
    /// Deployment class the link was drawn from.
    pub class: EndpointClass,
    /// The endpoint's WAN path to its peers.
    pub link: Bottleneck,
    /// Seeded outage windows `(start_s, end_s)` within the simulated
    /// day, sorted and non-overlapping. Empty for healthy endpoints.
    pub outages: Vec<(f64, f64)>,
}

impl Endpoint {
    /// Is the endpoint up at simulated time `t_s`?
    pub fn is_up(&self, t_s: f64) -> bool {
        !self.outages.iter().any(|&(a, b)| (a..b).contains(&t_s))
    }
}

/// Knobs for [`Fleet::generate`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Endpoint population size.
    pub endpoints: usize,
    /// Tenant count; endpoints are assigned round-robin with a seeded
    /// offset so tenants own a mix of classes.
    pub tenants: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Fraction of endpoints that flap (get outage windows) during the
    /// day — the chaos-injection knob. `0.0` disables outages.
    pub flap_fraction: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { endpoints: 1000, tenants: 16, seed: 0x600D_F1EE, flap_fraction: 0.02 }
    }
}

/// The generated endpoint population.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Endpoints, indexed by id.
    pub endpoints: Vec<Endpoint>,
    /// Tenant count the fleet was generated with.
    pub tenants: usize,
}

impl Fleet {
    /// Generate a fleet deterministically from `cfg`. Same config ⇒
    /// byte-identical fleet; per-endpoint draws are keyed by id, so
    /// growing the population keeps existing endpoints stable.
    pub fn generate(cfg: &FleetConfig) -> Fleet {
        assert!(cfg.endpoints > 0 && cfg.tenants > 0, "fleet needs endpoints and tenants");
        assert!((0.0..=1.0).contains(&cfg.flap_fraction), "flap_fraction in [0,1]");
        let endpoints = (0..cfg.endpoints as u32)
            .map(|id| {
                let mut rng = ep_rng(cfg.seed, id);
                let class = EndpointClass::pick(rng.gen::<f64>());
                let (bw, rtt, loss) = class.envelope();
                let link = Bottleneck::new(
                    rng.gen_range(bw),
                    rng.gen_range(rtt),
                    rng.gen_range(loss),
                );
                let tenant = (id as usize + (cfg.seed as usize % cfg.tenants)) % cfg.tenants;
                let outages = if rng.gen::<f64>() < cfg.flap_fraction {
                    // 1–3 outage windows of 5–30 minutes, placed in
                    // disjoint thirds of the day so they never overlap.
                    let n = rng.gen_range(1u32..=3);
                    (0..n)
                        .map(|k| {
                            let third = 86_400.0 / 3.0;
                            let start =
                                k as f64 * third + rng.gen_range(0.0..(third - 1_800.0));
                            let len = rng.gen_range(300.0..1_800.0);
                            (start, start + len)
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                Endpoint { id, tenant: tenant as u32, class, link, outages }
            })
            .collect();
        Fleet { endpoints, tenants: cfg.tenants }
    }

    /// Endpoint count.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True when the fleet has no endpoints (never, post-generate).
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Endpoints currently down at simulated time `t_s`.
    pub fn down_at(&self, t_s: f64) -> usize {
        self.endpoints.iter().filter(|e| !e.is_up(t_s)).count()
    }

    /// Class histogram `(backbone, campus, lab, consumer)`.
    pub fn class_mix(&self) -> (usize, usize, usize, usize) {
        let mut mix = (0, 0, 0, 0);
        for e in &self.endpoints {
            match e.class {
                EndpointClass::Backbone => mix.0 += 1,
                EndpointClass::Campus => mix.1 += 1,
                EndpointClass::Lab => mix.2 += 1,
                EndpointClass::Consumer => mix.3 += 1,
            }
        }
        mix
    }
}

/// Per-endpoint RNG: master seed scrambled with the id so endpoint `k`'s
/// attributes never depend on how many endpoints precede it.
fn ep_rng(seed: u64, id: u32) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed ^ (u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// The Fig 1 daily-usage shape: arrival rate over a day as a raised
/// sinusoid, `rate(t) = mean * (1 + depth * sin(2π (t - phase)/day))`,
/// where `depth` is set by the peak-to-trough ratio.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalModel {
    /// Mean arrivals per second (daily total / 86 400).
    pub mean_rate_per_s: f64,
    /// Peak rate divided by trough rate (> 1 for a day/night swing).
    pub peak_to_trough: f64,
    /// Time of day (seconds) the peak lands on.
    pub peak_s: f64,
}

impl DiurnalModel {
    /// A model hitting `daily_total` transfers per day.
    pub fn with_daily_total(daily_total: f64, peak_to_trough: f64, peak_s: f64) -> DiurnalModel {
        assert!(daily_total > 0.0 && peak_to_trough >= 1.0);
        DiurnalModel { mean_rate_per_s: daily_total / 86_400.0, peak_to_trough, peak_s }
    }

    /// Arrival rate (transfers/s) at time-of-day `t_s`.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let depth = (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0);
        let phase = 2.0 * std::f64::consts::PI * (t_s - self.peak_s) / 86_400.0;
        self.mean_rate_per_s * (1.0 + depth * phase.cos())
    }

    /// Expected arrivals over a day (the sinusoid integrates out).
    pub fn daily_total(&self) -> f64 {
        self.mean_rate_per_s * 86_400.0
    }

    /// Sample the arrival count for a `dt_s`-wide bucket starting at
    /// `t_s` — Poisson for small means, normal approximation above 64
    /// (indistinguishable at that mass, and O(1) instead of O(mean)).
    pub fn arrivals<R: Rng + ?Sized>(&self, t_s: f64, dt_s: f64, rng: &mut R) -> u64 {
        poisson(self.rate_at(t_s) * dt_s, rng)
    }
}

/// Seeded Poisson sample with mean `mean`.
pub fn poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    assert!(mean >= 0.0 && mean.is_finite(), "poisson mean must be finite and >= 0");
    if mean == 0.0 {
        return 0;
    }
    if mean < 64.0 {
        // Knuth: multiply unit draws until under e^-mean.
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    // Normal approximation (Box–Muller) for large means.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + z * mean.sqrt()).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(endpoints: usize) -> FleetConfig {
        FleetConfig { endpoints, tenants: 8, seed: 1234, flap_fraction: 0.05 }
    }

    #[test]
    fn generation_is_deterministic_and_id_stable() {
        let small = Fleet::generate(&cfg(100));
        let again = Fleet::generate(&cfg(100));
        for (a, b) in small.endpoints.iter().zip(&again.endpoints) {
            assert_eq!(a.link, b.link);
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.outages, b.outages);
        }
        // Growing the fleet must not disturb existing endpoints.
        let big = Fleet::generate(&cfg(200));
        for (a, b) in small.endpoints.iter().zip(&big.endpoints) {
            assert_eq!(a.link, b.link);
            assert_eq!(a.class, b.class);
        }
    }

    #[test]
    fn class_mix_tracks_weights() {
        let fleet = Fleet::generate(&cfg(2000));
        let (bb, campus, lab, consumer) = fleet.class_mix();
        assert_eq!(bb + campus + lab + consumer, 2000);
        // Loose envelopes around the 5/45/35/15 weighting.
        assert!((50..=160).contains(&bb), "backbone {bb}");
        assert!((700..=1100).contains(&campus), "campus {campus}");
        assert!((500..=900).contains(&lab), "lab {lab}");
        assert!((150..=450).contains(&consumer), "consumer {consumer}");
    }

    #[test]
    fn links_stay_inside_class_envelopes() {
        let fleet = Fleet::generate(&cfg(500));
        for e in &fleet.endpoints {
            let (bw, rtt, loss) = e.class.envelope();
            assert!(bw.contains(&e.link.bandwidth_bps), "{:?}", e);
            assert!(rtt.contains(&e.link.rtt_s), "{:?}", e);
            assert!(loss.contains(&e.link.loss) || e.link.loss == loss.start, "{:?}", e);
        }
    }

    #[test]
    fn tenants_cover_all_shares() {
        let fleet = Fleet::generate(&cfg(64));
        let mut seen = vec![false; 8];
        for e in &fleet.endpoints {
            seen[e.tenant as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every tenant owns endpoints");
    }

    #[test]
    fn flaps_happen_and_resolve() {
        let fleet = Fleet::generate(&FleetConfig { flap_fraction: 1.0, ..cfg(50) });
        let flappers: Vec<_> =
            fleet.endpoints.iter().filter(|e| !e.outages.is_empty()).collect();
        assert!(!flappers.is_empty());
        for e in &flappers {
            for &(a, b) in &e.outages {
                assert!(a < b && b <= 86_400.0 + 1_800.0);
                assert!(!e.is_up((a + b) / 2.0));
            }
            assert!(e.is_up(-1.0), "up before the day starts");
        }
        // Windows are non-overlapping and sorted by construction.
        for e in &flappers {
            for w in e.outages.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:?}", e.outages);
            }
        }
        let healthy = Fleet::generate(&FleetConfig { flap_fraction: 0.0, ..cfg(50) });
        assert_eq!(healthy.down_at(43_200.0), 0);
    }

    #[test]
    fn diurnal_curve_peaks_where_told_and_integrates_to_total() {
        let m = DiurnalModel::with_daily_total(10_000_000.0, 3.0, 14.0 * 3600.0);
        let peak = m.rate_at(14.0 * 3600.0);
        let trough = m.rate_at(2.0 * 3600.0);
        assert!(peak > trough);
        assert!((peak / trough - 3.0).abs() < 0.05, "ratio {}", peak / trough);
        // Riemann sum over the day recovers the daily total.
        let total: f64 = (0..86_400).step_by(60).map(|t| m.rate_at(t as f64) * 60.0).sum();
        assert!((total / m.daily_total() - 1.0).abs() < 0.01, "total {total}");
        assert!((m.daily_total() - 10_000_000.0).abs() < 1.0);
    }

    #[test]
    fn poisson_matches_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(7);
        for &mean in &[0.5f64, 5.0, 200.0] {
            let n = 4000;
            let sum: u64 = (0..n).map(|_| poisson(mean, &mut rng)).sum();
            let got = sum as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean.max(1.0) * 0.1,
                "mean {mean}: got {got}"
            );
        }
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn arrivals_replay_under_a_seed() {
        let m = DiurnalModel::with_daily_total(1e6, 2.0, 0.0);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..48).map(|h| m.arrivals(h as f64 * 1800.0, 1800.0, &mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..48).map(|h| m.arrivals(h as f64 * 1800.0, 1800.0, &mut rng)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().sum::<u64>() > 0);
    }
}
